"""Serving queries against a live, mutating database.

The engine_service example ends where this one begins: what happens when
the database keeps changing underneath a warm engine?  Before PR 3, every
``add``/``discard`` invalidated the whole materialization and the next
request paid a full chase + reduction rebuild.  The incremental-maintenance
subsystem (``repro.incremental``) instead reconstructs the *net delta* from
the database's mutation log and patches the chased instance (provenance-
tracking delta chase: semi-naive insertions, DRed-style over-delete +
re-derive for deletions) and the per-query reduced relations (only the
blocks whose join-tree nodes a delta touched) in place.

This walkthrough shows

1. ``Database.batch()`` coalescing a mutation burst into one delta,
2. ``Database.add_facts`` bulk loading with a single version bump,
3. a warm engine absorbing update rounds without ever re-chasing,
4. the ~1% delta SLO: incremental rounds vs forced full rebuilds, and
5. the fallback threshold: a huge delta triggers a rebuild on purpose.

Run with:  python examples/live_updates.py
"""

import random
import time

from repro.bench import print_table
from repro.data.facts import Fact
from repro.engine import QueryEngine
from repro.workloads import generate_university_database, university_omq

ROUNDS = 25


def mutation_round(database, rng, size, tag):
    """One burst of live traffic: new students arrive, some records retire."""
    facts = sorted(database.facts(), key=repr)
    with database.batch():  # one version bump, one coalesced delta
        for index in range(size):
            if rng.random() < 0.5:
                database.discard(facts[rng.randrange(len(facts))])
            else:
                database.add(Fact("HasAdvisor", (f"s_{tag}_{index}", "prof1")))
    return database.version


def replay(engine, database, query, batch_size, seed):
    rng = random.Random(seed)
    started = time.perf_counter()
    for round_index in range(ROUNDS):
        mutation_round(database, rng, batch_size, round_index)
        engine.execute(query)  # warm engine absorbs the delta
    return time.perf_counter() - started


def main() -> None:
    omq = university_omq()
    database = generate_university_database(1000, seed=7)
    print(f"university database: {len(database)} facts")

    # -- bulk loading: one version bump for the whole load ------------------
    version_before = database.version
    loaded = database.add_facts(
        Fact("GradStudent", (f"bulk{i}",)) for i in range(500)
    )
    print(
        f"add_facts loaded {loaded} facts with "
        f"{database.version - version_before} version bump(s)\n"
    )

    engine = QueryEngine(omq.ontology, database)
    engine.execute(omq.query)  # warm: chase + reduction built once
    batch_size = max(1, len(database) // 100)  # ~1% deltas

    incremental_seconds = replay(engine, database, omq.query, batch_size, seed=1)
    stats = engine.stats
    assert stats.chase_builds == 1, "warm engine must never re-chase"

    # Same traffic against an engine with maintenance disabled: every round
    # drops the materialization and rebuilds it from scratch.
    rebuild_db = generate_university_database(1000, seed=7)
    rebuild_db.add_facts(Fact("GradStudent", (f"bulk{i}",)) for i in range(500))
    rebuild_engine = QueryEngine(omq.ontology, rebuild_db, incremental=False)
    rebuild_engine.execute(omq.query)
    rebuild_seconds = replay(rebuild_engine, rebuild_db, omq.query, batch_size, seed=1)

    print_table(
        ["rounds", "delta facts", "incremental (ms)", "rebuild (ms)", "speedup"],
        [
            (
                ROUNDS,
                batch_size,
                incremental_seconds * 1000,
                rebuild_seconds * 1000,
                rebuild_seconds / incremental_seconds,
            )
        ],
        title=f"{ROUNDS} update rounds (~1% of the database each) + re-query",
    )
    print(
        f"\nincremental engine: {stats.chase_builds} chase build, "
        f"{stats.chase_increments} in-place increments, "
        f"{stats.incremental_fallbacks} fallbacks"
    )

    # -- the fallback threshold --------------------------------------------
    with database.batch():
        for index in range(len(database) // 2):
            database.add(Fact("GradStudent", (f"wave{index}",)))
    engine.execute(omq.query)
    stats = engine.stats
    print(
        f"after a 50% delta: fallbacks={stats.incremental_fallbacks}, "
        f"chase builds={stats.chase_builds} "
        "(delta exceeded fallback_ratio, so the engine chose a rebuild)"
    )


if __name__ == "__main__":
    main()
