"""OBDA scenario: querying incomplete university data through an ELI ontology.

The ontology states, among other things, that every faculty member works for
some department and every graduate student has an advisor who is faculty.
The generated data is deliberately incomplete (some students have no advisor
fact, some professors no affiliation), so the query "students with their
advisor and the advisor's department" has complete answers, answers with one
wildcard and answers with two wildcards.  The example also demonstrates the
complete-answers-first enumeration order of Proposition 2.1.

Run with:  python examples/university_obda.py
"""

from collections import Counter

from repro.core import WILDCARD, MinimalPartialAnswerEnumerator, MultiWildcardEnumerator
from repro.workloads import generate_university_database, university_omq


def main() -> None:
    omq = university_omq()
    database = generate_university_database(students=60, seed=11)
    print("OMQ:", omq)
    print("ontology is ELI:", omq.is_eli())
    print("database facts:", len(database))
    print()

    enumerator = MinimalPartialAnswerEnumerator(omq, database)
    answers = list(enumerator.enumerate())
    shapes = Counter(
        sum(1 for value in answer if value is WILDCARD) for answer in answers
    )
    print(f"{len(answers)} minimal partial answers")
    for wildcards, count in sorted(shapes.items()):
        print(f"  with {wildcards} wildcard(s): {count}")
    print()

    print("First ten answers, complete answers first (Proposition 2.1):")
    ordered = MinimalPartialAnswerEnumerator(omq, database).enumerate_complete_first()
    for index, answer in enumerate(ordered):
        if index >= 10:
            break
        print("  ", answer)
    print()

    print("A few multi-wildcard answers (Theorem 6.1):")
    for index, answer in enumerate(MultiWildcardEnumerator(omq, database)):
        if index >= 5:
            break
        print("  ", answer)


if __name__ == "__main__":
    main()
