"""Quickstart: the running example of the paper (Example 1.1).

Builds the office ontology, a small database about researchers and offices,
and shows every evaluation mode the library offers: complete answers,
minimal partial answers with a single wildcard, minimal partial answers with
multi-wildcards, single-testing and all-testing.

Run with:  python examples/quickstart.py
"""

from repro import Database, Fact, parse_ontology, parse_query
from repro.core import (
    OMQ,
    WILDCARD,
    CompleteAnswerEnumerator,
    MinimalPartialAnswerEnumerator,
    MultiWildcardEnumerator,
    OMQAllTester,
    OMQSingleTester,
)


def main() -> None:
    ontology = parse_ontology(
        """
        Researcher(x) -> HasOffice(x, y)
        HasOffice(x, y) -> Office(y)
        Office(x) -> InBuilding(x, y)
        """,
        name="office",
    )
    query = parse_query("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
    omq = OMQ.from_parts(ontology, query, name="Q_office")

    database = Database(
        [
            Fact("Researcher", ("mary",)),
            Fact("Researcher", ("john",)),
            Fact("Researcher", ("mike",)),
            Fact("HasOffice", ("mary", "room1")),
            Fact("HasOffice", ("john", "room4")),
            Fact("InBuilding", ("room1", "main1")),
        ]
    )

    print("OMQ:", omq)
    print("acyclic:", omq.is_acyclic(), " free-connex acyclic:", omq.is_free_connex_acyclic())
    print()

    print("Complete answers (Theorem 4.1):")
    for answer in CompleteAnswerEnumerator(omq, database):
        print("  ", answer)
    print()

    print("Minimal partial answers, single wildcard (Theorem 5.2):")
    for answer in MinimalPartialAnswerEnumerator(omq, database):
        print("  ", answer)
    print()

    print("Minimal partial answers, multi-wildcards (Theorem 6.1):")
    for answer in MultiWildcardEnumerator(omq, database):
        print("  ", answer)
    print()

    tester = OMQSingleTester(omq, database)
    print("Single tests (Theorem 3.1):")
    print("  (mary, room1, main1) complete?   ", tester.test_complete(("mary", "room1", "main1")))
    print("  (john, room4, *) minimal partial?", tester.test_minimal_partial(("john", "room4", WILDCARD)))
    print("  (john, *, *) minimal partial?    ", tester.test_minimal_partial(("john", WILDCARD, WILDCARD)))
    print()

    all_tester = OMQAllTester(omq, database)
    print("All-testing (Theorem 4.1(2)):")
    print("  (mary, room1, main1):", all_tester.test(("mary", "room1", "main1")))
    print("  (john, room4, main1):", all_tester.test(("john", "room4", "main1")))


if __name__ == "__main__":
    main()
