"""Measuring the two phases: linear preprocessing, constant delay.

Runs the complete-answer enumerator (Theorem 4.1) and the minimal partial
answer enumerator (Theorem 5.2) on office databases of growing size and
prints preprocessing time, answer counts and the maximum / mean delay
between consecutive answers.  The delays should stay flat as the database
grows while preprocessing grows roughly linearly.

Run with:  python examples/constant_delay_demo.py
"""

from repro.bench import measure_enumeration, print_table
from repro.core import CompleteAnswerEnumerator, MinimalPartialAnswerEnumerator
from repro.workloads import generate_office_database, office_omq


def main() -> None:
    omq = office_omq()
    sizes = (500, 1000, 2000, 4000)

    rows = []
    for size in sizes:
        database = generate_office_database(size, seed=size)
        profile = measure_enumeration(
            lambda db=database: CompleteAnswerEnumerator(omq, db)
        )
        rows.append(
            (
                size,
                len(database),
                f"{profile.preprocessing_seconds * 1000:.1f} ms",
                profile.answer_count,
                f"{profile.mean_delay * 1e6:.1f} µs",
                f"{profile.max_delay * 1e6:.1f} µs",
            )
        )
    print_table(
        ["researchers", "facts", "preprocessing", "answers", "mean delay", "max delay"],
        rows,
        title="Complete answers (Theorem 4.1)",
    )

    rows = []
    for size in sizes:
        database = generate_office_database(size, seed=size)
        profile = measure_enumeration(
            lambda db=database: MinimalPartialAnswerEnumerator(omq, db)
        )
        rows.append(
            (
                size,
                len(database),
                f"{profile.preprocessing_seconds * 1000:.1f} ms",
                profile.answer_count,
                f"{profile.mean_delay * 1e6:.1f} µs",
                f"{profile.max_delay * 1e6:.1f} µs",
            )
        )
    print_table(
        ["researchers", "facts", "preprocessing", "answers", "mean delay", "max delay"],
        rows,
        title="Minimal partial answers (Theorem 5.2 / Algorithm 1)",
    )


if __name__ == "__main__":
    main()
