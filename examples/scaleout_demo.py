"""Scale-out demo: the sharded multi-process backend vs. sequential.

Runs the university workload through two engines on the same database —
one sequential (``workers=1``) and one fanning the chase, reduce and batch
phases across a 2-process forked worker pool (``workers=2``) — and checks
that the answer sets are byte-identical, that a mutation re-forks the pool
transparently, and that no shared-memory segments are left behind.

The process pool needs the ``fork`` start method (Linux); elsewhere the
engine silently stays sequential and this demo just reports that.

Run with:  python examples/scaleout_demo.py
"""

import time

from repro import Database, Fact
from repro.engine import QueryEngine
from repro.parallel import active_segments, supported
from repro.workloads.university import (
    generate_university_database,
    university_omq,
    university_ontology,
)


def main() -> None:
    if not supported():
        print("fork start method unavailable: the engine runs sequentially here")
        return

    database = Database(generate_university_database(200, seed=7))
    omq = university_omq()
    print(f"university database: {len(database)} facts")

    sequential = QueryEngine(university_ontology(), database, workers=1)
    started = time.perf_counter()
    expected = sequential.execute(omq)
    print(f"sequential: {len(expected)} answers in "
          f"{1000 * (time.perf_counter() - started):.1f} ms")

    parallel = QueryEngine(
        university_ontology(), database, workers=2, incremental=False
    )
    try:
        started = time.perf_counter()
        answers = parallel.execute(omq)
        print(f"2 workers:  {len(answers)} answers in "
              f"{1000 * (time.perf_counter() - started):.1f} ms")
        assert answers == expected, "parallel answers diverged!"

        batch = parallel.execute_batch([omq] * 4)
        assert batch == [expected] * 4
        print("batch of 4 across the pool: byte-identical")

        # A mutation stales the worker replicas; the pool re-forks.
        database.add(Fact("enrolled", ("demo_student", "demo_course")))
        assert parallel.execute(omq) == sequential.execute(omq)
        print("post-mutation: pool re-forked, answers still identical")

        stats = parallel.snapshot()
        print(
            f"stats: parallel_chases={stats.parallel_chases} "
            f"boundary_facts={stats.boundary_facts} "
            f"worker_crashes={stats.worker_crashes}"
        )
    finally:
        parallel.shutdown()
    assert active_segments() == set(), "leaked shared-memory segments!"
    print("no shared-memory segments leaked")


if __name__ == "__main__":
    main()
