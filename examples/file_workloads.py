"""File-based workloads: load DLGP rules + CSV data, serve, round-trip.

Shows the three ways into the file frontend:

1. ``load_scenario`` — parse rule/data/query files into a Scenario,
2. ``QueryEngine.from_files`` — one call from paths to a warm engine,
3. ``get_workload`` — the registry treats a path (or the registered
   ``demo`` name) like any built-in generator,

and finally dumps a synthetic workload to a temporary directory and reloads
it, checking that the answers survive the round trip byte for byte.

Run with:  python examples/file_workloads.py
"""

import tempfile
from pathlib import Path

from repro import QueryEngine, dump_scenario, get_workload, load_scenario

DATA_DIR = Path(__file__).parent / "data"


def main() -> None:
    rules = sorted(DATA_DIR.glob("*.dlgp"))
    data = sorted(DATA_DIR.glob("*.csv"))

    # 1. Parse the shipped demo files into a scenario and serve it.
    scenario = load_scenario(rules=rules, data=data, name="office-demo")
    print(f"scenario {scenario.name}: {len(scenario.database)} facts, "
          f"{len(scenario.ontology)} rules, {len(scenario.queries)} queries")
    engine = scenario.engine()
    for query in scenario.queries:
        answers = engine.execute(query)
        print(f"  {query.name}/{query.arity}: {len(answers)} answers, "
              f"e.g. {min(answers)}")

    # 2. The same thing in one call (embedded queries are warmed eagerly).
    engine = QueryEngine.from_files(rules=rules, data=data)
    print("from_files:", engine.stats.plans_cached, "plans warmed")

    # 3. Through the registry: a path works wherever a name does.
    workload = get_workload(str(DATA_DIR))
    print("registry:", workload.description)

    # Round trip: dump the university generator to disk, reload, compare.
    university = get_workload("university").scenario(size=120, seed=3)
    with tempfile.TemporaryDirectory() as tmp:
        dump_scenario(university, tmp, data_format="csv")
        reloaded = load_scenario(
            rules=[Path(tmp) / "rules.dlgp", Path(tmp) / "queries.dlgp"],
            data=sorted(Path(tmp).glob("*.csv")),
        )
        original = university.engine().execute(university.queries[0])
        recovered = reloaded.engine().execute(reloaded.queries[0])
        assert original == recovered, "answers must survive the round trip"
        print(f"round trip: {len(recovered)} university answers identical")


if __name__ == "__main__":
    main()
