"""A query-serving walkthrough of the prepared-query engine.

Simulates the shape of a production deployment: one long-lived
:class:`repro.engine.QueryEngine` per ontology, a handful of query templates
prepared once, then a stream of incoming requests served from the cached
plans and the shared per-database materialization.  Along the way it shows

1. plan compilation and the LRU plan cache,
2. repeated execution (preprocessing amortized away),
3. mixed batches through ``execute_batch``,
4. cursors for paged, constant-delay streaming, and
5. automatic re-sync when the database is updated in place (see
   ``examples/live_updates.py`` for the incremental-maintenance story).

Run with:  python examples/engine_service.py
"""

import time

from repro.bench import print_table
from repro.core import CompleteAnswerEnumerator
from repro.data.facts import Fact
from repro.engine import QueryEngine
from repro.workloads import generate_university_database, university_omq

REQUESTS = 200

QUERY_TEMPLATES = {
    "advisor-dept": "q(s, a, d) :- HasAdvisor(s, a), WorksFor(a, d)",
    "advisors": "q(s, a) :- HasAdvisor(s, a)",
    "departments": "q(a, d) :- WorksFor(a, d)",
}


def main() -> None:
    omq = university_omq()
    database = generate_university_database(1000, seed=42)
    print(f"university database: {len(database)} facts\n")

    # One engine per ontology; plans compile on first use and stay cached.
    engine = QueryEngine(omq.ontology, database)
    engine.warm(QUERY_TEMPLATES.values())

    # -- repeated requests: engine vs building everything from scratch -----
    started = time.perf_counter()
    for index in range(REQUESTS):
        name = list(QUERY_TEMPLATES)[index % len(QUERY_TEMPLATES)]
        engine.execute(QUERY_TEMPLATES[name])
    engine_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(10):  # 10 is plenty to see the gap; 200 would take a while
        set(CompleteAnswerEnumerator(omq, database))
    fresh_seconds = (time.perf_counter() - started) * (REQUESTS / 10)

    print_table(
        ["requests", "engine (ms)", "fresh est. (ms)", "speedup"],
        [
            (
                REQUESTS,
                engine_seconds * 1000,
                fresh_seconds * 1000,
                fresh_seconds / engine_seconds,
            )
        ],
        title="Serving repeated requests",
    )

    # -- batched requests ---------------------------------------------------
    batch = list(QUERY_TEMPLATES.values()) * 20
    started = time.perf_counter()
    answer_sets = engine.execute_batch(batch)
    batch_seconds = time.perf_counter() - started
    print(
        f"\nbatch of {len(batch)} queries in {batch_seconds * 1000:.1f} ms "
        f"({len(batch) / batch_seconds:.0f} q/s); "
        f"answer counts {sorted({len(a) for a in answer_sets})}"
    )

    # -- cursors: paged streaming ------------------------------------------
    with engine.open(QUERY_TEMPLATES["advisor-dept"]) as cursor:
        page = cursor.fetchmany(5)
        print(f"\nfirst page of {len(page)} answers:")
        for answer in page:
            print(f"  {answer}")
        remaining = len(cursor.fetchall())
        cursor.restart()
        print(f"{remaining} more; restart re-yields {len(cursor.fetchall())} in total")

    # -- live updates -------------------------------------------------------
    count_before = len(engine.execute(QUERY_TEMPLATES["advisor-dept"]))
    database.add(Fact("HasAdvisor", ("transfer_student", "prof0")))
    database.add(Fact("WorksFor", ("prof0", "dept0")))
    count_after = len(engine.execute(QUERY_TEMPLATES["advisor-dept"]))
    print(
        f"\nafter adding a student: {count_before} -> {count_after} answers "
        "(materialization maintained in place by the delta chase)"
    )

    stats = engine.stats
    print(
        f"\nengine stats: {stats.plans_cached} plans "
        f"({stats.plan_hits} hits / {stats.plan_misses} misses), "
        f"{stats.chase_builds} chase builds, "
        f"{stats.chase_increments} incremental update(s), "
        f"{stats.state_builds} state builds, "
        f"{stats.invalidations} invalidation(s)"
    )


if __name__ == "__main__":
    main()
