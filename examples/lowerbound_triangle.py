"""The triangle lower bound as an executable reduction (Theorem 3.6).

Encodes random graphs as databases and decides triangle existence purely by
asking whether the all-wildcard tuple is a *minimal* partial answer of the
paper's OMQ.  The timings illustrate the conditional lower bound: the OMQ
route inherits the cost of triangle detection, while the office OMQ of the
quickstart (acyclic) is tested in linear time on the same database sizes.

Run with:  python examples/lowerbound_triangle.py
"""

import time

from repro.reductions import (
    graph_to_database,
    has_triangle_naive,
    has_triangle_via_omq,
)
from repro.workloads import random_graph


def main() -> None:
    print("graph size | edges | triangle (naive) | triangle (via OMQ) | OMQ time")
    for vertices in (20, 40, 80):
        edges = random_graph(vertices, vertices * 3, seed=vertices)
        expected = has_triangle_naive(edges)
        start = time.perf_counter()
        via_omq = has_triangle_via_omq(edges)
        elapsed = time.perf_counter() - start
        assert via_omq == expected, "the reduction must agree with direct detection"
        print(
            f"{vertices:10d} | {len(edges):5d} | {str(expected):16s} |"
            f" {str(via_omq):18s} | {elapsed:.3f}s"
        )

    print()
    print("Triangle-free graphs (the hard case for the reduction):")
    for vertices in (20, 40):
        edges = random_graph(vertices, vertices * 2, seed=vertices, avoid_triangles=True)
        database = graph_to_database(edges)
        start = time.perf_counter()
        result = has_triangle_via_omq(edges)
        elapsed = time.perf_counter() - start
        print(
            f"  n={vertices:3d}, facts={len(database):4d}: triangle={result}, "
            f"time={elapsed:.3f}s"
        )


if __name__ == "__main__":
    main()
