"""A self-contained tour of the multi-tenant HTTP query service.

Starts :class:`repro.server.QueryService` on an ephemeral port inside this
process, provisions two tenants that *share one ontology* (so the second
tenant's queries are plan-cache hits), and then plays a client session:

1. execute a query over HTTP and print the first answers,
2. open a server-side cursor and paginate it,
3. apply a mutation batch while the cursor is mid-flight — the cursor
   finishes over the pre-batch snapshot, a fresh query sees the new facts,
4. scrape ``/metrics`` and show the shared-plan-cache and incremental-
   maintenance counters,
5. shut down gracefully (draining open cursors).

Run with:  python examples/serve_demo.py
"""

import asyncio
import json
import urllib.request

from repro.server import QueryService, ServiceConfig, serve

QUERY = "q(s, a, d) :- HasAdvisor(s, a), WorksFor(a, d)"
PAGE_QUERY = "q(s, a) :- HasAdvisor(s, a)"


def client(base: str, method: str, path: str, payload: dict | None = None) -> dict:
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


async def main() -> None:
    service = QueryService(ServiceConfig(port=0, max_inflight=4, query_timeout=5.0))
    service.create_tenant("acme", "university", size=200, seed=1)
    service.create_tenant("globex", "university", size=120, seed=2)

    ready, stop = asyncio.Event(), asyncio.Event()
    addresses: list[str] = []
    server_task = asyncio.create_task(
        serve(
            service,
            announce=addresses.append,
            ready=ready,
            stop=stop,
            install_signal_handlers=False,
        )
    )
    await ready.wait()
    base = addresses[0]
    tenants = await asyncio.to_thread(client, base, "GET", "/tenants")
    print(f"service up at {base} with tenants "
          f"{[t['name'] for t in tenants['tenants']]}\n")

    # -- 1. query over HTTP -------------------------------------------------
    body = await asyncio.to_thread(client, base, "POST", "/tenants/acme/query",
                                   {"query": QUERY})
    print(f"acme: {body['count']} answers in {body['elapsed_ms']} ms; first three:")
    for row in body["answers"][:3]:
        print(f"  {tuple(row)}")

    # The same query on the second tenant reuses the compiled plan.
    await asyncio.to_thread(client, base, "POST", "/tenants/globex/query",
                            {"query": QUERY})

    # -- 2. cursor pagination ----------------------------------------------
    body = await asyncio.to_thread(client, base, "POST", "/tenants/acme/cursors",
                                   {"query": PAGE_QUERY})
    cursor = body["cursor"]
    page = await asyncio.to_thread(
        client, base, "GET", f"/tenants/acme/cursors/{cursor}?count=5")
    streamed = page["count"]
    print(f"\ncursor {cursor}: first page of {page['count']} answers")

    # -- 3. mutation mid-cursor --------------------------------------------
    mutation = {"add": [["HasAdvisor", ["demo_student", "prof0"]],
                        ["WorksFor", ["prof0", "dept0"]]]}
    body = await asyncio.to_thread(client, base, "POST", "/tenants/acme/facts", mutation)
    print(f"mutation batch: +{body['added']} facts -> db version {body['db_version']}")
    while True:
        page = await asyncio.to_thread(
            client, base, "GET", f"/tenants/acme/cursors/{cursor}?count=50")
        streamed += page["count"]
        if page["done"]:
            break
    fresh = await asyncio.to_thread(client, base, "POST", "/tenants/acme/query",
                                    {"query": PAGE_QUERY})
    print(f"cursor drained {streamed} answers (pre-batch snapshot); "
          f"a fresh query now sees {fresh['count']}")

    # -- 4. metrics ---------------------------------------------------------
    metrics = await asyncio.to_thread(client, base, "GET", "/metrics")
    engine = metrics["engine"]
    print(f"\n/metrics: {engine['plans_cached']} plans cached, "
          f"{engine['plan_hits']} hits / {engine['plan_misses']} misses "
          f"(plans shared across tenants), "
          f"{engine['chase_increments']} incremental maintenance pass(es)")
    acme = metrics["tenants"]["acme"]
    print(f"acme latency: p50={acme['latency']['p50_ms']} ms "
          f"p99={acme['latency']['p99_ms']} ms over {acme['latency']['count']} requests")

    # -- 5. graceful shutdown ----------------------------------------------
    stop.set()
    report = await server_task
    print(f"\nshutdown: drained={report['drained']}, "
          f"cursors_closed={report['cursors_closed']}")


if __name__ == "__main__":
    asyncio.run(main())
