#!/usr/bin/env python
"""End-to-end check of ``repro serve``: HTTP answers == direct engine answers.

CI's ``server-e2e`` job runs this script.  It

1. boots ``repro serve`` as a real subprocess on an ephemeral port,
2. drives it like a client: execute a query, paginate a cursor, apply a
   mutation batch **mid-cursor**, re-query,
3. replays the identical workload and mutations through a direct
   :class:`repro.engine.QueryEngine` in this process and asserts every
   answer set is byte-identical — the paginated cursor must finish over the
   *pre-batch* snapshot, the re-query must see the post-batch database,
4. exercises the observability surface: an ``?explain=1`` query carrying an
   ``X-Repro-Trace`` header must echo the trace id and return a span tree,
   and ``/metrics?format=prometheus`` must serve syntactically valid
   text-format 0.0.4 exposition whose histogram buckets are consistent,
5. shuts the server down with SIGTERM and asserts a clean exit with no
   leaked process.

Exit status 0 only if every step holds.  Run locally with::

    PYTHONPATH=src python tools/server_e2e.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

WORKLOAD = "university"
SIZE = 150
SEED = 7
QUERY = "q(s, a, d) :- HasAdvisor(s, a), WorksFor(a, d)"
PAGE_QUERY = "q(s, a) :- HasAdvisor(s, a)"
MUTATION = {
    "add": [
        ["HasAdvisor", ["e2e_student", "prof0"]],
        ["WorksFor", ["prof0", "dept0"]],
        ["HasAdvisor", ["e2e_student2", "prof1"]],
    ],
    "remove": [],
}


def request(
    base: str,
    method: str,
    path: str,
    payload: dict | None = None,
    headers: dict | None = None,
):
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    req = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(req, timeout=30) as response:
        return response.status, json.loads(response.read()), dict(response.headers)


def request_text(base: str, path: str):
    """GET a path and return (status, content-type, body text) undecoded."""
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


_SAMPLE_LINE = r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.e+-]+(Inf)?$'


def validate_prometheus(text: str) -> dict[str, float]:
    """Validate text-format 0.0.4 exposition; return {sample name: value}."""
    import re

    samples: dict[str, float] = {}
    typed: set[str] = set()
    helped: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            helped.add(line.split(" ", 3)[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            assert parts[3] in ("counter", "gauge", "histogram"), line
            typed.add(parts[2])
            continue
        assert re.match(_SAMPLE_LINE, line), f"malformed sample line {lineno}: {line!r}"
        name_and_labels, value = line.rsplit(" ", 1)
        samples[name_and_labels] = float(value)
        bare = name_and_labels.split("{", 1)[0]
        family = re.sub(r"_(bucket|sum|count)$", "", bare)
        assert family in typed or bare in typed, f"sample without TYPE: {line!r}"
        assert family in helped or bare in helped, f"sample without HELP: {line!r}"
    assert samples, "exposition contained no samples"
    return samples


def wait_ready(proc: subprocess.Popen) -> str:
    """Read the ready line off the server's stdout; fail fast on exit."""
    assert proc.stdout is not None
    deadline = time.time() + 30
    while time.time() < deadline:
        if proc.poll() is not None:
            stderr = proc.stderr.read() if proc.stderr else ""
            raise SystemExit(f"server exited early ({proc.returncode}):\n{stderr}")
        line = proc.stdout.readline().strip()
        if line.startswith("repro-server listening on "):
            return line.rsplit(" ", 1)[-1]
    raise SystemExit("server never printed its ready line")


def direct_answers(mutated: bool) -> tuple[list[list[str]], list[list[str]]]:
    """(QUERY answers, PAGE_QUERY answers) from a direct engine run."""
    from repro.engine import QueryEngine
    from repro.incremental.delta import Delta, apply_delta
    from repro.workloads import get_workload

    scenario = get_workload(WORKLOAD).scenario(size=SIZE, seed=SEED)
    engine = QueryEngine(scenario.ontology, scenario.database)
    if mutated:
        apply_delta(scenario.database, Delta.from_wire(MUTATION))
    return (
        sorted([str(t) for t in row] for row in engine.execute(QUERY)),
        sorted([str(t) for t in row] for row in engine.execute(PAGE_QUERY)),
    )


def check(label: str, actual, expected) -> None:
    if actual != expected:
        raise SystemExit(
            f"MISMATCH [{label}]: served answers differ from the direct engine\n"
            f"  served:   {len(actual)} rows\n  expected: {len(expected)} rows"
        )
    print(f"ok: {label} ({len(expected)} rows byte-identical)")


def main() -> int:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src if not env.get("PYTHONPATH") else os.pathsep.join([src, env["PYTHONPATH"]])
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--workload",
            WORKLOAD,
            "--size",
            str(SIZE),
            "--seed",
            str(SEED),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    try:
        base = wait_ready(proc)
        print(f"server up at {base} (pid {proc.pid})")

        pre_query, pre_page = direct_answers(mutated=False)
        post_query, _post_page = direct_answers(mutated=True)

        # 1. plain query
        status, body, _ = request(base, "POST", "/tenants/default/query", {"query": QUERY})
        assert status == 200, f"query returned {status}"
        check("query (pre-mutation)", body["answers"], pre_query)

        # 2. open a cursor and fetch the first page
        status, body, _ = request(
            base, "POST", "/tenants/default/cursors", {"query": PAGE_QUERY}
        )
        assert status == 201, f"cursor open returned {status}"
        cursor = body["cursor"]
        status, body, _ = request(
            base, "GET", f"/tenants/default/cursors/{cursor}?count=7"
        )
        assert status == 200 and not body["done"], "first page should not exhaust"
        collected = body["answers"]

        # 3. mutation batch lands while the cursor is mid-flight
        status, body, _ = request(base, "POST", "/tenants/default/facts", MUTATION)
        assert status == 200, f"mutation returned {status}"
        assert body["added"] == 3, f"expected 3 effective adds, got {body['added']}"

        # 4. drain the cursor: must finish over the PRE-batch snapshot
        while True:
            status, body, _ = request(
                base, "GET", f"/tenants/default/cursors/{cursor}?count=50"
            )
            assert status == 200, f"page returned {status}"
            collected.extend(body["answers"])
            if body["done"]:
                break
        check("cursor across mid-flight mutation (pre-batch snapshot)",
              sorted(collected), pre_page)

        # 5. a fresh query sees the post-batch database
        status, body, _ = request(base, "POST", "/tenants/default/query", {"query": QUERY})
        assert status == 200
        check("query (post-mutation)", body["answers"], post_query)

        # 6. metrics are alive and consistent
        status, body, _ = request(base, "GET", "/metrics")
        assert status == 200
        tenant = body["tenants"]["default"]
        assert tenant["counters"]["queries"] == 2, tenant["counters"]
        assert body["engine"]["chase_increments"] >= 1, (
            "mutation should have been maintained incrementally"
        )
        print("ok: metrics (2 queries counted, incremental maintenance ticked)")

        # 7. traced explain query: span tree in payload, trace id echoed back
        trace_id = "e2e0deadbeef0042"
        status, body, resp_headers = request(
            base,
            "POST",
            "/tenants/default/query?explain=1",
            {"query": QUERY},
            headers={"X-Repro-Trace": trace_id},
        )
        assert status == 200, f"explain query returned {status}"
        assert resp_headers.get("X-Repro-Trace") == trace_id, (
            f"trace id not propagated: {resp_headers.get('X-Repro-Trace')!r}"
        )
        explain = body["explain"]
        assert explain["trace_id"] == trace_id, explain["trace_id"]
        phase_names = set(explain["phases"])
        assert {"plan", "enumerate"} <= phase_names, sorted(phase_names)
        check("explain query (post-mutation)", body["answers"], post_query)
        print(f"ok: explain payload with phases {sorted(phase_names)}")

        # 8. Prometheus scrape: valid 0.0.4 exposition, consistent histogram
        status, ctype, text = request_text(base, "/metrics?format=prometheus")
        assert status == 200
        assert ctype.startswith("text/plain; version=0.0.4"), ctype
        samples = validate_prometheus(text)
        queries = samples['repro_tenant_queries_total{tenant="default"}']
        assert queries == 3.0, f"expected 3 queries scraped, got {queries}"
        inf_bucket = samples[
            'repro_tenant_latency_seconds_bucket{le="+Inf",tenant="default"}'
        ]
        count = samples['repro_tenant_latency_seconds_count{tenant="default"}']
        assert inf_bucket == count > 0, (inf_bucket, count)
        assert "repro_engine_plans_compiled_total" in text
        print(f"ok: prometheus exposition ({len(samples)} samples validated)")
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        try:
            returncode = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            raise SystemExit("LEAK: server did not exit on SIGTERM within 30s")

    if returncode != 0:
        stderr = proc.stderr.read() if proc.stderr else ""
        raise SystemExit(f"server exited nonzero ({returncode}):\n{stderr}")
    print(f"ok: graceful shutdown, exit status {returncode}, no leaked process")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main())
