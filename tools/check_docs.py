#!/usr/bin/env python3
"""Check intra-repo Markdown links in README.md and the docs/ tree.

For every inline link ``[text](target)`` outside fenced code blocks:

* external targets (``http(s)://``, ``mailto:``) are skipped;
* relative targets must resolve to an existing file or directory,
  relative to the linking file;
* ``#anchor`` fragments (bare, or attached to a Markdown target) must
  match a heading of the target document, using GitHub's slug rules
  (lowercased, punctuation stripped, spaces to hyphens).

Exit status 0 when everything resolves; otherwise each broken link is
printed as ``file:line: message`` and the status is 1.  Used by the `docs`
CI job and by ``tests/test_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Files whose links are checked: the README plus the whole docs tree.
DOC_GLOBS = ("README.md", "docs/**/*.md")

_LINK_RE = re.compile(r"\[[^\]\n]*\]\(([^()\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
_EXTERNAL = ("http://", "https://", "mailto:")


def _strip_fences(text: str) -> str:
    """Blank fenced code blocks, preserving line numbers for reporting."""
    def blank(match: re.Match) -> str:
        return "\n" * match.group(0).count("\n")

    return _FENCE_RE.sub(blank, text)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (sufficient approximation)."""
    text = heading.strip().lower().replace("`", "")
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    text = _strip_fences(path.read_text(encoding="utf-8"))
    return {github_slug(heading) for heading in _HEADING_RE.findall(text)}


def check_file(path: Path) -> list[str]:
    """All broken-link messages for one Markdown file."""
    problems: list[str] = []
    text = _strip_fences(path.read_text(encoding="utf-8"))
    for line_number, line in enumerate(text.splitlines(), start=1):
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            where = f"{path.relative_to(REPO_ROOT)}:{line_number}"
            target_path, _, fragment = target.partition("#")
            if not target_path:
                resolved = path
            else:
                resolved = (path.parent / target_path).resolve()
                if not resolved.exists():
                    problems.append(f"{where}: broken link -> {target}")
                    continue
            if fragment:
                if resolved.suffix.lower() != ".md":
                    continue
                if fragment not in heading_slugs(resolved):
                    problems.append(
                        f"{where}: missing anchor #{fragment} in "
                        f"{resolved.relative_to(REPO_ROOT)}"
                    )
    return problems


def check_all(root: Path = REPO_ROOT) -> list[str]:
    problems: list[str] = []
    files = sorted({path for glob in DOC_GLOBS for path in root.glob(glob)})
    if not files:
        problems.append(f"no Markdown files matched {DOC_GLOBS} under {root}")
    for path in files:
        problems.extend(check_file(path))
    return problems


def main() -> int:
    problems = check_all()
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = sorted({str(p) for g in DOC_GLOBS for p in REPO_ROOT.glob(g)})
    if not problems:
        print(f"docs ok: {len(checked)} files, all intra-repo links resolve")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
