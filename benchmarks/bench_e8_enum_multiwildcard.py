"""E8 — Theorem 6.1 / Algorithm 2: multi-wildcard minimal partial answers.

The library substitutes the paper's appendix all-tester A2 by a memoised
homomorphism oracle (see DESIGN.md), so the delay of this enumerator is not
guaranteed constant; the sweep makes the deviation visible by reporting the
same delay statistics as E7 alongside the answer counts.  Correctness is
still exact: counts must match the naive materialise-and-minimise baseline.
"""

from repro.baselines import naive_minimal_partial_answers_multi
from repro.bench import measure_enumeration, print_table, scaling_exponent, time_call
from repro.core import MultiWildcardEnumerator
from repro.workloads import generate_office_database, office_omq

SIZES = (200, 400, 800, 1600)


def test_e8_multiwildcard_enumeration(benchmark):
    omq = office_omq()
    rows = []
    sizes, preprocessing_times = [], []
    for size in SIZES:
        database = generate_office_database(size, seed=size)
        profile = measure_enumeration(
            lambda db=database: MultiWildcardEnumerator(omq, db)
        )
        naive_time, naive_answers = time_call(
            naive_minimal_partial_answers_multi, omq, database
        )
        assert profile.answer_count == len(naive_answers)
        rows.append(
            (
                size,
                len(database),
                profile.preprocessing_seconds * 1000,
                profile.answer_count,
                profile.mean_delay * 1e6,
                profile.percentile_delay(0.95) * 1e6,
                naive_time * 1000,
            )
        )
        sizes.append(len(database))
        preprocessing_times.append(profile.preprocessing_seconds)
    preprocessing_exponent = scaling_exponent(sizes, preprocessing_times)
    print_table(
        [
            "researchers",
            "db facts",
            "preprocess (ms)",
            "answers",
            "mean delay (µs)",
            "p95 delay (µs)",
            "naive total (ms)",
        ],
        rows,
        title=(
            "E8  Multi-wildcard enumeration (Thm 6.1 / Algorithm 2); "
            f"preprocessing exponent = {preprocessing_exponent:.2f}; delay is "
            "O(||D||) worst case due to the substituted A2 oracle (DESIGN.md)"
        ),
    )
    assert preprocessing_exponent < 1.7

    database = generate_office_database(400, seed=400)
    benchmark(lambda: list(MultiWildcardEnumerator(omq, database)))


def smoke() -> dict:
    """Tiny-input smoke run: multi-wildcard answers against the baseline."""
    omq = office_omq()
    database = generate_office_database(40, seed=40)
    answers = list(MultiWildcardEnumerator(omq, database))
    naive = naive_minimal_partial_answers_multi(omq, database)
    assert len(answers) == len(naive)
    return {"db_facts": len(database), "answers": len(answers)}


if __name__ == "__main__":
    import sys

    from _smoke import bench_main

    sys.exit(bench_main("e8_enum_multiwildcard", smoke))
