"""E12 — Incremental maintenance under live updates vs full rebuilds.

The incremental subsystem's promise: after a mutation batch touching ~1% of
the facts, a warm engine re-serves queries after a delta chase plus touched-
block reduction maintenance instead of rebuilding the materialization from
scratch.  This experiment replays identical mutation scripts (half new-
entity insertions, half deletions, one ``Database.batch()`` per round)
against two engines on equal databases — one incremental, one with
``incremental=False`` (every round pays a full chase + reduction rebuild) —
checking byte-identical answers after every round and gating the speedup at
the 5× acceptance floor (typically far above it: the delta chase scales
with the delta, the rebuild with the database).
"""

import random
import time

from repro.bench import print_table
from repro.data.facts import Fact
from repro.engine import QueryEngine
from repro.workloads import generate_university_database, university_omq

SIZES = (400, 800, 1600, 3200)
ROUNDS = 20
DELTA_FRACTION = 0.01


def _mutation_script(database, rounds, delta_fraction, seed):
    """Precompute identical per-round mutation batches for both engines."""
    rng = random.Random(seed)
    live = sorted(database.facts(), key=repr)
    batch_size = max(2, int(len(live) * delta_fraction))
    script = []
    for round_index in range(rounds):
        additions, deletions = [], []
        for index in range(batch_size):
            if rng.random() < 0.5 and live:
                deletions.append(live.pop(rng.randrange(len(live))))
            else:
                template = live[rng.randrange(len(live))]
                fact = Fact(
                    template.relation,
                    (f"live{round_index}_{index}",) + template.args[1:],
                )
                additions.append(fact)
                live.append(fact)
        script.append((additions, deletions))
    return script, batch_size


def _replay(engine, database, query, script):
    """Apply the script round by round, re-executing after each batch."""
    answer_trace = []
    started = time.perf_counter()
    for additions, deletions in script:
        with database.batch():
            for fact in additions:
                database.add(fact)
            for fact in deletions:
                database.discard(fact)
        answer_trace.append(engine.execute(query))
    return time.perf_counter() - started, answer_trace


def _update_workload(size, rounds=ROUNDS, delta_fraction=DELTA_FRACTION, seed=None):
    omq = university_omq()
    seed = size if seed is None else seed
    incremental_db = generate_university_database(size, seed=seed)
    rebuild_db = generate_university_database(size, seed=seed)
    script, batch_size = _mutation_script(incremental_db, rounds, delta_fraction, seed)

    incremental_engine = QueryEngine(omq.ontology, incremental_db)
    incremental_engine.execute(omq.query)  # warm the materialization
    incremental_seconds, incremental_trace = _replay(
        incremental_engine, incremental_db, omq.query, script
    )

    rebuild_engine = QueryEngine(omq.ontology, rebuild_db, incremental=False)
    rebuild_engine.execute(omq.query)
    rebuild_seconds, rebuild_trace = _replay(
        rebuild_engine, rebuild_db, omq.query, script
    )

    assert incremental_trace == rebuild_trace, (
        "incremental answers diverge from full-rebuild answers"
    )
    stats = incremental_engine.stats
    assert stats.chase_builds == 1, "incremental engine must not rebuild the chase"
    assert stats.chase_increments == rounds
    assert rebuild_engine.stats.chase_builds == rounds + 1
    return {
        "db_facts": len(incremental_db),
        "batch_size": batch_size,
        "answers": len(incremental_trace[-1]),
        "incremental_seconds": incremental_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup": rebuild_seconds / incremental_seconds
        if incremental_seconds
        else float("inf"),
    }


def test_e12_incremental_updates(benchmark):
    rows = []
    worst = float("inf")
    for size in SIZES:
        outcome = _update_workload(size)
        worst = min(worst, outcome["speedup"])
        rows.append(
            (
                size,
                outcome["db_facts"],
                outcome["batch_size"],
                outcome["answers"],
                outcome["rebuild_seconds"] * 1000,
                outcome["incremental_seconds"] * 1000,
                outcome["speedup"],
            )
        )
    print_table(
        [
            "size",
            "db facts",
            "delta",
            "answers",
            f"rebuild x{ROUNDS} (ms)",
            f"incremental x{ROUNDS} (ms)",
            "speedup",
        ],
        rows,
        title=(
            f"E12  Incremental maintenance, university workload, "
            f"{ROUNDS} rounds of {DELTA_FRACTION:.0%} deltas"
        ),
    )
    assert worst >= 5.0, (
        f"incremental maintenance must be >= 5x a full rebuild for "
        f"{DELTA_FRACTION:.0%} deltas, got {worst:.2f}x"
    )

    omq = university_omq()
    database = generate_university_database(800, seed=800)
    engine = QueryEngine(omq.ontology, database)
    engine.execute(omq.query)
    counter = iter(range(10**9))

    def one_round():
        index = next(counter)
        database.add(Fact("HasAdvisor", (f"bench{index}", "prof0")))
        return engine.execute(omq.query)

    benchmark(one_round)


def smoke() -> dict:
    """Tiny-input smoke: 10 rounds of 1% deltas must clear the 5x gate."""
    outcome = _update_workload(400, rounds=10)
    assert outcome["speedup"] >= 5.0, (
        f"incremental speedup {outcome['speedup']:.2f}x is below the 5x floor"
    )
    return {
        "db_facts": outcome["db_facts"],
        "delta_facts": outcome["batch_size"],
        "answers": outcome["answers"],
        "speedup": round(outcome["speedup"], 2),
    }


if __name__ == "__main__":
    import sys

    from _smoke import bench_main

    sys.exit(bench_main("e12_incremental_updates", smoke))
