#!/usr/bin/env python
"""A/B gate: per-plan code generation vs. the interpreted inner loops.

Runs the enumeration phase of the E5/E11 workloads (office and university)
twice — once with codegen enabled, once over the interpreted slot-plan and
kernel paths (``REPRO_NO_CODEGEN`` equivalent) — on the same database, and
reports the speedup.  Answer sets must be byte-identical between the modes;
preprocessing (chase + reduction) is excluded from the timing, because the
compiled closures only cover the per-answer walk.

CI calls this with ``--gate`` after the smoke sweep::

    python benchmarks/ab_codegen.py --gate

and fails the build if codegen-on is not at least ``--min-speedup`` (default
1.5×) faster than codegen-off on every workload.  Each mode's measurement is
the best of ``--best-of`` batches of ``--loops`` full enumerations, which
keeps the measured spans tens of milliseconds — far above timer noise —
while the whole gate stays under a few seconds.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import use_codegen
from repro.core import CompleteAnswerEnumerator
from repro.workloads import (
    generate_office_database,
    generate_university_database,
    office_omq,
    university_omq,
)

WORKLOADS = (
    ("e5_office", office_omq, generate_office_database),
    ("e11_university", university_omq, generate_university_database),
)


def _enumeration_seconds(enumerator, loops: int, best_of: int) -> float:
    """Best total wall time of ``loops`` full enumerations."""
    best = float("inf")
    for _ in range(best_of):
        start = time.perf_counter()
        for _ in range(loops):
            for _answer in enumerator.enumerate():
                pass
        best = min(best, time.perf_counter() - start)
    return best


def ab_workload(
    label: str, omq, generator, size: int, loops: int, best_of: int
) -> dict:
    database = generator(size, seed=size)
    timings: dict[bool, float] = {}
    answers: dict[bool, set] = {}
    for mode in (True, False):
        with use_codegen(mode):
            # The enumerator captures the codegen flag at construction.
            enumerator = CompleteAnswerEnumerator(omq, database)
            answers[mode] = set(enumerator)  # warm-up + correctness witness
            timings[mode] = _enumeration_seconds(enumerator, loops, best_of)
    if answers[True] != answers[False]:
        raise AssertionError(
            f"{label}: codegen-on and codegen-off answer sets differ "
            f"({len(answers[True])} vs {len(answers[False])} answers)"
        )
    return {
        "workload": label,
        "size": size,
        "answers": len(answers[True]),
        "codegen_on_seconds": round(timings[True], 6),
        "codegen_off_seconds": round(timings[False], 6),
        "speedup": round(timings[False] / timings[True], 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 unless every workload speeds up by --min-speedup",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="required codegen-on vs codegen-off ratio (default 1.5)",
    )
    parser.add_argument(
        "--size", type=int, default=1600, help="database scale factor"
    )
    parser.add_argument(
        "--loops", type=int, default=20, help="enumerations per measured batch"
    )
    parser.add_argument(
        "--best-of", type=int, default=5, help="measured batches per mode"
    )
    args = parser.parse_args(argv)

    reports = [
        ab_workload(label, omq_factory(), generator, args.size, args.loops, args.best_of)
        for label, omq_factory, generator in WORKLOADS
    ]
    json.dump({"reports": reports, "min_speedup": args.min_speedup}, sys.stdout)
    sys.stdout.write("\n")

    failures = [
        report
        for report in reports
        if args.gate and report["speedup"] < args.min_speedup
    ]
    for report in failures:
        print(
            f"FAIL {report['workload']}: codegen speedup {report['speedup']}x "
            f"< required {args.min_speedup}x",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
