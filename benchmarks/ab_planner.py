#!/usr/bin/env python
"""A/B gate: the cost-based plan choice vs. the default decomposition.

Runs the E5/E11 workloads (office and university) through a warm
``QueryEngine`` twice — once with the planner enabled, once on the default
decomposition (``REPRO_NO_PLANNER`` equivalent) — on the same database, and
reports the throughput ratio of the cached execution path (the enumeration
phase of whichever plan each mode chose; preprocessing is excluded by
warming first).  Answer sets must be byte-identical between the modes.

Candidate 0 of every plan choice is the default decomposition and cost ties
break towards it, so the planner can never *pick* a regressing plan — the
gate asserts the end-to-end consequence: planner-on throughput stays within
noise of planner-off (``--min-speedup``, default 0.95×) or better.

CI calls this with ``--gate`` after the smoke sweep::

    python benchmarks/ab_planner.py --gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import use_planner
from repro.engine import QueryEngine
from repro.workloads import (
    generate_office_database,
    generate_university_database,
    office_omq,
    university_omq,
)

WORKLOADS = (
    ("e5_office", office_omq, generate_office_database),
    ("e11_university", university_omq, generate_university_database),
)


def _batch_seconds(engine, query, loops: int) -> float:
    """Wall time of one batch of ``loops`` cached executions."""
    start = time.perf_counter()
    for _ in range(loops):
        engine.execute(query)
    return time.perf_counter() - start


def ab_workload(
    label: str, omq, generator, size: int, loops: int, best_of: int
) -> dict:
    database = generator(size, seed=size)
    engines: dict[bool, QueryEngine] = {}
    answers: dict[bool, set] = {}
    choices: dict[bool, int] = {}
    for mode in (True, False):
        with use_planner(mode):
            engines[mode] = QueryEngine(omq.ontology, database)
            answers[mode] = engines[mode].execute(omq.query)  # warm + witness
            choices[mode] = engines[mode].snapshot().planner_choices
    # Interleave the measured batches: both modes see the same thermal /
    # contention conditions, so the ratio of the best batches compares
    # kernels rather than CPU frequency drift.
    timings: dict[bool, float] = {True: float("inf"), False: float("inf")}
    for _ in range(best_of):
        for mode in (True, False):
            timings[mode] = min(
                timings[mode], _batch_seconds(engines[mode], omq.query, loops)
            )
    if answers[True] != answers[False]:
        raise AssertionError(
            f"{label}: planner-on and planner-off answer sets differ "
            f"({len(answers[True])} vs {len(answers[False])} answers)"
        )
    if choices[True] < 1 or choices[False] != 0:
        raise AssertionError(
            f"{label}: planner engagement wrong (on={choices[True]}, "
            f"off={choices[False]})"
        )
    return {
        "workload": label,
        "size": size,
        "answers": len(answers[True]),
        "planner_on_seconds": round(timings[True], 6),
        "planner_off_seconds": round(timings[False], 6),
        "speedup": round(timings[False] / timings[True], 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 unless every workload reaches --min-speedup",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.9,
        help=(
            "required planner-on vs planner-off throughput ratio.  The two "
            "modes run the same plan whenever the default wins, so the true "
            "ratio is ~1.0; the default 0.9 tolerates shared-runner timing "
            "noise while still failing on any genuinely regressing choice"
        ),
    )
    parser.add_argument(
        "--size", type=int, default=1600, help="database scale factor"
    )
    parser.add_argument(
        "--loops",
        type=int,
        default=100,
        help=(
            "executions per measured batch (cached executions are fast: "
            "enough loops keep each batch far above timer noise)"
        ),
    )
    parser.add_argument(
        "--best-of", type=int, default=5, help="measured batches per mode"
    )
    args = parser.parse_args(argv)

    reports = [
        ab_workload(label, omq_factory(), generator, args.size, args.loops, args.best_of)
        for label, omq_factory, generator in WORKLOADS
    ]
    json.dump({"reports": reports, "min_speedup": args.min_speedup}, sys.stdout)
    sys.stdout.write("\n")

    failures = [
        report
        for report in reports
        if args.gate and report["speedup"] < args.min_speedup
    ]
    for report in failures:
        print(
            f"FAIL {report['workload']}: planner throughput ratio "
            f"{report['speedup']}x < required {args.min_speedup}x",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
