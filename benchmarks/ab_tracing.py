#!/usr/bin/env python
"""A/B gate: tracing-disabled execution overhead vs. the hard-off baseline.

The tracing subsystem promises *near-zero overhead when disabled*: with
``ExecutionOptions.tracing = None`` (the shipped default, no ``REPRO_TRACE``)
every execution pays only a handful of ambient-context checks — no spans,
no per-answer sampling.  This benchmark proves that promise on the E5/E11
workloads (office and university): warm engines, full executions, three
modes —

* ``off``      — ``tracing=False``: instrumentation hard-disabled, the
  pre-tracing code path (the baseline);
* ``default``  — ``tracing=None``: the dynamic-check path production runs;
* ``traced``   — ``tracing=True``: a full trace per execution (reported for
  scale, never gated — tracing is diagnostic machinery and allowed to cost).

Answer sets must be byte-identical across all three modes.  CI calls this
with ``--gate`` and fails the build if the ``default`` mode is more than
``--max-overhead`` (default 3%) slower than ``off`` on any workload.  Each
reported time is the fastest single warm execution across ``--best-of``
rounds of ``--loops`` attempts, with the modes interleaved round-robin so
transient system noise cannot bias one mode.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.engine import QueryEngine
from repro.workloads import (
    generate_office_database,
    generate_university_database,
    office_omq,
    university_omq,
)

WORKLOADS = (
    ("e5_office", office_omq, generate_office_database),
    ("e11_university", university_omq, generate_university_database),
)

#: (mode label, the ExecutionOptions.tracing value it exercises)
MODES = (("off", False), ("default", None), ("traced", True))


def _interleaved_minimums(
    engines: dict, omq, loops: int, best_of: int
) -> dict[str, float]:
    """Fastest single warm execution per mode, interleaved per execution.

    The minimum is the standard noise-robust estimator for a deterministic
    workload: GC pauses, CPU frequency shifts, and scheduler preemption only
    ever make executions *slower*, so the floor isolates the code-path cost
    the gate is about.  Alternating the modes on every iteration (rather
    than per batch) means slow drift — thermal throttling, a neighbour
    stealing the core — degrades all modes alike instead of biasing
    whichever happened to run during the bad stretch.
    """
    timings = {mode: float("inf") for mode in engines}
    for _ in range(best_of * loops):
        for mode, engine in engines.items():
            start = time.perf_counter()
            engine.execute(omq)
            timings[mode] = min(timings[mode], time.perf_counter() - start)
    return timings


def ab_workload(
    label: str, omq, generator, size: int, loops: int, best_of: int
) -> dict:
    database = generator(size, seed=size)
    engines: dict[str, QueryEngine] = {}
    answers: dict[str, set] = {}
    for mode, tracing in MODES:
        engine = QueryEngine(omq.ontology, database, tracing=tracing)
        answers[mode] = engine.execute(omq)  # warm-up + correctness witness
        engines[mode] = engine
    timings = _interleaved_minimums(engines, omq, loops, best_of)
    for mode, _ in MODES[1:]:
        if answers[mode] != answers["off"]:
            raise AssertionError(
                f"{label}: tracing mode {mode!r} changed the answer set "
                f"({len(answers[mode])} vs {len(answers['off'])} answers)"
            )
    return {
        "workload": label,
        "size": size,
        "answers": len(answers["off"]),
        "off_seconds": round(timings["off"], 6),
        "default_seconds": round(timings["default"], 6),
        "traced_seconds": round(timings["traced"], 6),
        "default_overhead": round(timings["default"] / timings["off"] - 1.0, 4),
        "traced_overhead": round(timings["traced"] / timings["off"] - 1.0, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 if any workload's disabled-mode overhead exceeds --max-overhead",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.03,
        help="allowed default-vs-off slowdown fraction (default 0.03 = 3%%)",
    )
    parser.add_argument(
        "--size", type=int, default=1600, help="database scale factor"
    )
    parser.add_argument(
        "--loops", type=int, default=100, help="executions per measured batch"
    )
    parser.add_argument(
        "--best-of", type=int, default=5, help="measured batches per mode"
    )
    args = parser.parse_args(argv)

    reports = [
        ab_workload(label, omq_factory(), generator, args.size, args.loops, args.best_of)
        for label, omq_factory, generator in WORKLOADS
    ]
    json.dump({"reports": reports, "max_overhead": args.max_overhead}, sys.stdout)
    sys.stdout.write("\n")

    failures = [
        report
        for report in reports
        if args.gate and report["default_overhead"] > args.max_overhead
    ]
    for report in failures:
        print(
            f"FAIL {report['workload']}: disabled-tracing overhead "
            f"{report['default_overhead'] * 100:.2f}% "
            f"> allowed {args.max_overhead * 100:.2f}%",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
