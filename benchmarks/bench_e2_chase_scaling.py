"""E2 — Proposition 3.3: the query-directed chase is linear in the data.

Sweeps office databases of growing size, measures the time to build
``ch^q_O(D)`` and reports the fitted scaling exponent (a value close to 1
confirms the linear-preprocessing claim).  The pytest benchmark measures one
representative chase.
"""

from repro.bench import print_table, scaling_exponent, time_call
from repro.workloads import generate_office_database, office_omq

SIZES = (400, 800, 1600, 3200)


def test_e2_chase_scaling(benchmark):
    omq = office_omq()
    rows = []
    sizes_in_facts = []
    times = []
    for size in SIZES:
        database = generate_office_database(size, seed=size)
        elapsed, chased = time_call(omq.chase, database)
        sizes_in_facts.append(len(database))
        times.append(elapsed)
        rows.append(
            (
                size,
                len(database),
                len(chased.instance),
                len(chased.nulls()),
                elapsed * 1000,
            )
        )
    exponent = scaling_exponent(sizes_in_facts, times)
    print_table(
        ["researchers", "db facts", "chase facts", "nulls", "time (ms)"],
        rows,
        title=(
            "E2  Query-directed chase scaling (Prop. 3.3); "
            f"fitted exponent = {exponent:.2f} (1.0 = linear)"
        ),
    )
    assert exponent < 1.6, "chase construction should scale roughly linearly"

    database = generate_office_database(800, seed=800)
    benchmark(omq.chase, database)


def smoke() -> dict:
    """Tiny-input smoke run: one query-directed chase on a small database."""
    omq = office_omq()
    database = generate_office_database(60, seed=60)
    elapsed, chased = time_call(omq.chase, database)
    assert len(chased.instance) >= len(database)
    return {
        "db_facts": len(database),
        "chase_facts": len(chased.instance),
        "nulls": len(chased.nulls()),
        "chase_ms": round(elapsed * 1000, 3),
    }


if __name__ == "__main__":
    import sys

    from _smoke import bench_main

    sys.exit(bench_main("e2_chase_scaling", smoke))
