"""E13 — Multi-tenant query service under concurrent client load.

The server tentpole claims the preprocessing/enumeration split survives the
trip through HTTP: once each tenant's materialization is warm, serving a
prepared query is an enumeration plus JSON encoding, so a swarm of
concurrent clients should see low, flat latency.  This experiment boots the
asyncio service in-process (background event-loop thread, ephemeral port),
drives it with N keep-alive clients from real threads, and reports p50/p99
latency plus aggregate throughput per client count.  Every response is
checked byte-identical against a direct :class:`~repro.engine.QueryEngine`
on an equal database; a mixed phase then runs readers against a concurrent
mutation writer and checks every observed answer count stays within the
monotone envelope of the write stream.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import math
import statistics
import threading
import time

from repro.bench import print_table
from repro.engine import QueryEngine
from repro.server import QueryService, ServiceConfig, serve
from repro.workloads import get_workload

QUERY = "q(s, a, d) :- HasAdvisor(s, a), WorksFor(a, d)"

FULL_TENANTS = (("t0", "university", 400, 21), ("t1", "university", 400, 22))
FULL_CLIENT_COUNTS = (2, 4, 8, 16)
FULL_REQUESTS_PER_CLIENT = 25


class ServiceHarness:
    """Run a :class:`QueryService` on a background event-loop thread."""

    def __init__(self, config: ServiceConfig, tenants) -> None:
        self.service = QueryService(config)
        for name, workload, size, seed in tenants:
            self.service.create_tenant(name, workload, size=size, seed=seed)
        self.base: str | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), name="e13-server", daemon=True
        )

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        ready = asyncio.Event()
        addresses: list[str] = []
        task = asyncio.create_task(
            serve(
                self.service,
                announce=addresses.append,
                ready=ready,
                stop=self._stop,
                install_signal_handlers=False,
            )
        )
        await ready.wait()
        self.base = addresses[0]
        self._ready.set()
        await task

    def __enter__(self) -> "ServiceHarness":
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("service did not come up within 60s")
        return self

    def __exit__(self, *exc) -> None:
        assert self._loop is not None and self._stop is not None
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)


class Client:
    """One keep-alive HTTP connection, the unit of client concurrency."""

    def __init__(self, base: str) -> None:
        hostport = base.split("//", 1)[1]
        host, port = hostport.rsplit(":", 1)
        self._conn = http.client.HTTPConnection(host, int(port), timeout=60)

    def request(self, method: str, path: str, payload=None):
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        self._conn.request(method, path, body=body, headers=headers)
        response = self._conn.getresponse()
        return response.status, json.loads(response.read())

    def close(self) -> None:
        self._conn.close()


def _percentile(sorted_ms: list[float], fraction: float) -> float:
    index = min(len(sorted_ms) - 1, max(0, math.ceil(fraction * len(sorted_ms)) - 1))
    return sorted_ms[index]


def _direct_answers(tenants) -> dict[str, list[list[str]]]:
    """Expected QUERY answers per tenant from a direct in-process engine."""
    expected = {}
    for name, workload, size, seed in tenants:
        scenario = get_workload(workload).scenario(size=size, seed=seed)
        engine = QueryEngine(scenario.ontology, scenario.database)
        expected[name] = sorted([str(t) for t in row] for row in engine.execute(QUERY))
    return expected


def _drive_load(base, tenant_names, clients, requests_per_client, expected):
    """N client threads, keep-alive connections, round-robin over tenants."""
    latencies_ms: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def worker(index: int) -> None:
        tenant = tenant_names[index % len(tenant_names)]
        client = Client(base)
        try:
            barrier.wait()
            for _ in range(requests_per_client):
                started = time.perf_counter()
                status, body = client.request(
                    "POST", f"/tenants/{tenant}/query", {"query": QUERY}
                )
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                with lock:
                    latencies_ms.append(elapsed_ms)
                    if status != 200:
                        errors.append(f"{tenant}: HTTP {status}")
                    elif body["answers"] != expected[tenant]:
                        errors.append(f"{tenant}: answers diverge from direct engine")
        except Exception as exc:
            with lock:
                errors.append(f"{tenant}: {type(exc).__name__}: {exc}")
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"e13-client{i}")
        for i in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    latencies_ms.sort()
    total = clients * requests_per_client
    return {
        "clients": clients,
        "requests": len(latencies_ms),
        "errors": errors,
        "p50_ms": round(_percentile(latencies_ms, 0.50), 3) if latencies_ms else None,
        "p99_ms": round(_percentile(latencies_ms, 0.99), 3) if latencies_ms else None,
        "mean_ms": round(statistics.fmean(latencies_ms), 3) if latencies_ms else None,
        "throughput_rps": round(total / wall, 1) if wall else float("inf"),
        "wall_seconds": round(wall, 3),
    }


def _mixed_read_write(base, tenant, readers, requests_per_reader, writes, low):
    """Readers race a mutation writer; counts must stay in the write envelope.

    The writer adds one unique ``HasAdvisor(wI, prof0)`` per round — each an
    effective insertion extending the answer set by exactly one row — so any
    consistent snapshot a reader can observe has between ``low`` and
    ``low + writes`` answers, and the final count must land exactly at
    ``low + writes``.
    """
    errors: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(readers + 1)

    def writer() -> None:
        client = Client(base)
        try:
            barrier.wait()
            for index in range(writes):
                status, body = client.request(
                    "POST",
                    f"/tenants/{tenant}/facts",
                    {"add": [["HasAdvisor", [f"w{index}", "prof0"]]]},
                )
                with lock:
                    if status != 200 or body.get("added") != 1:
                        errors.append(f"writer: HTTP {status} {body}")
        except Exception as exc:
            with lock:
                errors.append(f"writer: {type(exc).__name__}: {exc}")
        finally:
            client.close()

    def reader(index: int) -> None:
        client = Client(base)
        try:
            barrier.wait()
            for _ in range(requests_per_reader):
                status, body = client.request(
                    "POST", f"/tenants/{tenant}/query", {"query": QUERY}
                )
                with lock:
                    if status != 200:
                        errors.append(f"reader{index}: HTTP {status}")
                    elif not low <= body["count"] <= low + writes:
                        errors.append(
                            f"reader{index}: count {body['count']} outside "
                            f"[{low}, {low + writes}]"
                        )
        except Exception as exc:
            with lock:
                errors.append(f"reader{index}: {type(exc).__name__}: {exc}")
        finally:
            client.close()

    threads = [threading.Thread(target=writer, name="e13-writer")] + [
        threading.Thread(target=reader, args=(i,), name=f"e13-reader{i}")
        for i in range(readers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    client = Client(base)
    try:
        _status, body = client.request(
            "POST", f"/tenants/{tenant}/query", {"query": QUERY}
        )
        final = body["count"]
    finally:
        client.close()
    if final != low + writes:
        errors.append(f"final count {final} != {low + writes}")
    return {
        "readers": readers,
        "writes": writes,
        "final_answers": final,
        "errors": errors,
        "wall_seconds": round(wall, 3),
    }


def _full_sweep() -> dict:
    """The nightly-size experiment; shared by pytest and ``--full``."""
    expected = _direct_answers(FULL_TENANTS)
    names = [spec[0] for spec in FULL_TENANTS]
    config = ServiceConfig(port=0, max_inflight=32, query_timeout=60.0)
    with ServiceHarness(config, FULL_TENANTS) as harness:
        sweep = []
        for clients in FULL_CLIENT_COUNTS:
            outcome = _drive_load(
                harness.base, names, clients, FULL_REQUESTS_PER_CLIENT, expected
            )
            assert not outcome["errors"], outcome["errors"][:3]
            assert outcome["requests"] == clients * FULL_REQUESTS_PER_CLIENT
            sweep.append(outcome)
        mixed = _mixed_read_write(
            harness.base,
            names[0],
            readers=4,
            requests_per_reader=15,
            writes=20,
            low=len(expected[names[0]]),
        )
        assert not mixed["errors"], mixed["errors"][:3]
    return {"sweep": sweep, "mixed": mixed}


def test_e13_service_load(benchmark):
    outcome = _full_sweep()
    print_table(
        ["clients", "requests", "p50 (ms)", "p99 (ms)", "mean (ms)", "req/s"],
        [
            (
                row["clients"],
                row["requests"],
                row["p50_ms"],
                row["p99_ms"],
                row["mean_ms"],
                row["throughput_rps"],
            )
            for row in outcome["sweep"]
        ],
        title=(
            f"E13  Service load, {len(FULL_TENANTS)} tenants x "
            f"{FULL_TENANTS[0][2]} entities, {FULL_REQUESTS_PER_CLIENT} "
            f"requests/client"
        ),
    )
    mixed = outcome["mixed"]
    print(
        f"mixed phase: {mixed['readers']} readers vs {mixed['writes']} mutation "
        f"batches in {mixed['wall_seconds']}s, final {mixed['final_answers']} answers"
    )

    tenants = [("bench", "university", 150, 5)]
    expected = _direct_answers(tenants)
    config = ServiceConfig(port=0, max_inflight=8, query_timeout=60.0)
    with ServiceHarness(config, tenants) as harness:
        client = Client(harness.base)
        try:

            def one_request():
                status, body = client.request(
                    "POST", "/tenants/bench/query", {"query": QUERY}
                )
                assert status == 200 and body["answers"] == expected["bench"]

            benchmark(one_request)
        finally:
            client.close()


def smoke() -> dict:
    """Tiny-input smoke: 4 clients over 2 tenants, byte-identical answers."""
    tenants = (("t0", "university", 100, 11), ("t1", "university", 100, 12))
    expected = _direct_answers(tenants)
    config = ServiceConfig(port=0, max_inflight=8, query_timeout=30.0)
    with ServiceHarness(config, tenants) as harness:
        outcome = _drive_load(
            harness.base,
            [spec[0] for spec in tenants],
            clients=4,
            requests_per_client=6,
            expected=expected,
        )
    assert not outcome["errors"], outcome["errors"][:3]
    assert outcome["requests"] == 24
    return {
        "tenants": len(tenants),
        "clients": outcome["clients"],
        "requests": outcome["requests"],
        "p50_ms": outcome["p50_ms"],
        "p99_ms": outcome["p99_ms"],
        "throughput_rps": outcome["throughput_rps"],
    }


def _full_main(argv=None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="benchmark e13_service_load (full-size run)"
    )
    parser.add_argument("--full", action="store_true", required=True)
    parser.add_argument("--out", metavar="FILE", help="also write the JSON to FILE")
    args = parser.parse_args(argv)
    started = time.perf_counter()
    payload: dict = {"bench": "e13_service_load", "mode": "full"}
    try:
        payload["metrics"] = _full_sweep()
        payload["ok"] = True
    except Exception as exc:
        payload["metrics"] = {}
        payload["ok"] = False
        payload["error"] = f"{type(exc).__name__}: {exc}"
        import traceback

        traceback.print_exc(file=sys.stderr)
    payload["seconds"] = round(time.perf_counter() - started, 4)
    text = json.dumps(payload, indent=2) + "\n"
    sys.stdout.write(text)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text, encoding="utf-8")
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    import sys

    if "--full" in sys.argv[1:]:
        sys.exit(_full_main())
    from _smoke import bench_main

    sys.exit(bench_main("e13_service_load", smoke))
