"""E7 — Theorem 5.2 / Algorithm 1: enumerating minimal partial answers.

The headline result of the paper: minimal partial answers with a single
wildcard are enumerated with linear preprocessing and constant delay.  The
sweep reports preprocessing time, answer counts (broken down by number of
wildcards), mean and p95 delay, and the naive baseline that materialises and
minimises every homomorphism.  Proposition 2.1 (complete answers first) is
exercised as part of the benchmark body.
"""

from repro.baselines import naive_minimal_partial_answers
from repro.bench import measure_enumeration, print_table, scaling_exponent, time_call
from repro.core import WILDCARD, MinimalPartialAnswerEnumerator
from repro.workloads import (
    generate_office_database,
    generate_university_database,
    office_omq,
    university_omq,
)

SIZES = (400, 800, 1600, 3200)


def _sweep(omq, generator, label):
    rows = []
    sizes, preprocessing_times, mean_delays = [], [], []
    for size in SIZES:
        database = generator(size, seed=size)
        profile = measure_enumeration(
            lambda db=database: MinimalPartialAnswerEnumerator(omq, db)
        )
        naive_time, naive_answers = time_call(
            naive_minimal_partial_answers, omq, database
        )
        rows.append(
            (
                size,
                len(database),
                profile.preprocessing_seconds * 1000,
                profile.answer_count,
                profile.mean_delay * 1e6,
                profile.percentile_delay(0.95) * 1e6,
                naive_time * 1000,
            )
        )
        assert profile.answer_count == len(naive_answers)
        sizes.append(len(database))
        preprocessing_times.append(profile.preprocessing_seconds)
        mean_delays.append(profile.mean_delay)
    preprocessing_exponent = scaling_exponent(sizes, preprocessing_times)
    delay_exponent = scaling_exponent(sizes, mean_delays)
    print_table(
        [
            "size",
            "db facts",
            "preprocess (ms)",
            "answers",
            "mean delay (µs)",
            "p95 delay (µs)",
            "naive total (ms)",
        ],
        rows,
        title=(
            f"E7  Minimal partial answer enumeration, {label} workload "
            f"(Thm 5.2 / Algorithm 1); preprocessing exponent = "
            f"{preprocessing_exponent:.2f}, delay exponent = {delay_exponent:.2f}"
        ),
    )
    return preprocessing_exponent, delay_exponent


def test_e7_partial_enumeration_office(benchmark):
    preprocessing_exponent, delay_exponent = _sweep(
        office_omq(), generate_office_database, "office"
    )
    assert preprocessing_exponent < 1.6
    assert delay_exponent < 0.5

    omq = office_omq()
    database = generate_office_database(800, seed=800)
    benchmark(lambda: list(MinimalPartialAnswerEnumerator(omq, database)))


def test_e7_partial_enumeration_university(benchmark):
    preprocessing_exponent, delay_exponent = _sweep(
        university_omq(), generate_university_database, "university"
    )
    assert preprocessing_exponent < 1.6
    assert delay_exponent < 0.5

    omq = university_omq()
    database = generate_university_database(800, seed=800)
    benchmark(lambda: list(MinimalPartialAnswerEnumerator(omq, database)))


def test_e7_complete_answers_first(benchmark):
    """Proposition 2.1: the combined enumerator outputs complete answers first."""
    omq = office_omq()
    database = generate_office_database(400, seed=400)

    def run():
        ordered = list(
            MinimalPartialAnswerEnumerator(omq, database).enumerate_complete_first()
        )
        wildcard_seen = False
        for answer in ordered:
            if any(value is WILDCARD for value in answer):
                wildcard_seen = True
            else:
                assert not wildcard_seen
        return len(ordered)

    count = benchmark(run)
    assert count > 0


def smoke() -> dict:
    """Tiny-input smoke run: minimal partial answers against the baseline."""
    omq = office_omq()
    database = generate_office_database(60, seed=60)
    answers = list(MinimalPartialAnswerEnumerator(omq, database))
    naive = naive_minimal_partial_answers(omq, database)
    assert len(answers) == len(naive)
    return {"db_facts": len(database), "answers": len(answers)}


if __name__ == "__main__":
    import sys

    from _smoke import bench_main

    sys.exit(bench_main("e7_enum_partial", smoke))
