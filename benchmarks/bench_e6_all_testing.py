"""E6 — Theorem 4.1(2) / Proposition 4.2: all-testing complete answers.

After linear preprocessing, each membership test must take time independent
of the database.  The sweep grows the database and keeps the number of tests
fixed; per-test time should stay flat.
"""

import random
import time

from repro.bench import print_table, scaling_exponent, time_call
from repro.core import OMQAllTester
from repro.workloads import generate_office_database, office_omq

SIZES = (400, 800, 1600, 3200)
TESTS_PER_SIZE = 2000


def test_e6_all_testing(benchmark):
    omq = office_omq()
    rng = random.Random(1)
    rows = []
    sizes, per_test_times = [], []
    for size in SIZES:
        database = generate_office_database(size, seed=size)
        adom = sorted(database.adom(), key=repr)
        candidates = [
            tuple(rng.choice(adom) for _ in range(3)) for _ in range(TESTS_PER_SIZE)
        ]
        preprocessing, tester = time_call(OMQAllTester, omq, database)
        start = time.perf_counter()
        positives = sum(1 for candidate in candidates if tester.test(candidate))
        per_test = (time.perf_counter() - start) / len(candidates)
        rows.append(
            (
                size,
                len(database),
                preprocessing * 1000,
                TESTS_PER_SIZE,
                positives,
                per_test * 1e6,
            )
        )
        sizes.append(len(database))
        per_test_times.append(per_test)
    exponent = scaling_exponent(sizes, per_test_times)
    print_table(
        [
            "researchers",
            "db facts",
            "preprocess (ms)",
            "tests",
            "positive",
            "per test (µs)",
        ],
        rows,
        title=(
            "E6  All-testing complete answers (Thm 4.1(2)); "
            f"per-test scaling exponent = {exponent:.2f} (0 = constant)"
        ),
    )
    assert exponent < 0.5

    database = generate_office_database(800, seed=800)
    tester = OMQAllTester(omq, database)
    adom = sorted(database.adom(), key=repr)
    candidate = (adom[0], adom[1], adom[2])
    benchmark(tester.test, candidate)


def smoke() -> dict:
    """Tiny-input smoke run: all-test a batch of random candidates."""
    omq = office_omq()
    rng = random.Random(1)
    database = generate_office_database(60, seed=60)
    adom = sorted(database.adom(), key=repr)
    candidates = [tuple(rng.choice(adom) for _ in range(3)) for _ in range(100)]
    tester = OMQAllTester(omq, database)
    positives = sum(1 for candidate in candidates if tester.test(candidate))
    return {"db_facts": len(database), "tests": len(candidates), "positives": positives}


if __name__ == "__main__":
    import sys

    from _smoke import bench_main

    sys.exit(bench_main("e6_all_testing", smoke))
