"""Shared ``--smoke`` CLI for the benchmark scripts.

Every ``bench_e*.py`` exposes a ``smoke()`` function that exercises the same
code path as the full pytest sweep on tiny inputs and returns a metrics
dictionary.  ``bench_main`` wraps it in an argument parser and emits a
one-line JSON report to stdout, so CI can assert that every experiment still
runs end-to-end in seconds.  Full-size runs go through pytest:
``python -m pytest benchmarks -m bench --benchmark-disable -s``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import traceback
from typing import Callable


def bench_main(name: str, smoke: Callable[[], dict]) -> int:
    parser = argparse.ArgumentParser(
        description=f"benchmark {name} (smoke harness)",
        epilog=(
            "Full-size sweeps run through pytest: "
            "python -m pytest benchmarks -m bench --benchmark-disable -s"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the experiment on tiny inputs and print a JSON report",
    )
    args = parser.parse_args()
    if not args.smoke:
        parser.print_help()
        return 2
    if not __debug__:
        # The smoke() cross-checks are assert statements; under -O they all
        # vanish and the report would claim ok=true without checking anything.
        print(
            "error: smoke checks require asserts enabled (do not run with "
            "python -O / PYTHONOPTIMIZE)",
            file=sys.stderr,
        )
        return 1
    start = time.perf_counter()
    payload: dict = {"bench": name, "mode": "smoke"}
    try:
        payload["metrics"] = smoke()
        payload["ok"] = True
    except Exception as exc:  # surfaced in the JSON so run_all can aggregate
        payload["metrics"] = {}
        payload["ok"] = False
        payload["error"] = f"{type(exc).__name__}: {exc}"
        traceback.print_exc(file=sys.stderr)
    payload["seconds"] = round(time.perf_counter() - start, 4)
    json.dump(payload, sys.stdout)
    sys.stdout.write("\n")
    return 0 if payload["ok"] else 1
