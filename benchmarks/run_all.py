#!/usr/bin/env python
"""Run every ``bench_e*.py`` experiment and aggregate the results.

Default (``--smoke``, also used by CI) runs each experiment's tiny-input
smoke entry in a subprocess and prints one aggregate JSON document to
stdout; the whole sweep finishes in well under a minute.  ``--full`` instead
delegates to pytest for the full-size sweeps (several minutes).

Usage::

    python benchmarks/run_all.py            # smoke (default)
    python benchmarks/run_all.py --full     # pytest -m bench full sweeps
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


def _bench_scripts() -> list[Path]:
    def order(path: Path) -> int:
        # bench_e10 must sort after bench_e9, so order numerically.
        stem = path.stem.split("_")[1]  # "e10"
        return int(stem[1:])

    return sorted(BENCH_DIR.glob("bench_e*.py"), key=order)


def _subprocess_env() -> dict[str, str]:
    """Subprocess environment with ``src/`` importable even when uninstalled."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
    return env


def run_smoke() -> int:
    reports = []
    failures = 0
    started = time.perf_counter()
    for script in _bench_scripts():
        proc = subprocess.run(
            [sys.executable, str(script), "--smoke"],
            capture_output=True,
            text=True,
            env=_subprocess_env(),
            cwd=str(REPO_ROOT),
        )
        try:
            report = json.loads(proc.stdout.strip().splitlines()[-1])
        except (IndexError, json.JSONDecodeError):
            report = {
                "bench": script.stem,
                "mode": "smoke",
                "ok": False,
                "error": (proc.stderr or proc.stdout).strip()[-500:] or "no output",
            }
        if proc.returncode != 0:
            report["ok"] = False
            report.setdefault("error", proc.stderr.strip()[-500:])
        if not report.get("ok"):
            failures += 1
        reports.append(report)
    aggregate = {
        "mode": "smoke",
        "total_seconds": round(time.perf_counter() - started, 3),
        "benchmarks": len(reports),
        "failures": failures,
        "reports": reports,
    }
    json.dump(aggregate, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 1 if failures else 0


def run_full() -> int:
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_DIR),
        "-m",
        "bench",
        "--benchmark-disable",
        "-s",
        "-q",
    ]
    return subprocess.call(command, env=_subprocess_env(), cwd=str(REPO_ROOT))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke",
        action="store_true",
        help="tiny inputs, aggregate JSON to stdout (default)",
    )
    mode.add_argument(
        "--full", action="store_true", help="full-size sweeps through pytest"
    )
    args = parser.parse_args()
    if args.full:
        return run_full()
    return run_smoke()


if __name__ == "__main__":
    sys.exit(main())
