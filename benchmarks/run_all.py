#!/usr/bin/env python
"""Run every ``bench_e*.py`` experiment and aggregate the results.

Default (``--smoke``, also used by CI) runs each experiment's tiny-input
smoke entry in a subprocess and prints one aggregate JSON document to
stdout; the whole sweep finishes in well under a minute.  ``--repeat N``
runs each experiment N times and reports the *median* seconds per
experiment — that is how ``benchmarks/baseline.json`` is produced for the
CI regression gate (see ``benchmarks/compare.py``).  ``--full`` instead
delegates to pytest for the full-size sweeps (several minutes) and emits a
JSON summary to stdout with the pytest output on stderr.

Usage::

    python benchmarks/run_all.py                     # smoke (default)
    python benchmarks/run_all.py --repeat 5          # smoke medians, 5 runs each
    python benchmarks/run_all.py --out report.json   # also write the JSON to a file
    python benchmarks/run_all.py --full              # pytest -m bench full sweeps
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


def _bench_scripts() -> list[Path]:
    def order(path: Path) -> int:
        # bench_e10 must sort after bench_e9, so order numerically.
        stem = path.stem.split("_")[1]  # "e10"
        return int(stem[1:])

    return sorted(BENCH_DIR.glob("bench_e*.py"), key=order)


def _subprocess_env() -> dict[str, str]:
    """Subprocess environment with ``src/`` importable even when uninstalled."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
    return env


def _run_one_smoke(script: Path) -> dict:
    proc = subprocess.run(
        [sys.executable, str(script), "--smoke"],
        capture_output=True,
        text=True,
        env=_subprocess_env(),
        cwd=str(REPO_ROOT),
    )
    try:
        report = json.loads(proc.stdout.strip().splitlines()[-1])
    except (IndexError, json.JSONDecodeError):
        report = {
            "bench": script.stem,
            "mode": "smoke",
            "ok": False,
            "error": (proc.stderr or proc.stdout).strip()[-500:] or "no output",
        }
    if proc.returncode != 0:
        report["ok"] = False
        report.setdefault("error", proc.stderr.strip()[-500:])
    return report


def _emit(aggregate: dict, out: str | None) -> None:
    text = json.dumps(aggregate, indent=2) + "\n"
    sys.stdout.write(text)
    if out:
        Path(out).write_text(text, encoding="utf-8")


def run_smoke(repeat: int, out: str | None) -> int:
    reports = []
    failures = 0
    started = time.perf_counter()
    for script in _bench_scripts():
        samples: list[float] = []
        report: dict = {}
        for _ in range(repeat):
            report = _run_one_smoke(script)
            if not report.get("ok"):
                break
            samples.append(float(report.get("seconds", 0.0)))
        if report.get("ok") and samples:
            report["seconds"] = round(statistics.median(samples), 4)
            if repeat > 1:
                report["samples"] = [round(s, 4) for s in samples]
        else:
            failures += 1
        reports.append(report)
    aggregate = {
        "mode": "smoke",
        "repeat": repeat,
        "total_seconds": round(time.perf_counter() - started, 3),
        "benchmarks": len(reports),
        "failures": failures,
        "reports": reports,
    }
    _emit(aggregate, out)
    return 1 if failures else 0


def run_full(out: str | None) -> int:
    """Full-size sweeps through pytest, with a JSON summary on stdout.

    The pytest output (benchmark tables included) streams to stderr so that
    stdout stays a single machine-readable JSON document, mirroring smoke
    mode; the nightly workflow archives that document as an artifact.
    """
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_DIR),
        "-m",
        "bench",
        "--benchmark-disable",
        "-s",
        "-q",
    ]
    started = time.perf_counter()
    returncode = subprocess.call(
        command, env=_subprocess_env(), cwd=str(REPO_ROOT), stdout=sys.stderr
    )
    aggregate = {
        "mode": "full",
        "total_seconds": round(time.perf_counter() - started, 3),
        "benchmarks": len(_bench_scripts()),
        "returncode": returncode,
        "ok": returncode == 0,
    }
    _emit(aggregate, out)
    return returncode


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke",
        action="store_true",
        help="tiny inputs, aggregate JSON to stdout (default)",
    )
    mode.add_argument(
        "--full", action="store_true", help="full-size sweeps through pytest"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="smoke mode: run each experiment N times, report median seconds",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="also write the aggregate JSON document to FILE",
    )
    args = parser.parse_args()
    if args.repeat < 1:
        parser.error("--repeat must be at least 1")
    if args.full:
        return run_full(args.out)
    return run_smoke(args.repeat, args.out)


if __name__ == "__main__":
    sys.exit(main())
