"""E4 — Theorem 3.1(2,3): single-testing minimal partial answers.

Measures single-testing of minimal partial answers with a single wildcard
and with multi-wildcards on office databases of growing size.  The tested
tuples are actual minimal partial answers (taken from the enumeration), so
every test exercises both the partial-answer check and the minimality check.
"""

import time

from repro.bench import print_table, scaling_exponent, time_call
from repro.core import MinimalPartialAnswerEnumerator, MultiWildcardEnumerator, OMQSingleTester
from repro.workloads import generate_office_database, office_omq

SIZES = (400, 800, 1600)
TESTS_PER_SIZE = 30


def test_e4_single_testing_partial(benchmark):
    omq = office_omq()
    rows = []
    db_sizes, totals = [], []
    for size in SIZES:
        database = generate_office_database(size, seed=size)
        single_answers = list(MinimalPartialAnswerEnumerator(omq, database))[:TESTS_PER_SIZE]
        multi_answers = list(MultiWildcardEnumerator(omq, database))[:TESTS_PER_SIZE]
        preprocessing, tester = time_call(OMQSingleTester, omq, database)

        start = time.perf_counter()
        for answer in single_answers:
            assert tester.test_minimal_partial(answer)
        single_per_test = (time.perf_counter() - start) / max(1, len(single_answers))

        start = time.perf_counter()
        for answer in multi_answers:
            assert tester.test_minimal_partial_multi(answer)
        multi_per_test = (time.perf_counter() - start) / max(1, len(multi_answers))

        rows.append(
            (
                size,
                len(database),
                preprocessing * 1000,
                single_per_test * 1e6,
                multi_per_test * 1e6,
            )
        )
        db_sizes.append(len(database))
        totals.append(preprocessing + single_per_test * len(single_answers))
    exponent = scaling_exponent(db_sizes, totals)
    print_table(
        [
            "researchers",
            "db facts",
            "preprocess (ms)",
            "single-wildcard test (µs)",
            "multi-wildcard test (µs)",
        ],
        rows,
        title=(
            "E4  Single-testing minimal partial answers (Thm 3.1(2,3)); "
            f"fitted exponent = {exponent:.2f}"
        ),
    )
    assert exponent < 1.7

    database = generate_office_database(400, seed=400)
    tester = OMQSingleTester(omq, database)
    answer = next(iter(MinimalPartialAnswerEnumerator(omq, database)))
    benchmark(tester.test_minimal_partial, answer)


def smoke() -> dict:
    """Tiny-input smoke run: test a few enumerated minimal partial answers."""
    omq = office_omq()
    database = generate_office_database(80, seed=80)
    single_answers = list(MinimalPartialAnswerEnumerator(omq, database))[:5]
    multi_answers = list(MultiWildcardEnumerator(omq, database))[:5]
    tester = OMQSingleTester(omq, database)
    for answer in single_answers:
        assert tester.test_minimal_partial(answer)
    for answer in multi_answers:
        assert tester.test_minimal_partial_multi(answer)
    return {
        "db_facts": len(database),
        "single_tested": len(single_answers),
        "multi_tested": len(multi_answers),
    }


if __name__ == "__main__":
    import sys

    from _smoke import bench_main

    sys.exit(bench_main("e4_partial_testing", smoke))
