"""E1 — Figure 1: classification of the example CQs by acyclicity notions.

Regenerates the figure as a table: for each of the five example queries the
columns say whether it is acyclic (ac), free-connex acyclic (fc) and weakly
acyclic (wac).  The benchmark measures the classification itself (all three
tests on all five queries), which is a pure query-complexity operation.
"""

from repro.bench import print_table
from repro.cq.acyclicity import classify, figure1_examples


def _classification_rows():
    rows = []
    for name, query, props in figure1_examples():
        rows.append(
            (
                name,
                len(query.atoms),
                "yes" if props["acyclic"] else "no",
                "yes" if props["free_connex_acyclic"] else "no",
                "yes" if props["weakly_acyclic"] else "no",
            )
        )
    return rows


def test_e1_figure1_classification(benchmark):
    def classify_all():
        return [classify(query) for _name, query, _props in figure1_examples()]

    results = benchmark(classify_all)
    assert len(results) == 5
    print_table(
        ["query", "atoms", "acyclic", "free-connex acyclic", "weakly acyclic"],
        _classification_rows(),
        title="E1  Figure 1: acyclicity classification of the example CQs",
    )


def smoke() -> dict:
    """Tiny-input smoke run: classify every Figure 1 example query."""
    results = [classify(query) for _name, query, _props in figure1_examples()]
    assert len(results) == 5
    return {"queries": len(results)}


if __name__ == "__main__":
    import sys

    from _smoke import bench_main

    sys.exit(bench_main("e1_figure1_classification", smoke))
