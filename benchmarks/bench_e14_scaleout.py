"""E14 — Sharded shared-memory scale-out for chase and batch enumeration.

The scale-out tentpole claims the restricted chase parallelises across
forked worker processes with near-linear speedup on the matching phase:
workers match their hash-partition slice of each round's delta against
copy-on-write instance replicas (boundary facts travel through a
shared-memory block as dense term ids, zero pickling of rows), and the
master only re-checks and fires the surviving proposals.  This experiment
times the sequential chase against the parallel chase on growing university
databases, then fans a prepared-query batch across the same pool, and
checks three invariants on every configuration:

* **byte-identical answers** — the parallel engine's answer sets equal a
  sequential engine's on the same database;
* **identical models** — the null-free facts of the parallel chase equal
  the sequential chase's (the differential harness pins the general case);
* **zero leaked segments** — ``/dev/shm`` accounting is empty afterwards.

The >=2x speedup gate on 4 workers only applies where the host actually
has >= 4 CPUs; on smaller machines (CI containers are often 1-2 vCPUs)
the timings are reported and the gate is skipped — correctness checks
always run.
"""

from __future__ import annotations

import os
import time

from repro.bench import print_table
from repro.chase.standard import chase
from repro.data.instance import Database, Instance
from repro.data.terms import is_null
from repro.engine import QueryEngine
from repro.parallel import active_segments, parallel_chase, supported
from repro.workloads.university import (
    generate_university_database,
    university_omq,
    university_ontology,
)

FULL_SIZES = (400, 800, 1600)
FULL_WORKERS = 4
SPEEDUP_GATE = 2.0
DEPTH = 3


def _null_free(instance: Instance) -> frozenset:
    return frozenset(
        fact for fact in instance if not any(is_null(arg) for arg in fact.args)
    )


def _chase_phase(size: int, workers: int, seed: int = 7) -> dict:
    """Time sequential vs parallel chase on one database; verify the model."""
    database = Database(generate_university_database(size, seed=seed))
    ontology = university_ontology()

    started = time.perf_counter()
    sequential = chase(Instance(database), ontology, max_null_depth=DEPTH)
    sequential_seconds = time.perf_counter() - started

    started = time.perf_counter()
    run = parallel_chase(database, ontology, workers, max_null_depth=DEPTH)
    parallel_seconds = time.perf_counter() - started
    try:
        assert _null_free(run.result.instance) == _null_free(sequential.instance)
    finally:
        run.pool.close()
    assert active_segments() == set()
    return {
        "size": size,
        "db_facts": len(database),
        "chase_facts": len(sequential.instance),
        "rounds": sequential.rounds,
        "boundary_facts": run.boundary_facts,
        "sequential_seconds": sequential_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": sequential_seconds / parallel_seconds
        if parallel_seconds
        else float("inf"),
    }


def _batch_phase(size: int, workers: int, repeat: int = 8, seed: int = 7) -> dict:
    """Fan a prepared batch across the pool; answers must be byte-identical."""
    database = Database(generate_university_database(size, seed=seed))
    omq = university_omq()
    reference = QueryEngine(university_ontology(), database, workers=1)
    expected = reference.execute(omq)

    engine = QueryEngine(
        university_ontology(), database, workers=workers, incremental=False
    )
    try:
        batch = [omq] * repeat
        started = time.perf_counter()
        answer_sets = engine.execute_batch(batch)
        batch_seconds = time.perf_counter() - started
        assert answer_sets == [expected] * repeat
        stats = engine.snapshot()
        assert stats.parallel_chases == 1
    finally:
        engine.shutdown()
    assert active_segments() == set()
    return {
        "answers": len(expected),
        "batch_queries": repeat,
        "batch_seconds": batch_seconds,
        "parallel_tasks": stats.parallel_tasks,
    }


def smoke() -> dict:
    """Tiny-input smoke: 2 workers, identical model/answers, no leaks."""
    assert supported(), "fork start method unavailable"
    outcome = _chase_phase(120, workers=2)
    batch = _batch_phase(120, workers=2, repeat=4)
    report = {
        "size": outcome["size"],
        "db_facts": outcome["db_facts"],
        "chase_facts": outcome["chase_facts"],
        "boundary_facts": outcome["boundary_facts"],
        "answers": batch["answers"],
        "speedup": round(outcome["speedup"], 2),
        "cpus": os.cpu_count(),
    }
    # The speedup gate needs real cores to mean anything; equality and
    # leak checks above ran unconditionally.
    if (os.cpu_count() or 1) >= 4:
        assert outcome["speedup"] > 1.0, report
    return report


def test_e14_scaleout():
    if not supported():
        import pytest

        pytest.skip("fork start method unavailable")
    rows = []
    worst = float("inf")
    for size in FULL_SIZES:
        outcome = _chase_phase(size, workers=FULL_WORKERS)
        worst = min(worst, outcome["speedup"])
        rows.append(
            (
                size,
                outcome["db_facts"],
                outcome["chase_facts"],
                outcome["rounds"],
                outcome["boundary_facts"],
                outcome["sequential_seconds"] * 1000,
                outcome["parallel_seconds"] * 1000,
                outcome["speedup"],
            )
        )
    print_table(
        [
            "size",
            "db facts",
            "chase facts",
            "rounds",
            "boundary",
            "sequential (ms)",
            f"parallel x{FULL_WORKERS} (ms)",
            "speedup",
        ],
        rows,
    )
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert worst >= SPEEDUP_GATE, (
            f"chase speedup {worst:.2f}x on {FULL_WORKERS} workers "
            f"below the {SPEEDUP_GATE}x gate ({cpus} CPUs)"
        )
    else:
        import pytest

        pytest.skip(
            f"speedup gate needs >= 4 CPUs, host has {cpus} "
            f"(measured {worst:.2f}x; correctness checks passed)"
        )


if __name__ == "__main__":
    import sys

    from _smoke import bench_main

    sys.exit(bench_main("e14_scaleout", smoke))
