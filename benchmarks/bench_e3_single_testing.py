"""E3 — Theorem 3.1(1): single-testing complete answers in linear time.

Sweeps office databases, measuring (a) the preprocessing (chase) time and
(b) the time to single-test a batch of candidate answers, compared against
the naive baseline that materialises all certain answers first.  The
per-test time should stay flat while the naive baseline grows with the data.
"""

import random
import time

from repro.baselines import naive_certain_answers
from repro.bench import print_table, scaling_exponent, time_call
from repro.core import OMQSingleTester
from repro.workloads import generate_office_database, office_omq

SIZES = (400, 800, 1600, 3200)
TESTS_PER_SIZE = 50


def _candidates(database, rng, count):
    adom = sorted(database.adom(), key=repr)
    return [tuple(rng.choice(adom) for _ in range(3)) for _ in range(count)]


def test_e3_single_testing_complete(benchmark):
    omq = office_omq()
    rng = random.Random(0)
    rows = []
    db_sizes, test_times = [], []
    for size in SIZES:
        database = generate_office_database(size, seed=size)
        candidates = _candidates(database, rng, TESTS_PER_SIZE)
        preprocessing, tester = time_call(OMQSingleTester, omq, database)
        start = time.perf_counter()
        for candidate in candidates:
            tester.test_complete(candidate)
        per_test = (time.perf_counter() - start) / len(candidates)
        naive_time, _ = time_call(naive_certain_answers, omq, database)
        rows.append(
            (
                size,
                len(database),
                preprocessing * 1000,
                per_test * 1e6,
                naive_time * 1000,
            )
        )
        db_sizes.append(len(database))
        test_times.append(preprocessing + per_test * len(candidates))
    exponent = scaling_exponent(db_sizes, test_times)
    print_table(
        [
            "researchers",
            "db facts",
            "preprocess (ms)",
            "per test (µs)",
            "naive materialise (ms)",
        ],
        rows,
        title=(
            "E3  Single-testing complete answers (Thm 3.1(1)); "
            f"fitted exponent of preprocess+tests = {exponent:.2f}"
        ),
    )
    assert exponent < 1.6

    database = generate_office_database(800, seed=800)
    tester = OMQSingleTester(omq, database)
    candidate = next(iter(naive_certain_answers(omq, database)), ("a", "b", "c"))
    benchmark(tester.test_complete, candidate)


def smoke() -> dict:
    """Tiny-input smoke run: single-test a handful of candidates."""
    omq = office_omq()
    rng = random.Random(0)
    database = generate_office_database(60, seed=60)
    candidates = _candidates(database, rng, 10)
    tester = OMQSingleTester(omq, database)
    positives = sum(1 for candidate in candidates if tester.test_complete(candidate))
    reference = naive_certain_answers(omq, database)
    assert positives == sum(1 for c in candidates if c in reference)
    return {"db_facts": len(database), "tests": len(candidates), "positives": positives}


if __name__ == "__main__":
    import sys

    from _smoke import bench_main

    sys.exit(bench_main("e3_single_testing", smoke))
