"""Benchmark-directory conftest: everything collected here is ``bench``.

The ``bench`` marker keeps the harness out of the default (tier-1) test
selection; run it explicitly with ``pytest benchmarks -m bench`` or through
``python benchmarks/run_all.py``.
"""

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.bench)
