"""E10 — Theorem 4.4: the Boolean matrix multiplication lower-bound shape.

The projected query ``q(x, y) ← R(x, z), S(z, y)`` (acyclic, not free-connex)
computes the Boolean matrix product; enumerating it requires join-and-project
work comparable to sparse BMM.  The full variant ``q(x, z, y)`` is free-connex
and enumerates with constant delay after linear preprocessing.  The sweep
contrasts the two, with the sparse and dense BMM baselines for scale.
"""

from repro.baselines import naive_certain_answers
from repro.bench import measure_enumeration, print_table, time_call
from repro.core import CompleteAnswerEnumerator
from repro.reductions import (
    bmm_free_connex_omq,
    bmm_omq,
    boolean_matrix_multiply_naive,
    boolean_matrix_multiply_sparse,
    matrices_to_database,
)
from repro.workloads import random_sparse_matrix

DIMENSIONS = (20, 30, 40)
DENSITY = 0.1


def test_e10_bmm_lower_bound(benchmark):
    projected = bmm_omq()
    full = bmm_free_connex_omq()
    rows = []
    for dimension in DIMENSIONS:
        m1 = random_sparse_matrix(dimension, DENSITY, seed=dimension)
        m2 = random_sparse_matrix(dimension, DENSITY, seed=dimension + 1)
        database = matrices_to_database(m1, m2)

        sparse_time, sparse_product = time_call(boolean_matrix_multiply_sparse, m1, m2)
        dense_time, dense_product = time_call(
            boolean_matrix_multiply_naive, m1, m2, dimension
        )
        assert sparse_product == dense_product

        projected_time, projected_answers = time_call(
            naive_certain_answers, projected, database
        )
        assert projected_answers == sparse_product

        full_profile = measure_enumeration(
            lambda db=database: CompleteAnswerEnumerator(full, db)
        )
        rows.append(
            (
                dimension,
                len(m1) + len(m2),
                len(sparse_product),
                sparse_time * 1000,
                dense_time * 1000,
                projected_time * 1000,
                full_profile.preprocessing_seconds * 1000,
                full_profile.mean_delay * 1e6,
            )
        )
    print_table(
        [
            "n",
            "input 1s",
            "output 1s",
            "sparse BMM (ms)",
            "dense BMM (ms)",
            "projected OMQ (ms)",
            "full OMQ preprocess (ms)",
            "full OMQ delay (µs)",
        ],
        rows,
        title=(
            "E10  BMM lower bound (Thm 4.4): the projected OMQ pays join-and-"
            "project cost like sparse BMM; the free-connex full variant keeps "
            "constant delay"
        ),
    )

    m1 = random_sparse_matrix(25, DENSITY, seed=99)
    m2 = random_sparse_matrix(25, DENSITY, seed=100)
    database = matrices_to_database(m1, m2)
    benchmark(lambda: list(CompleteAnswerEnumerator(full, database)))


def smoke() -> dict:
    """Tiny-input smoke run: BMM via the projected and full OMQs."""
    m1 = random_sparse_matrix(8, DENSITY, seed=8)
    m2 = random_sparse_matrix(8, DENSITY, seed=9)
    database = matrices_to_database(m1, m2)
    sparse = boolean_matrix_multiply_sparse(m1, m2)
    assert naive_certain_answers(bmm_omq(), database) == sparse
    full_answers = list(CompleteAnswerEnumerator(bmm_free_connex_omq(), database))
    return {
        "input_ones": len(m1) + len(m2),
        "output_ones": len(sparse),
        "full_answers": len(full_answers),
    }


if __name__ == "__main__":
    import sys

    from _smoke import bench_main

    sys.exit(bench_main("e10_bmm_lower_bound", smoke))
