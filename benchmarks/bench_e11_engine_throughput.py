"""E11 — Prepared-query engine throughput: repeated and batched workloads.

The engine's whole value proposition is amortization: the preprocessing half
of CD∘Lin (chase + reduction) runs once per (ontology, database) and once
per query plan, after which every further execution pays only the
enumeration phase.  This experiment serves the same query ``N`` times — and
a mixed batch of distinct queries — through :class:`repro.engine.QueryEngine`
versus ``N`` fresh :class:`CompleteAnswerEnumerator` constructions, checking
byte-identical answer sets and reporting the throughput ratio (expected well
above the 2× acceptance floor; typically one to two orders of magnitude).
"""

import time

from repro.bench import print_table
from repro.core import OMQ, CompleteAnswerEnumerator
from repro.cq.parser import parse_query
from repro.engine import QueryEngine
from repro.workloads import (
    generate_university_database,
    get_workload,
    university_omq,
)

SIZES = (200, 400, 800, 1600)
REPEATS = 100

# Distinct projections/joins over the university schema for the batch
# workload; each is acyclic and free-connex acyclic.
UNIVERSITY_BATCH_QUERIES = (
    "q0(s, a, d) :- HasAdvisor(s, a), WorksFor(a, d)",
    "q1(s, a) :- HasAdvisor(s, a)",
    "q2(a, d) :- WorksFor(a, d)",
    "q3(d, o) :- SubOrgOf(d, o)",
    "q4(f) :- Faculty(f)",
)


def _repeated_workload(omq, database, repeats):
    """Time ``repeats`` executions: fresh enumerators vs one engine."""
    started = time.perf_counter()
    baseline_answers = None
    for _ in range(repeats):
        baseline_answers = set(CompleteAnswerEnumerator(omq, database))
    baseline_seconds = time.perf_counter() - started

    engine = QueryEngine(omq.ontology, database)
    started = time.perf_counter()
    engine_answers = None
    for _ in range(repeats):
        engine_answers = engine.execute(omq.query)
    engine_seconds = time.perf_counter() - started

    assert engine_answers == baseline_answers, "engine answers diverge from baseline"
    return baseline_seconds, engine_seconds, len(baseline_answers)


def _batch_workload(database, repeats):
    """A mixed batch of distinct university queries, engine vs fresh."""
    omq = university_omq()
    queries = [parse_query(text) for text in UNIVERSITY_BATCH_QUERIES]
    batch = [queries[i % len(queries)] for i in range(repeats)]

    started = time.perf_counter()
    baseline = [
        set(CompleteAnswerEnumerator(OMQ.from_parts(omq.ontology, query), database))
        for query in batch
    ]
    baseline_seconds = time.perf_counter() - started

    engine = QueryEngine(omq.ontology, database)
    started = time.perf_counter()
    answer_sets = engine.execute_batch(batch)
    engine_seconds = time.perf_counter() - started

    assert answer_sets == baseline, "batched answers diverge from per-query baseline"
    return baseline_seconds, engine_seconds


def _sweep(workload_name, repeats=REPEATS):
    """Sweep one registry workload (resolved by name) over SIZES."""
    workload = get_workload(workload_name)
    label = workload.name
    rows = []
    worst_speedup = float("inf")
    for size in SIZES:
        scenario = workload.scenario(size=size, seed=size)
        omq = OMQ.from_parts(scenario.ontology, scenario.queries[0], name=label)
        database = scenario.database
        baseline_seconds, engine_seconds, answers = _repeated_workload(
            omq, database, repeats
        )
        speedup = baseline_seconds / engine_seconds if engine_seconds else float("inf")
        worst_speedup = min(worst_speedup, speedup)
        rows.append(
            (
                size,
                len(database),
                answers,
                baseline_seconds * 1000,
                engine_seconds * 1000,
                repeats / engine_seconds if engine_seconds else float("inf"),
                speedup,
            )
        )
    print_table(
        [
            "size",
            "db facts",
            "answers",
            f"fresh x{repeats} (ms)",
            f"engine x{repeats} (ms)",
            "engine q/s",
            "speedup",
        ],
        rows,
        title=f"E11  Prepared-query engine, {label} workload, {repeats} repeated queries",
    )
    return worst_speedup


def _benchmark_workload(benchmark, workload_name):
    worst = _sweep(workload_name)
    assert worst >= 2.0, f"engine must be >= 2x fresh enumerators, got {worst:.2f}x"

    scenario = get_workload(workload_name).scenario(size=800, seed=800)
    engine = QueryEngine(scenario.ontology, scenario.database)
    query = scenario.queries[0]
    engine.execute(query)
    benchmark(lambda: engine.execute(query))


def test_e11_repeated_university(benchmark):
    _benchmark_workload(benchmark, "university")


def test_e11_repeated_office(benchmark):
    _benchmark_workload(benchmark, "office")


def test_e11_batch_university(benchmark):
    database = generate_university_database(800, seed=800)
    baseline_seconds, engine_seconds = _batch_workload(database, REPEATS)
    speedup = baseline_seconds / engine_seconds if engine_seconds else float("inf")
    print_table(
        ["repeats", "fresh (ms)", "engine batch (ms)", "speedup"],
        [(REPEATS, baseline_seconds * 1000, engine_seconds * 1000, speedup)],
        title="E11  Mixed-query batch, university workload",
    )
    assert speedup >= 2.0, f"batch must be >= 2x fresh enumerators, got {speedup:.2f}x"

    omq = university_omq()
    engine = QueryEngine(omq.ontology, database)
    queries = [parse_query(text) for text in UNIVERSITY_BATCH_QUERIES]
    engine.execute_batch(queries)
    benchmark(lambda: engine.execute_batch(queries))


def smoke() -> dict:
    """Tiny-input smoke run: 100 repeated + 100 batched queries, both ways."""
    omq = university_omq()
    database = generate_university_database(120, seed=120)
    baseline_seconds, engine_seconds, answers = _repeated_workload(omq, database, 100)
    repeated_speedup = (
        baseline_seconds / engine_seconds if engine_seconds else float("inf")
    )
    assert repeated_speedup >= 2.0, (
        f"repeated-query speedup {repeated_speedup:.2f}x is below the 2x floor"
    )
    batch_baseline, batch_engine = _batch_workload(database, 100)
    batch_speedup = batch_baseline / batch_engine if batch_engine else float("inf")
    assert batch_speedup >= 2.0, (
        f"batch speedup {batch_speedup:.2f}x is below the 2x floor"
    )
    return {
        "university_answers": answers,
        "db_facts": len(database),
        "repeated_speedup": round(repeated_speedup, 2),
        "batch_speedup": round(batch_speedup, 2),
    }


if __name__ == "__main__":
    import sys

    from _smoke import bench_main

    sys.exit(bench_main("e11_engine_throughput", smoke))
