"""E5 — Theorem 4.1(1): CD∘Lin enumeration of complete answers.

Sweeps office and university databases, reporting preprocessing time (should
grow linearly) and the mean / 95th-percentile delay between consecutive
answers (should stay flat as the data grows).  The naive baseline
materialises every homomorphism before producing output.
"""

from repro.baselines import naive_certain_answers
from repro.bench import measure_enumeration, print_table, scaling_exponent, time_call
from repro.core import CompleteAnswerEnumerator
from repro.workloads import (
    generate_office_database,
    generate_university_database,
    office_omq,
    university_omq,
)

SIZES = (400, 800, 1600, 3200)


def _sweep(omq, generator, label):
    rows = []
    sizes, preprocessing_times, mean_delays = [], [], []
    for size in SIZES:
        database = generator(size, seed=size)
        profile = measure_enumeration(
            lambda db=database: CompleteAnswerEnumerator(omq, db)
        )
        naive_time, _ = time_call(naive_certain_answers, omq, database)
        rows.append(
            (
                size,
                len(database),
                profile.preprocessing_seconds * 1000,
                profile.answer_count,
                profile.mean_delay * 1e6,
                profile.percentile_delay(0.95) * 1e6,
                naive_time * 1000,
            )
        )
        sizes.append(len(database))
        preprocessing_times.append(profile.preprocessing_seconds)
        mean_delays.append(profile.mean_delay)
    preprocessing_exponent = scaling_exponent(sizes, preprocessing_times)
    delay_exponent = scaling_exponent(sizes, mean_delays)
    print_table(
        [
            "size",
            "db facts",
            "preprocess (ms)",
            "answers",
            "mean delay (µs)",
            "p95 delay (µs)",
            "naive total (ms)",
        ],
        rows,
        title=(
            f"E5  Complete-answer enumeration, {label} workload (Thm 4.1(1)); "
            f"preprocessing exponent = {preprocessing_exponent:.2f}, "
            f"delay exponent = {delay_exponent:.2f} (0 = constant)"
        ),
    )
    return preprocessing_exponent, delay_exponent


def test_e5_enumeration_office(benchmark):
    preprocessing_exponent, delay_exponent = _sweep(
        office_omq(), generate_office_database, "office"
    )
    assert preprocessing_exponent < 1.6
    assert delay_exponent < 0.5, "delay must not grow with the database"

    omq = office_omq()
    database = generate_office_database(800, seed=800)
    benchmark(lambda: list(CompleteAnswerEnumerator(omq, database)))


def test_e5_enumeration_university(benchmark):
    preprocessing_exponent, delay_exponent = _sweep(
        university_omq(), generate_university_database, "university"
    )
    assert preprocessing_exponent < 1.6
    assert delay_exponent < 0.5

    omq = university_omq()
    database = generate_university_database(800, seed=800)
    benchmark(lambda: list(CompleteAnswerEnumerator(omq, database)))


def smoke() -> dict:
    """Tiny-input smoke run: enumerate complete answers on both workloads."""
    metrics: dict = {}
    for label, omq_factory, generator in (
        ("office", office_omq, generate_office_database),
        ("university", university_omq, generate_university_database),
    ):
        omq = omq_factory()
        database = generator(60, seed=60)
        answers = set(CompleteAnswerEnumerator(omq, database))
        assert answers == naive_certain_answers(omq, database)
        metrics[f"{label}_answers"] = len(answers)
        metrics[f"{label}_db_facts"] = len(database)
    return metrics


if __name__ == "__main__":
    import sys

    from _smoke import bench_main

    sys.exit(bench_main("e5_enum_complete", smoke))
