"""E9 — Theorems 3.4 / 3.6: the triangle-detection lower-bound shape.

Single-testing a minimal partial answer of the non-weakly-acyclic triangle
OMQ solves triangle detection; its cost therefore grows clearly faster than
linearly in the graph, while the acyclic office OMQ of E3 is tested in
(near-)linear time on databases of comparable size.  The sweep reports both,
plus the direct triangle-detection baseline, on triangle-free graphs (the
worst case, since the search cannot stop early).
"""

import time

from repro.bench import print_table, scaling_exponent, time_call
from repro.core import WILDCARD, OMQSingleTester
from repro.reductions import graph_to_database, has_triangle_naive, triangle_omq
from repro.workloads import generate_office_database, office_omq, random_graph

GRAPH_SIZES = (20, 40, 80)


def test_e9_triangle_lower_bound(benchmark):
    omq = triangle_omq()
    acyclic_omq = office_omq()
    rows = []
    fact_counts, omq_times = [], []
    for vertices in GRAPH_SIZES:
        edges = random_graph(vertices, vertices * 2, seed=vertices, avoid_triangles=True)
        database = graph_to_database(edges)
        naive_time, naive_result = time_call(has_triangle_naive, edges)
        assert naive_result is False

        start = time.perf_counter()
        tester = OMQSingleTester(omq, database)
        is_minimal = tester.test_minimal_partial((WILDCARD, WILDCARD, WILDCARD))
        omq_time = time.perf_counter() - start
        assert is_minimal, "triangle-free graph: (*,*,*) must be minimal"

        office_db = generate_office_database(len(database), seed=vertices)
        office_tester = OMQSingleTester(acyclic_omq, office_db)
        start = time.perf_counter()
        office_tester.test_complete(("person0", "office0", "building0"))
        acyclic_time = time.perf_counter() - start

        rows.append(
            (
                vertices,
                len(database),
                naive_time * 1000,
                omq_time * 1000,
                acyclic_time * 1000,
            )
        )
        fact_counts.append(len(database))
        omq_times.append(omq_time)
    exponent = scaling_exponent(fact_counts, omq_times)
    print_table(
        [
            "vertices",
            "graph facts",
            "naive triangle (ms)",
            "triangle OMQ test (ms)",
            "acyclic OMQ test (ms)",
        ],
        rows,
        title=(
            "E9  Triangle lower bound (Thm 3.4/3.6): the non-weakly-acyclic OMQ "
            f"test scales with exponent {exponent:.2f} in the graph size (it "
            "inherits triangle detection), the acyclic OMQ test stays flat"
        ),
    )
    # The reduction must at least pay for reading the graph; at laptop-scale
    # inputs the measured exponent sits around 1, growing with graph density.
    assert exponent > 0.6, "the reduction should scale with the graph size"

    edges = random_graph(30, 60, seed=7)
    def detect():
        database = graph_to_database(edges)
        tester = OMQSingleTester(omq, database)
        return not tester.test_minimal_partial((WILDCARD, WILDCARD, WILDCARD))

    result = benchmark(detect)
    assert result == has_triangle_naive(edges)


def smoke() -> dict:
    """Tiny-input smoke run: the reduction on a small triangle-free graph."""
    omq = triangle_omq()
    edges = random_graph(10, 20, seed=10, avoid_triangles=True)
    database = graph_to_database(edges)
    tester = OMQSingleTester(omq, database)
    assert has_triangle_naive(edges) is False
    assert tester.test_minimal_partial((WILDCARD, WILDCARD, WILDCARD))
    return {"vertices": 10, "graph_facts": len(database)}


if __name__ == "__main__":
    import sys

    from _smoke import bench_main

    sys.exit(bench_main("e9_triangle_lower_bound", smoke))
