#!/usr/bin/env python
"""Benchmark-regression gate: compare a smoke report against the baseline.

CI calls this after ``run_all.py --smoke``::

    python benchmarks/compare.py smoke-report.json benchmarks/baseline.json

For every experiment in the baseline the report must contain a passing entry
whose median seconds stay within ``tolerance × max(baseline, floor)``.  The
floor absorbs timer noise on sub-100-millisecond experiments (a 30 ms smoke
run jumping to 50 ms is scheduling jitter, not a regression); the tolerance
(default 1.5×, overridable with ``--tolerance`` or the
``BENCH_BASELINE_TOLERANCE`` environment variable) absorbs hardware
variation between the machine that recorded the baseline and the CI runner.

Exit status: 0 when every gated experiment is within bounds, 1 on any
regression, failed experiment, or experiment missing from the report.
Experiments present in the report but absent from the baseline only warn —
that is the window for landing a new benchmark before re-recording the
baseline (``python benchmarks/run_all.py --repeat 5 --out
benchmarks/baseline.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 1.5
DEFAULT_FLOOR_SECONDS = 0.1


def _load_seconds(document: dict) -> dict[str, float | None]:
    """Map experiment name to median seconds (None when the run failed)."""
    seconds: dict[str, float | None] = {}
    for report in document.get("reports", []):
        name = report.get("bench", "?")
        seconds[name] = float(report["seconds"]) if report.get("ok") else None
    return seconds


def compare(
    report: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    floor: float = DEFAULT_FLOOR_SECONDS,
) -> tuple[list[str], list[str]]:
    """Return ``(failures, warnings)`` comparing ``report`` to ``baseline``."""
    failures: list[str] = []
    warnings: list[str] = []
    report_seconds = _load_seconds(report)
    baseline_seconds = _load_seconds(baseline)

    for name, base in sorted(baseline_seconds.items()):
        if base is None:
            warnings.append(f"{name}: baseline entry is marked failed; skipping gate")
            continue
        current = report_seconds.get(name)
        if name not in report_seconds:
            failures.append(f"{name}: missing from the report")
            continue
        if current is None:
            failures.append(f"{name}: experiment failed")
            continue
        limit = tolerance * max(base, floor)
        ratio = current / base if base else float("inf")
        status = "ok" if current <= limit else "REGRESSION"
        line = (
            f"{name}: {current:.3f}s vs baseline {base:.3f}s "
            f"({ratio:.2f}x, limit {limit:.3f}s) {status}"
        )
        print(line)
        if current > limit:
            failures.append(line)

    for name in sorted(set(report_seconds) - set(baseline_seconds)):
        warnings.append(
            f"{name}: not in baseline (new experiment?); re-record with "
            "`python benchmarks/run_all.py --repeat 5 --out benchmarks/baseline.json`"
        )
    return failures, warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="smoke-report JSON from run_all.py --smoke")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_BASELINE_TOLERANCE", DEFAULT_TOLERANCE)),
        help=f"allowed slowdown factor (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR_SECONDS,
        metavar="SECONDS",
        help=(
            "treat baselines below this as this value, absorbing timer noise "
            f"on tiny experiments (default {DEFAULT_FLOOR_SECONDS})"
        ),
    )
    args = parser.parse_args(argv)

    report = json.loads(Path(args.report).read_text(encoding="utf-8"))
    baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    failures, warnings = compare(
        report, baseline, tolerance=args.tolerance, floor=args.floor
    )
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("benchmark gate: all experiments within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
