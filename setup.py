"""Shim for legacy editable installs (``pip install -e . --no-use-pep517``).

All metadata lives in ``pyproject.toml``; this file only exists so that
environments with an old setuptools (no PEP 660 support without ``wheel``)
can still do an editable install.
"""

from setuptools import setup

setup()
