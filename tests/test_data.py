"""Unit tests for the relational substrate (repro.data)."""

import pytest

from repro.data import Database, Fact, Instance, Schema
from repro.data.schema import SchemaError
from repro.data.terms import Null, NullFactory, fresh_null, is_null


class TestNulls:
    def test_nulls_equal_by_label(self):
        assert Null(3) == Null(3)
        assert Null(3) != Null(4)

    def test_fresh_nulls_are_distinct(self):
        assert fresh_null() != fresh_null()

    def test_factory_produces_increasing_labels(self):
        factory = NullFactory()
        first, second = factory(), factory()
        assert first.label < second.label

    def test_is_null(self):
        assert is_null(Null(1))
        assert not is_null("a")
        assert not is_null(42)

    def test_null_ordering(self):
        assert Null(1) < Null(2)


class TestFact:
    def test_args_are_tuples(self):
        fact = Fact("R", ["a", "b"])
        assert fact.args == ("a", "b")
        assert fact.arity == 2

    def test_equality_and_hash(self):
        assert Fact("R", ("a",)) == Fact("R", ("a",))
        assert hash(Fact("R", ("a",))) == hash(Fact("R", ("a",)))
        assert Fact("R", ("a",)) != Fact("S", ("a",))

    def test_has_null_and_nulls(self):
        null = Null(7)
        fact = Fact("R", ("a", null))
        assert fact.has_null()
        assert fact.nulls() == {null}
        assert not Fact("R", ("a", "b")).has_null()


class TestSchema:
    def test_arity_lookup(self):
        schema = Schema({"R": 2, "A": 1})
        assert schema.arity("R") == 2
        assert "A" in schema
        assert len(schema) == 2

    def test_unknown_relation_raises(self):
        with pytest.raises(SchemaError):
            Schema({"R": 2}).arity("S")

    def test_validate_fact(self):
        schema = Schema({"R": 2})
        schema.validate_fact(Fact("R", ("a", "b")))
        with pytest.raises(SchemaError):
            schema.validate_fact(Fact("R", ("a",)))
        with pytest.raises(SchemaError):
            schema.validate_fact(Fact("S", ("a",)))

    def test_union_conflict(self):
        with pytest.raises(SchemaError):
            Schema({"R": 2}).union(Schema({"R": 3}))

    def test_union_and_restrict(self):
        merged = Schema({"R": 2}).union(Schema({"S": 1}))
        assert merged.symbols() == {"R", "S"}
        assert merged.restrict(["S"]).symbols() == {"S"}

    def test_from_facts(self):
        schema = Schema.from_facts([Fact("R", ("a", "b")), Fact("A", ("a",))])
        assert schema.arity("R") == 2
        assert schema.arity("A") == 1

    def test_from_facts_conflicting_arity(self):
        with pytest.raises(SchemaError):
            Schema.from_facts([Fact("R", ("a",)), Fact("R", ("a", "b"))])


class TestInstance:
    def test_add_and_contains(self):
        instance = Instance()
        assert instance.add(Fact("R", ("a", "b")))
        assert not instance.add(Fact("R", ("a", "b")))
        assert Fact("R", ("a", "b")) in instance
        assert len(instance) == 1

    def test_discard(self):
        instance = Instance([Fact("R", ("a", "b"))])
        assert instance.discard(Fact("R", ("a", "b")))
        assert not instance.discard(Fact("R", ("a", "b")))
        assert len(instance) == 0
        assert instance.adom() == set()

    def test_adom_and_constants_and_nulls(self):
        null = Null(1)
        instance = Instance([Fact("R", ("a", null)), Fact("A", ("b",))])
        assert instance.adom() == {"a", "b", null}
        assert instance.constants() == {"a", "b"}
        assert instance.nulls() == {null}

    def test_relation_and_facts_with(self):
        instance = Instance([Fact("R", ("a", "b")), Fact("R", ("b", "c")), Fact("A", ("a",))])
        assert instance.relation("R") == {Fact("R", ("a", "b")), Fact("R", ("b", "c"))}
        assert instance.facts_with("a") == {Fact("R", ("a", "b")), Fact("A", ("a",))}
        assert instance.relations() == {"R", "A"}

    def test_restrict(self):
        instance = Instance([Fact("R", ("a", "b")), Fact("R", ("b", "c"))])
        restricted = instance.restrict({"a", "b"})
        assert restricted.facts() == {Fact("R", ("a", "b"))}

    def test_restrict_relations(self):
        instance = Instance([Fact("R", ("a", "b")), Fact("A", ("a",))])
        assert instance.restrict_relations(["A"]).facts() == {Fact("A", ("a",))}

    def test_guarded_sets(self):
        instance = Instance([Fact("R", ("a", "b")), Fact("A", ("c",))])
        assert frozenset({"a", "b"}) in instance.guarded_sets()
        assert instance.is_guarded_set({"a", "b"})
        assert instance.is_guarded_set({"a"})
        assert not instance.is_guarded_set({"a", "c"})
        assert instance.is_guarded_set(())

    def test_gaifman_graph(self):
        instance = Instance([Fact("R", ("a", "b")), Fact("R", ("b", "c"))])
        graph = instance.gaifman_graph()
        assert graph["b"] == {"a", "c"}
        assert graph["a"] == {"b"}

    def test_union(self):
        left = Instance([Fact("A", ("a",))])
        right = Instance([Fact("B", ("b",))])
        merged = left.union(right)
        assert len(merged) == 2
        assert len(left) == 1

    def test_size(self):
        instance = Instance([Fact("R", ("a", "b")), Fact("A", ("a",))])
        assert instance.size() == 3 + 2

    def test_copy_is_independent(self):
        instance = Instance([Fact("A", ("a",))])
        clone = instance.copy()
        clone.add(Fact("A", ("b",)))
        assert len(instance) == 1
        assert len(clone) == 2

    def test_schema_inference(self):
        instance = Instance([Fact("R", ("a", "b"))])
        assert instance.schema().arity("R") == 2


class TestDatabase:
    def test_rejects_nulls(self):
        with pytest.raises(ValueError):
            Database([Fact("R", ("a", Null(1)))])

    def test_copy_returns_database(self):
        database = Database([Fact("A", ("a",))])
        assert isinstance(database.copy(), Database)

    def test_equality_with_instance(self):
        assert Database([Fact("A", ("a",))]) == Instance([Fact("A", ("a",))])


class TestPositionalIndexes:
    def test_index_groups_by_key(self):
        instance = Instance(
            [Fact("R", ("a", "b")), Fact("R", ("a", "c")), Fact("R", ("b", "c"))]
        )
        index = instance.index("R", (0,))
        assert set(index[("a",)]) == {Fact("R", ("a", "b")), Fact("R", ("a", "c"))}
        assert set(index[("b",)]) == {Fact("R", ("b", "c"))}

    def test_probe_missing_key_is_empty(self):
        instance = Instance([Fact("R", ("a", "b"))])
        assert len(instance.probe("R", (0,), ("zzz",))) == 0
        assert len(instance.probe("Missing", (0,), ("a",))) == 0

    def test_index_updated_incrementally_on_add(self):
        instance = Instance([Fact("R", ("a", "b"))])
        index = instance.index("R", (1,))
        assert set(index[("b",)]) == {Fact("R", ("a", "b"))}
        instance.add(Fact("R", ("c", "b")))
        assert set(instance.probe("R", (1,), ("b",))) == {
            Fact("R", ("a", "b")),
            Fact("R", ("c", "b")),
        }

    def test_index_updated_incrementally_on_discard(self):
        instance = Instance([Fact("R", ("a", "b")), Fact("R", ("c", "b"))])
        instance.index("R", (1,))
        instance.discard(Fact("R", ("a", "b")))
        assert set(instance.probe("R", (1,), ("b",))) == {Fact("R", ("c", "b"))}

    def test_discard_cleans_empty_index_buckets(self):
        instance = Instance([Fact("R", ("a", "b"))])
        instance.index("R", (0,))
        instance.discard(Fact("R", ("a", "b")))
        assert ("a",) not in instance.index("R", (0,))
        assert instance.relation_size("R") == 0
        assert "R" not in instance.relations()

    def test_add_discard_interleaving_keeps_indexes_consistent(self):
        instance = Instance()
        facts = [Fact("R", (f"x{i % 3}", f"y{i % 5}")) for i in range(15)]
        instance.index("R", (0,))
        instance.index("R", (0, 1))
        for i, fact in enumerate(facts):
            instance.add(fact)
            if i % 2:
                instance.discard(facts[i - 1])
        for fact in instance.relation("R"):
            assert fact in instance.probe("R", (0,), (fact.args[0],))
            assert fact in instance.probe("R", (0, 1), fact.args)
        # A rebuilt index over the same state must agree with the live one,
        # bucket contents included (a stale fact left behind by discard in a
        # still-nonempty bucket must fail here).
        rebuilt = Instance(instance.facts())
        for positions in ((0,), (0, 1)):
            live = {k: set(v) for k, v in instance.index("R", positions).items()}
            fresh = {k: set(v) for k, v in rebuilt.index("R", positions).items()}
            assert live == fresh

    def test_index_skips_facts_with_short_arity(self):
        instance = Instance([Fact("R", ("a",)), Fact("R", ("a", "b"))])
        index = instance.index("R", (1,))
        assert set(index[("b",)]) == {Fact("R", ("a", "b"))}
        instance.add(Fact("R", ("c",)))  # must not break maintenance
        assert set(instance.probe("R", (1,), ("b",))) == {Fact("R", ("a", "b"))}

    def test_views_are_live_and_readonly(self):
        instance = Instance([Fact("A", ("a",))])
        view = instance.relation("A")
        assert len(view) == 1
        instance.add(Fact("A", ("b",)))
        assert len(view) == 2
        assert not hasattr(view, "add")
        assert view == {Fact("A", ("a",)), Fact("A", ("b",))}
        assert (view | {Fact("A", ("c",))}) == {
            Fact("A", ("a",)),
            Fact("A", ("b",)),
            Fact("A", ("c",)),
        }


class TestMutationEdgeCases:
    def test_discard_cleans_empty_constant_buckets(self):
        instance = Instance([Fact("R", ("a", "b")), Fact("A", ("a",))])
        instance.discard(Fact("R", ("a", "b")))
        assert instance.adom() == {"a"}
        assert instance.facts_with("b") == set()
        instance.discard(Fact("A", ("a",)))
        assert instance.adom() == set()
        assert instance.facts_with("a") == set()

    def test_discard_then_add_round_trip(self):
        fact = Fact("R", ("a", "a"))
        instance = Instance([fact])
        assert instance.discard(fact)
        assert instance.add(fact)
        assert instance.facts_with("a") == {fact}
        assert instance.relation("R") == {fact}

    def test_database_rejects_null_after_construction(self):
        database = Database([Fact("A", ("a",))])
        with pytest.raises(ValueError):
            database.add(Fact("R", ("a", Null(2))))
        assert len(database) == 1

    def test_database_update_rejects_nulls_midway(self):
        database = Database()
        with pytest.raises(ValueError):
            database.update([Fact("A", ("a",)), Fact("R", ("a", Null(3)))])
        # the valid prefix was added before the rejection
        assert Fact("A", ("a",)) in database

    def test_views_survive_bucket_deletion_and_recreation(self):
        instance = Instance([Fact("R", ("a", "b"))])
        view = instance.relation("R")
        constant_view = instance.facts_with("a")
        missing_view = instance.relation("S")
        instance.discard(Fact("R", ("a", "b")))  # empties and drops the buckets
        assert len(view) == 0 and len(constant_view) == 0
        instance.add(Fact("R", ("a", "c")))
        instance.add(Fact("S", ("s",)))
        assert view == {Fact("R", ("a", "c"))}
        assert constant_view == {Fact("R", ("a", "c"))}
        assert missing_view == {Fact("S", ("s",))}
