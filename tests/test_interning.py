"""Unit tests for the interned storage layer (interning, columns, instance)."""

import pickle

import pytest

from repro.data import (
    TERMS,
    ColumnarRelation,
    Database,
    Fact,
    Instance,
    Null,
    TermDictionary,
    interning_enabled,
    set_interning,
    use_interning,
)
from repro.data.columns import merge_intersect
from repro.config import _env_disabled


class TestTermDictionary:
    def test_ids_are_dense_and_stable(self):
        dictionary = TermDictionary()
        a = dictionary.intern("a")
        b = dictionary.intern("b")
        assert (a, b) == (0, 1)
        assert dictionary.intern("a") == a
        assert len(dictionary) == 2
        assert "a" in dictionary and "c" not in dictionary

    def test_decode_is_the_inverse(self):
        dictionary = TermDictionary()
        ids = dictionary.intern_tuple(("x", 7, Null(3)))
        assert dictionary.decode_tuple(ids) == ("x", 7, Null(3))
        assert dictionary.decode(ids[1]) == 7

    def test_null_flags(self):
        dictionary = TermDictionary()
        constant = dictionary.intern("c")
        null = dictionary.intern(Null(1))
        assert not dictionary.is_null_id(constant)
        assert dictionary.is_null_id(null)

    def test_try_intern_never_grows_the_dictionary(self):
        dictionary = TermDictionary()
        dictionary.intern("seen")
        assert dictionary.try_intern("seen") == 0
        assert dictionary.try_intern("unseen") is None
        assert dictionary.try_intern_tuple(("seen", "unseen")) is None
        assert dictionary.try_intern_tuple(("seen",)) == (0,)
        assert len(dictionary) == 1

    def test_distinct_types_get_distinct_ids(self):
        dictionary = TermDictionary()
        assert dictionary.intern(3) != dictionary.intern("3")

    def test_toggle_and_context_manager(self):
        before = interning_enabled()
        try:
            with use_interning(False):
                assert not interning_enabled()
                with use_interning(True):
                    assert interning_enabled()
                assert not interning_enabled()
        finally:
            set_interning(before)
        assert interning_enabled() == before

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_INTERN", "1")
        assert _env_disabled("REPRO_NO_INTERN")
        monkeypatch.setenv("REPRO_NO_INTERN", "0")
        assert not _env_disabled("REPRO_NO_INTERN")
        monkeypatch.delenv("REPRO_NO_INTERN")
        assert not _env_disabled("REPRO_NO_INTERN")

    def test_deprecated_module_aliases_still_work(self):
        import warnings

        from repro.data import interning as legacy

        before = interning_enabled()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with legacy.use_interning(not before):
                assert interning_enabled() is (not before)
            previous = legacy.set_interning(before)
            legacy.set_interning(previous)
        assert interning_enabled() is before
        assert all(w.category is DeprecationWarning for w in caught)
        assert len(caught) >= 2


class TestColumnarRelation:
    def rel(self):
        return ColumnarRelation(2, [(1, 2), (1, 3), (4, 2)])

    def test_rows_round_trip(self):
        relation = self.rel()
        assert len(relation) == 3
        assert set(relation) == {(1, 2), (1, 3), (4, 2)}
        assert relation.row(0) == (1, 2)
        assert len(relation.column(0)) == 3

    def test_zero_arity(self):
        relation = ColumnarRelation(0, [(), ()])
        assert len(relation) == 2
        assert list(relation) == [(), ()]
        assert relation.project(()) == {()}

    def test_append_and_extend(self):
        relation = ColumnarRelation(2)
        relation.append((5, 6))
        relation.extend([(7, 8)])
        assert set(relation) == {(5, 6), (7, 8)}

    def test_project(self):
        relation = self.rel()
        assert relation.project((0,)) == {(1,), (4,)}
        assert relation.project((1, 0)) == {(2, 1), (3, 1), (2, 4)}
        assert relation.project(()) == {()}
        assert ColumnarRelation(2).project(()) == set()

    def test_project_with_equalities(self):
        relation = ColumnarRelation(2, [(1, 1), (1, 2), (3, 3)])
        assert relation.project_with_equalities((0,), ((0, 1),)) == {(1,), (3,)}
        assert relation.project_with_equalities((0,), ()) == {(1,), (3,)}

    def test_index_on(self):
        index = self.rel().index_on((0,))
        assert set(index[(1,)]) == {(1, 2), (1, 3)}
        assert set(index[(4,)]) == {(4, 2)}
        empty_key = self.rel().index_on(())
        assert set(empty_key[()]) == {(1, 2), (1, 3), (4, 2)}
        assert ColumnarRelation(1).index_on(()) == {}

    def test_filter_by_keys(self):
        relation = self.rel()
        assert set(relation.filter_by_keys((0,), {(1,)})) == {(1, 2), (1, 3)}
        assert relation.filter_by_keys((0,), set()) == []
        assert set(relation.filter_by_keys((), {()})) == {(1, 2), (1, 3), (4, 2)}
        assert relation.filter_by_keys((), set()) == []

    def test_sorted_runs_and_merge_intersect(self):
        relation = self.rel()
        assert list(relation.sorted_column(0)) == [1, 1, 4]
        left = relation.sorted_column(0)
        right = ColumnarRelation(1, [(4,), (9,), (1,)]).sorted_column(0)
        assert list(merge_intersect(left, right)) == [1, 4]
        assert list(merge_intersect(left, relation.sorted_column(0))) == [1, 4]

    def test_semijoin_sorted(self):
        left = self.rel()
        right = ColumnarRelation(1, [(1,), (9,)])
        assert set(left.semijoin_sorted(0, right, 0)) == {(1, 2), (1, 3)}


class TestInternedInstance:
    def test_instance_captures_flag_at_construction(self):
        with use_interning(True):
            interned = Instance()
        with use_interning(False):
            plain = Instance()
        assert interned.interned and not plain.interned

    def test_copy_preserves_the_storage_mode(self):
        with use_interning(True):
            interned = Instance([Fact("R", ("a", "b"))])
        with use_interning(False):
            duplicate = interned.copy()
            plain = Instance([Fact("R", ("a", "b"))])
        assert duplicate.interned and not plain.interned
        with use_interning(True):
            assert not plain.copy().interned

    def test_probe_agrees_across_modes(self):
        facts = [Fact("R", ("a", "b")), Fact("R", ("a", "c")), Fact("R", ("b", "c"))]
        with use_interning(True):
            interned = Instance(facts)
        with use_interning(False):
            plain = Instance(facts)
        for instance in (interned, plain):
            assert set(instance.probe("R", (0,), ("a",))) == {facts[0], facts[1]}
            assert len(instance.probe("R", (0,), ("zzz-never-seen",))) == 0

    def test_index_view_presents_term_keys(self):
        with use_interning(True):
            instance = Instance([Fact("R", ("a", "b")), Fact("R", ("b", "c"))])
        index = instance.index("R", (0,))
        assert ("a",) in index and ("nope",) not in index
        assert "not-a-tuple" not in index
        assert set(index.keys()) == {("a",), ("b",)}
        assert {key: set(bucket) for key, bucket in index.items()} == {
            ("a",): {Fact("R", ("a", "b"))},
            ("b",): {Fact("R", ("b", "c"))},
        }
        with pytest.raises(KeyError):
            index[("never-interned-key",)]

    def test_columnar_store_and_invalidation(self):
        with use_interning(True):
            instance = Instance([Fact("R", ("a", "b"))])
        store = instance.columnar("R", 2)
        assert len(store) == 1
        assert instance.columnar("R", 2) is store  # cached
        instance.add(Fact("R", ("b", "c")))
        assert len(instance.columnar("R", 2)) == 2
        # Mixed arities are stored per (relation, arity).
        instance.add(Fact("R", ("solo",)))
        assert len(instance.columnar("R", 1)) == 1
        assert len(instance.columnar("R", 2)) == 2

    def test_columnar_rows_decode_to_fact_args(self):
        with use_interning(True):
            instance = Instance([Fact("R", ("a", "b"))])
        (row,) = instance.columnar("R", 2)
        assert TERMS.decode_tuple(row) == ("a", "b")

    def test_columnar_invalidation_inside_batch(self):
        with use_interning(True):
            database = Database([Fact("R", ("a", "b"))])
        assert len(database.columnar("R", 2)) == 1
        with database.batch():
            database.add(Fact("R", ("c", "d")))
            assert len(database.columnar("R", 2)) == 2


class TestFactCaches:
    def test_hash_is_stable_and_cached(self):
        fact = Fact("R", ("a", "b"))
        assert hash(fact) == hash(Fact("R", ("a", "b")))
        assert fact._hash == hash(fact)

    def test_iargs_align_with_args(self):
        fact = Fact("R", ("a", Null(2)))
        assert TERMS.decode_tuple(fact.iargs) == ("a", Null(2))
        assert fact.iargs is fact.iargs  # cached

    def test_immutability(self):
        fact = Fact("R", ("a",))
        with pytest.raises(AttributeError):
            fact.relation = "S"
        with pytest.raises(AttributeError):
            del fact.args

    def test_pickle_round_trip(self):
        fact = Fact("R", ("a", 3))
        assert pickle.loads(pickle.dumps(fact)) == fact
