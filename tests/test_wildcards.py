"""Tests for wildcard tuples, multi-wildcard tuples, orders, balls and cones."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wildcards import (
    WILDCARD,
    Wildcard,
    ball,
    collapse_nulls,
    collapse_nulls_multi,
    cone,
    is_normalized_multi,
    is_wildcard,
    leq_multi,
    leq_partial,
    lt_multi,
    lt_partial,
    minimal_multi_tuples,
    minimal_partial_tuples,
    multi_to_single,
    normalize_multi,
    set_partitions,
    strictly_less_informative_multi,
    wildcard_positions,
)
from repro.data.terms import Null


class TestSingleWildcard:
    def test_wildcard_is_singleton(self):
        assert WILDCARD is type(WILDCARD)()
        assert is_wildcard(WILDCARD)
        assert not is_wildcard("a")

    def test_collapse_nulls(self):
        assert collapse_nulls(("a", Null(1), "b")) == ("a", WILDCARD, "b")

    def test_leq_examples_from_paper(self):
        # (a, b) ≺ (a, *) and (a, *) ≺ (*, *)
        assert lt_partial(("a", "b"), ("a", WILDCARD))
        assert lt_partial(("a", WILDCARD), (WILDCARD, WILDCARD))
        assert not leq_partial(("a", WILDCARD), ("a", "b"))
        assert leq_partial(("a", "b"), ("a", "b"))

    def test_leq_requires_same_length(self):
        assert not leq_partial(("a",), ("a", WILDCARD))

    def test_minimal_partial_tuples(self):
        tuples = {("a", "b"), ("a", WILDCARD), (WILDCARD, WILDCARD), ("c", WILDCARD)}
        assert minimal_partial_tuples(tuples) == {("a", "b"), ("c", WILDCARD)}

    def test_wildcard_positions(self):
        assert wildcard_positions(("a", WILDCARD, Wildcard(1))) == (1, 2)


class TestMultiWildcard:
    def test_collapse_nulls_multi_numbering(self):
        n1, n2 = Null(11), Null(12)
        assert collapse_nulls_multi(("a", n1, "b", "a", n2, n1, n2)) == (
            "a",
            Wildcard(1),
            "b",
            "a",
            Wildcard(2),
            Wildcard(1),
            Wildcard(2),
        )

    def test_normalization(self):
        assert is_normalized_multi((Wildcard(1), "a", Wildcard(2)))
        assert not is_normalized_multi((Wildcard(2), Wildcard(1)))
        assert normalize_multi((Wildcard(5), "a", Wildcard(5), Wildcard(2))) == (
            Wildcard(1),
            "a",
            Wildcard(1),
            Wildcard(2),
        )

    def test_leq_examples_from_paper(self):
        # (*1, a) ≺ (*1, *2)  and  (a, *1, *2, *1) ≺ (a, *1, *2, *3)
        assert lt_multi((Wildcard(1), "a"), (Wildcard(1), Wildcard(2)))
        assert lt_multi(
            ("a", Wildcard(1), Wildcard(2), Wildcard(1)),
            ("a", Wildcard(1), Wildcard(2), Wildcard(3)),
        )
        assert not leq_multi((Wildcard(1), Wildcard(2)), (Wildcard(1), "a"))

    def test_merging_loses_information(self):
        # (a, a) ≺ (*1, *1) ≺ (*1, *2)
        assert lt_multi(("a", "a"), (Wildcard(1), Wildcard(1)))
        assert lt_multi((Wildcard(1), Wildcard(1)), (Wildcard(1), Wildcard(2)))
        # but (a, b) with a != b is NOT ⪯ (*1, *1)
        assert not leq_multi(("a", "b"), (Wildcard(1), Wildcard(1)))

    def test_minimal_multi_tuples(self):
        tuples = {
            ("a", Wildcard(1)),
            (Wildcard(1), Wildcard(2)),
            (Wildcard(1), Wildcard(1)),
        }
        assert minimal_multi_tuples(tuples) == {
            ("a", Wildcard(1)),
            (Wildcard(1), Wildcard(1)),
        }

    def test_multi_to_single(self):
        assert multi_to_single(("a", Wildcard(2), Wildcard(1))) == (
            "a",
            WILDCARD,
            WILDCARD,
        )


class TestBallsAndCones:
    def test_set_partitions_count(self):
        # Bell numbers: 1, 1, 2, 5, 15
        assert len(list(set_partitions([]))) == 1
        assert len(list(set_partitions([1]))) == 1
        assert len(list(set_partitions([1, 2]))) == 2
        assert len(list(set_partitions([1, 2, 3]))) == 5
        assert len(list(set_partitions([1, 2, 3, 4]))) == 15

    def test_ball_of_two_wildcards(self):
        candidates = ball(("a", WILDCARD, WILDCARD))
        assert candidates == {
            ("a", Wildcard(1), Wildcard(2)),
            ("a", Wildcard(1), Wildcard(1)),
        }

    def test_ball_without_wildcards(self):
        assert ball(("a", "b")) == {("a", "b")}

    def test_cone_contains_ball(self):
        candidate = ("a", WILDCARD)
        assert ball(candidate) <= cone(candidate)

    def test_cone_example_from_paper(self):
        # Example 6.2: (c, *1, *2, *1) is in the cone of (c, c', *, *) but
        # not in its ball.
        single = ("c", "cprime", WILDCARD, WILDCARD)
        target = ("c", Wildcard(1), Wildcard(2), Wildcard(1))
        assert target not in ball(single)
        assert target in cone(single)

    def test_cone_members_are_normalized(self):
        for member in cone(("a", WILDCARD, "b")):
            assert is_normalized_multi(member)

    def test_strictly_less_informative(self):
        weaker = strictly_less_informative_multi(("a", Wildcard(1)))
        assert (Wildcard(1), Wildcard(2)) in weaker
        # (*1, *1) asserts an equality that ("a", *1) does not imply.
        assert (Wildcard(1), Wildcard(1)) not in weaker
        assert ("a", Wildcard(1)) not in weaker
        for candidate in weaker:
            assert lt_multi(("a", Wildcard(1)), candidate)


# -- order-theoretic properties ----------------------------------------------

_values = st.sampled_from(["a", "b", WILDCARD])
_single_tuples = st.tuples(_values, _values, _values)


@settings(max_examples=60, deadline=None)
@given(_single_tuples, _single_tuples, _single_tuples)
def test_single_order_is_a_partial_order(t1, t2, t3):
    """Property: ⪯ on wildcard tuples is reflexive, antisymmetric, transitive."""
    assert leq_partial(t1, t1)
    if leq_partial(t1, t2) and leq_partial(t2, t1):
        assert t1 == t2
    if leq_partial(t1, t2) and leq_partial(t2, t3):
        assert leq_partial(t1, t3)


_multi_values = st.sampled_from(["a", "b", Wildcard(1), Wildcard(2)])
_multi_tuples = st.tuples(_multi_values, _multi_values, _multi_values).map(normalize_multi)


@settings(max_examples=60, deadline=None)
@given(_multi_tuples, _multi_tuples, _multi_tuples)
def test_multi_order_is_a_partial_order(t1, t2, t3):
    """Property: ⪯ on multi-wildcard tuples is a partial order."""
    assert leq_multi(t1, t1)
    if leq_multi(t1, t2) and leq_multi(t2, t1):
        assert t1 == t2
    if leq_multi(t1, t2) and leq_multi(t2, t3):
        assert leq_multi(t1, t3)


@settings(max_examples=40, deadline=None)
@given(_multi_tuples)
def test_multi_collapse_is_monotone(candidate):
    """Property: collapsing multi-wildcards to '*' respects the orders."""
    single = multi_to_single(candidate)
    assert leq_partial(single, single)
    for weaker in strictly_less_informative_multi(candidate):
        assert leq_partial(single, multi_to_single(weaker))


@settings(max_examples=40, deadline=None)
@given(st.lists(_single_tuples, min_size=1, max_size=8))
def test_minimal_partial_tuples_are_minimal_and_cover(tuples):
    """Property: minimisation returns exactly the non-dominated tuples, and
    every tuple is dominated by some minimal one."""
    pool = set(tuples)
    minimal = minimal_partial_tuples(pool)
    for candidate in minimal:
        assert not any(lt_partial(other, candidate) for other in pool)
    for candidate in pool:
        assert any(leq_partial(m, candidate) for m in minimal)
