"""Tests for single-testing (Theorem 3.1) and all-testing (Theorem 4.1(2))."""

import random

import pytest

from repro import Database, Fact, parse_ontology, parse_query
from repro.baselines import (
    naive_certain_answers,
    naive_minimal_partial_answers,
    naive_minimal_partial_answers_multi,
    naive_partial_answers,
)
from repro.core import OMQ, WILDCARD, OMQAllTester, OMQSingleTester, Wildcard
from repro.core.wildcards import leq_partial
from tests.conftest import random_office_database


class TestCompleteSingleTesting:
    def test_office_example(self, office_omq, office_database):
        tester = OMQSingleTester(office_omq, office_database)
        assert tester.test_complete(("mary", "room1", "main1"))
        assert not tester.test_complete(("john", "room4", "main1"))
        assert not tester.test_complete(("mike", "room1", "main1"))

    def test_values_outside_adom_rejected(self, office_omq, office_database):
        tester = OMQSingleTester(office_omq, office_database)
        assert not tester.test_complete(("mary", "room1", "atlantis"))

    def test_wrong_arity_raises(self, office_omq, office_database):
        tester = OMQSingleTester(office_omq, office_database)
        with pytest.raises(Exception):
            tester.test_complete(("mary",))

    def test_repeated_answer_variables(self):
        ontology = parse_ontology("Friend(x, y) -> Person(x)")
        query = parse_query("q(x, y) :- Friend(x, y), Person(x)")
        omq = OMQ.from_parts(ontology, query)
        database = Database([Fact("Friend", ("a", "b"))])
        tester = OMQSingleTester(omq, database)
        assert tester.test_complete(("a", "b"))
        assert not tester.test_complete(("b", "a"))

    def test_matches_naive_on_random_databases(self, office_omq):
        rng = random.Random(5)
        for _ in range(10):
            database = random_office_database(rng)
            tester = OMQSingleTester(office_omq, database)
            expected = naive_certain_answers(office_omq, database)
            adom = sorted(database.adom(), key=repr)
            candidates = set(expected)
            for _ in range(15):
                candidates.add(tuple(rng.choice(adom) for _ in range(3)))
            for candidate in candidates:
                assert tester.test_complete(candidate) == (candidate in expected)


class TestPartialSingleTesting:
    def test_paper_example_minimal_answers(self, office_omq, office_database):
        tester = OMQSingleTester(office_omq, office_database)
        assert tester.test_minimal_partial(("mary", "room1", "main1"))
        assert tester.test_minimal_partial(("john", "room4", WILDCARD))
        assert tester.test_minimal_partial(("mike", WILDCARD, WILDCARD))

    def test_non_minimal_partial_answers(self, office_omq, office_database):
        tester = OMQSingleTester(office_omq, office_database)
        # Partial but not minimal: can be improved to (mary, room1, main1).
        assert tester.test_partial(("mary", "room1", WILDCARD))
        assert not tester.test_minimal_partial(("mary", "room1", WILDCARD))
        assert tester.test_partial((WILDCARD, WILDCARD, WILDCARD))
        assert not tester.test_minimal_partial((WILDCARD, WILDCARD, WILDCARD))

    def test_non_partial_answers(self, office_omq, office_database):
        tester = OMQSingleTester(office_omq, office_database)
        assert not tester.test_partial(("john", "room1", WILDCARD))
        assert not tester.test_minimal_partial(("main1", WILDCARD, WILDCARD))

    def test_partial_testing_matches_naive(self, office_omq):
        rng = random.Random(17)
        for _ in range(8):
            database = random_office_database(rng)
            tester = OMQSingleTester(office_omq, database)
            minimal = naive_minimal_partial_answers(office_omq, database)
            partial = naive_partial_answers(office_omq, database)
            for candidate in minimal:
                assert tester.test_minimal_partial(candidate), candidate
            # Everything strictly above a minimal answer is partial but not minimal.
            for candidate in partial - minimal:
                assert tester.test_partial(candidate)
                assert not tester.test_minimal_partial(candidate)

    def test_partial_answers_closed_upwards(self, office_omq, office_database):
        tester = OMQSingleTester(office_omq, office_database)
        base = ("john", "room4", WILDCARD)
        weaker = ("john", WILDCARD, WILDCARD)
        assert leq_partial(base, weaker)
        assert tester.test_partial(base) and tester.test_partial(weaker)


class TestMultiWildcardSingleTesting:
    def test_office_example(self, office_omq, office_database):
        tester = OMQSingleTester(office_omq, office_database)
        assert tester.test_minimal_partial_multi(("mike", Wildcard(1), Wildcard(2)))
        assert not tester.test_minimal_partial_multi(("mike", Wildcard(1), Wildcard(1)))
        assert tester.test_minimal_partial_multi(("john", "room4", Wildcard(1)))

    def test_largeoffice_example(self, largeoffice_omq, largeoffice_database):
        tester = OMQSingleTester(largeoffice_omq, largeoffice_database)
        answer = ("mike", Wildcard(1), Wildcard(1), Wildcard(2))
        non_minimal = ("mike", Wildcard(1), Wildcard(2), Wildcard(3))
        assert tester.test_minimal_partial_multi(answer)
        assert tester.test_partial_multi(non_minimal)
        assert not tester.test_minimal_partial_multi(non_minimal)

    def test_matches_naive_enumeration(self, office_omq):
        rng = random.Random(23)
        for _ in range(6):
            database = random_office_database(rng)
            tester = OMQSingleTester(office_omq, database)
            expected = naive_minimal_partial_answers_multi(office_omq, database)
            for candidate in expected:
                assert tester.test_minimal_partial_multi(candidate), candidate

    def test_officemate_example(self):
        # Example 2.2, Q'' and D'': (mary, mike, *1, *1) is a minimal partial
        # answer because the office mates share an (anonymous) office.
        ontology = parse_ontology(
            """
            Researcher(x) -> HasOffice(x, y)
            HasOffice(x, y) -> Office(y)
            Office(x) -> InBuilding(x, y)
            OfficeMate(x, y) -> HasOffice(x, z), HasOffice(y, z)
            """
        )
        query = parse_query(
            "q(x1, x2, x3, x4) :- HasOffice(x1, x3), HasOffice(x2, x4), "
            "InBuilding(x3, y), InBuilding(x4, y)"
        )
        omq = OMQ.from_parts(ontology, query)
        database = Database(
            [
                Fact("Researcher", ("mary",)),
                Fact("Researcher", ("mike",)),
                Fact("HasOffice", ("mary", "room1")),
                Fact("InBuilding", ("room1", "main1")),
                Fact("OfficeMate", ("mary", "mike")),
            ]
        )
        tester = OMQSingleTester(omq, database)
        assert tester.test_minimal_partial_multi(
            ("mary", "mike", Wildcard(1), Wildcard(1))
        )


class TestAllTesting:
    def test_office_example(self, office_omq, office_database):
        tester = OMQAllTester(office_omq, office_database)
        assert tester(("mary", "room1", "main1"))
        assert not tester(("john", "room4", "main1"))
        assert not tester(("mary", "room1", "room1"))

    def test_requires_free_connex(self):
        ontology = parse_ontology("R(x, y) -> A(x)")
        query = parse_query("q(x, y) :- R(x, z), S(z, y)")
        omq = OMQ.from_parts(ontology, query)
        with pytest.raises(Exception):
            OMQAllTester(omq, Database([Fact("R", ("a", "b"))]))

    def test_matches_naive_on_random_databases(self, office_omq):
        rng = random.Random(31)
        for _ in range(8):
            database = random_office_database(rng)
            tester = OMQAllTester(office_omq, database)
            expected = naive_certain_answers(office_omq, database)
            adom = sorted(database.adom(), key=repr)
            for _ in range(20):
                candidate = tuple(rng.choice(adom) for _ in range(3))
                assert tester.test(candidate) == (candidate in expected)
            for answer in expected:
                assert tester.test(answer)
