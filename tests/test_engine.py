"""Tests for the prepared-query engine (repro.engine).

Covers plan-cache correctness (hits on repeated (ontology, query), LRU
eviction, fingerprint stability under re-parsing), invalidation of
materialized state after ``Instance.add``/``discard``, batch results being
identical to sequential per-query results, cursors, and the CLI.
"""

import json
import threading

import pytest

from repro import Database, Fact, parse_ontology, parse_query
from repro.cli import main as cli_main
from repro.core import OMQ, CompleteAnswerEnumerator
from repro.cq.query import QueryError
from repro.engine import (
    LRUCache,
    QueryEngine,
    ontology_fingerprint,
    prepare_query,
    query_fingerprint,
)
from repro.workloads import generate_university_database, university_omq

QUERY_TEXT = "q(s, a, d) :- HasAdvisor(s, a), WorksFor(a, d)"
PROJECTION_TEXT = "q(s, a) :- HasAdvisor(s, a)"


@pytest.fixture
def univ_omq() -> OMQ:
    return university_omq()


@pytest.fixture
def univ_db() -> Database:
    return generate_university_database(80, seed=3)


@pytest.fixture
def engine(univ_omq, univ_db) -> QueryEngine:
    return QueryEngine(univ_omq.ontology, univ_db)


class TestFingerprints:
    def test_query_fingerprint_stable_under_reparsing(self):
        first = parse_query(QUERY_TEXT)
        second = parse_query(QUERY_TEXT)
        assert first is not second
        assert query_fingerprint(first) == query_fingerprint(second)

    def test_query_fingerprint_ignores_name(self):
        named = parse_query(QUERY_TEXT, name="other")
        assert query_fingerprint(named) == query_fingerprint(parse_query(QUERY_TEXT))

    def test_query_fingerprint_distinguishes_structure(self):
        assert query_fingerprint(parse_query(QUERY_TEXT)) != query_fingerprint(
            parse_query(PROJECTION_TEXT)
        )

    def test_ontology_fingerprint_ignores_tgd_order(self):
        forward = parse_ontology("A(x) -> B(x)\nB(x) -> C(x)")
        backward = parse_ontology("B(x) -> C(x)\nA(x) -> B(x)")
        assert ontology_fingerprint(forward) == ontology_fingerprint(backward)

    def test_ontology_fingerprint_distinguishes_tgds(self):
        assert ontology_fingerprint(parse_ontology("A(x) -> B(x)")) != (
            ontology_fingerprint(parse_ontology("A(x) -> C(x)"))
        )


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestPlanCache:
    def test_repeated_query_hits_cache(self, engine):
        first = engine.prepare(QUERY_TEXT)
        second = engine.prepare(QUERY_TEXT)
        assert first is second
        stats = engine.stats
        assert stats.plan_hits == 1
        assert stats.plan_misses == 1
        assert stats.plans_cached == 1

    def test_reparsed_and_object_queries_share_a_plan(self, engine):
        via_text = engine.prepare(QUERY_TEXT)
        via_object = engine.prepare(parse_query(QUERY_TEXT))
        assert via_text is via_object

    def test_lru_eviction_recompiles(self, univ_omq, univ_db):
        engine = QueryEngine(univ_omq.ontology, univ_db, plan_cache_size=1)
        first = engine.prepare(QUERY_TEXT)
        engine.prepare(PROJECTION_TEXT)  # evicts the first plan
        again = engine.prepare(QUERY_TEXT)
        assert again is not first
        assert engine.stats.plan_evictions >= 1

    def test_prepared_plan_contents(self, univ_omq):
        plan = prepare_query(univ_omq.ontology, parse_query(QUERY_TEXT))
        assert plan.is_acyclic
        assert plan.is_free_connex_acyclic
        assert plan.supports_enumeration
        assert plan.join_tree is not None
        assert plan.decomposition is not None
        assert plan.null_depth > 0
        assert plan.cache_key == (
            ontology_fingerprint(univ_omq.ontology),
            query_fingerprint(parse_query(QUERY_TEXT)),
        )

    def test_strict_rejects_cyclic_query(self, engine):
        cyclic = "q(x, y, z) :- R(x, y), S(y, z), T(z, x)"
        with pytest.raises(QueryError):
            engine.prepare(cyclic)

    def test_non_strict_falls_back_to_certain_answers(self, univ_omq, univ_db):
        # Acyclic but not free-connex: CD∘Lin does not apply, so the engine
        # serves materialized certain answers instead of crashing.
        projection = parse_query("q(s, d) :- HasAdvisor(s, a), WorksFor(a, d)")
        reference = OMQ.from_parts(univ_omq.ontology, projection)
        assert reference.is_acyclic() and not reference.is_free_connex_acyclic()
        engine = QueryEngine(univ_omq.ontology, univ_db, strict=False)
        plan = engine.prepare(projection)
        assert not plan.supports_enumeration
        assert engine.execute(projection) == reference.certain_answers(univ_db)
        with engine.open(projection) as cursor:
            assert set(cursor) == reference.certain_answers(univ_db)

    def test_omq_with_foreign_ontology_rejected(self, engine):
        other = OMQ.from_parts(parse_ontology("A(x) -> B(x)"), parse_query("q(x) :- A(x)"))
        with pytest.raises(QueryError):
            engine.prepare(other)


class TestExecution:
    def test_execute_matches_fresh_enumerator(self, univ_omq, univ_db, engine):
        expected = set(CompleteAnswerEnumerator(univ_omq, univ_db))
        assert engine.execute(univ_omq.query) == expected

    def test_materialization_shared_across_queries(self, engine):
        engine.execute(QUERY_TEXT)
        engine.execute(PROJECTION_TEXT)
        stats = engine.stats
        assert stats.chase_builds == 1
        assert stats.state_builds == 2

    def test_repeated_execution_reuses_state(self, engine):
        first = engine.execute(QUERY_TEXT)
        second = engine.execute(QUERY_TEXT)
        assert first == second
        stats = engine.stats
        assert stats.chase_builds == 1
        assert stats.state_builds == 1

    def test_execute_requires_a_database(self, univ_omq):
        engine = QueryEngine(univ_omq.ontology)
        with pytest.raises(ValueError):
            engine.execute(QUERY_TEXT)

    def test_per_call_database_override(self, univ_omq, engine):
        other = generate_university_database(40, seed=9)
        expected = set(CompleteAnswerEnumerator(univ_omq, other))
        assert engine.execute(univ_omq.query, database=other) == expected
        assert engine.stats.chase_builds == 1  # only the override database chased

    def test_materialization_cache_is_bounded(self, univ_omq):
        engine = QueryEngine(univ_omq.ontology, materialization_cache_size=2)
        databases = [generate_university_database(20, seed=s) for s in range(4)]
        for database in databases:
            engine.execute(univ_omq.query, database=database)
        assert len(engine._materializations) == 2
        # An evicted database is transparently re-materialized on next use.
        expected = set(CompleteAnswerEnumerator(univ_omq, databases[0]))
        assert engine.execute(univ_omq.query, database=databases[0]) == expected

    def test_chase_supports_deeper_reuse(self, univ_omq, univ_db):
        big_chase = univ_omq.chase(univ_db)
        small_query = parse_query("q(s, a) :- HasAdvisor(s, a)")
        assert big_chase.supports(small_query)
        shallow = univ_omq.chase(univ_db, null_depth=1)
        assert not shallow.supports(univ_omq.query)


class TestInvalidation:
    def test_add_maintains_materialized_state_incrementally(
        self, univ_omq, univ_db, engine
    ):
        before = engine.execute(univ_omq.query)
        univ_db.add(Fact("HasAdvisor", ("newstudent", "prof0")))
        univ_db.add(Fact("WorksFor", ("prof0", "dept0")))
        after = engine.execute(univ_omq.query)
        assert after == set(CompleteAnswerEnumerator(univ_omq, univ_db))
        assert ("newstudent", "prof0", "dept0") in after
        assert after != before
        # A small delta is maintained in place: no rebuild, no invalidation.
        stats = engine.stats
        assert stats.chase_builds == 1
        assert stats.chase_increments >= 1
        assert stats.invalidations == 0

    def test_add_invalidates_without_incremental(self, univ_omq, univ_db):
        engine = QueryEngine(univ_omq.ontology, univ_db, incremental=False)
        before = engine.execute(univ_omq.query)
        univ_db.add(Fact("HasAdvisor", ("newstudent", "prof0")))
        univ_db.add(Fact("WorksFor", ("prof0", "dept0")))
        after = engine.execute(univ_omq.query)
        assert after == set(CompleteAnswerEnumerator(univ_omq, univ_db))
        assert after != before
        assert engine.stats.invalidations >= 1
        assert engine.stats.chase_builds == 2

    def test_discard_maintains_materialized_state(self, univ_omq, univ_db, engine):
        fact = next(iter(univ_db.relation("HasAdvisor")))
        before = engine.execute(univ_omq.query)
        assert univ_db.discard(fact)
        after = engine.execute(univ_omq.query)
        assert after == set(CompleteAnswerEnumerator(univ_omq, univ_db))
        assert after <= before
        assert engine.stats.chase_builds == 1
        assert engine.stats.chase_increments == 1

    def test_large_delta_falls_back_to_rebuild(self, univ_omq, univ_db, engine):
        engine.execute(univ_omq.query)
        with univ_db.batch():
            for index in range(len(univ_db)):
                univ_db.add(Fact("GradStudent", (f"bulk{index}",)))
        after = engine.execute(univ_omq.query)
        assert after == set(CompleteAnswerEnumerator(univ_omq, univ_db))
        stats = engine.stats
        assert stats.incremental_fallbacks == 1
        assert stats.chase_builds == 2
        assert stats.chase_increments == 0

    def test_noop_mutation_keeps_state(self, univ_omq, univ_db, engine):
        engine.execute(univ_omq.query)
        existing = next(iter(univ_db.relation("HasAdvisor")))
        assert not univ_db.add(existing)  # already present: no version bump
        engine.execute(univ_omq.query)
        assert engine.stats.chase_builds == 1
        assert engine.stats.invalidations == 0

    def test_explicit_invalidate(self, univ_omq, engine):
        engine.execute(univ_omq.query)
        engine.invalidate()
        engine.execute(univ_omq.query)
        assert engine.stats.chase_builds == 2

    def test_instance_version_counter(self):
        database = Database()
        assert database.version == 0
        fact = Fact("R", ("a", "b"))
        assert database.add(fact)
        assert database.version == 1
        assert not database.add(fact)
        assert database.version == 1
        assert database.discard(fact)
        assert database.version == 2
        assert not database.discard(fact)
        assert database.version == 2


class TestBatch:
    QUERIES = (QUERY_TEXT, PROJECTION_TEXT, "q(a, d) :- WorksFor(a, d)")

    def test_batch_identical_to_sequential(self, univ_omq, univ_db, engine):
        batch = list(self.QUERIES) * 4
        batched = engine.execute_batch(batch)
        sequential = [engine.execute(query) for query in batch]
        assert batched == sequential
        fresh = [
            set(
                CompleteAnswerEnumerator(
                    OMQ.from_parts(univ_omq.ontology, parse_query(text)), univ_db
                )
            )
            for text in batch
        ]
        assert batched == fresh

    def test_batch_sequential_worker_loop(self, engine):
        batched = engine.execute_batch(list(self.QUERIES), max_workers=1)
        assert batched == [engine.execute(query) for query in self.QUERIES]

    def test_batch_empty(self, engine):
        assert engine.execute_batch([]) == []

    def test_batch_preprocesses_once(self, engine):
        from repro.config import default_workers
        from repro.parallel import supported as parallel_supported

        engine.execute_batch(list(self.QUERIES) * 3)
        stats = engine.stats
        assert stats.chase_builds == 1
        # Sequential/thread batches build one master enumeration state per
        # distinct query; with REPRO_WORKERS >= 2 the process pool answers
        # enumerable queries worker-side and no master state is needed.
        if default_workers() >= 2 and parallel_supported():
            assert stats.state_builds == 0
        else:
            assert stats.state_builds == len(self.QUERIES)


class TestCursor:
    def test_cursor_enumerates_all_answers(self, univ_omq, engine):
        expected = engine.execute(univ_omq.query)
        with engine.open(univ_omq.query) as cursor:
            assert set(cursor) == expected

    def test_cursor_restart(self, univ_omq, engine):
        cursor = engine.open(univ_omq.query)
        first_pass = set(cursor.fetchall())
        cursor.restart()
        assert set(cursor.fetchall()) == first_pass
        cursor.close()

    def test_fetchmany_pages_through(self, univ_omq, engine):
        expected = engine.execute(univ_omq.query)
        cursor = engine.open(univ_omq.query)
        seen: set[tuple] = set()
        while True:
            page = cursor.fetchmany(7)
            if not page:
                break
            assert len(page) <= 7
            seen.update(page)
        assert seen == expected

    def test_cursor_sees_mutations_after_restart(self, univ_omq, univ_db, engine):
        cursor = engine.open(univ_omq.query)
        before = set(cursor.fetchall())
        univ_db.add(Fact("HasAdvisor", ("xs", "prof0")))
        univ_db.add(Fact("WorksFor", ("prof0", "dept1")))
        cursor.restart()
        after = set(cursor.fetchall())
        assert ("xs", "prof0", "dept1") in after
        assert after >= {a for a in before if a[0] != "xs"}

    def test_closed_cursor_refuses_restart(self, univ_omq, engine):
        cursor = engine.open(univ_omq.query)
        cursor.close()
        with pytest.raises(RuntimeError):
            cursor.restart()


class TestCLI:
    def test_run_json_report(self, capsys, tmp_path):
        query_file = tmp_path / "advisors.cq"
        query_file.write_text(PROJECTION_TEXT, encoding="utf-8")
        exit_code = cli_main(
            [
                "run",
                "--workload",
                "university",
                "--size",
                "50",
                "--queries",
                str(query_file),
                "--repeat",
                "3",
                "--json",
            ]
        )
        assert exit_code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["workload"] == "university"
        assert report["executed"] == 3
        assert report["results"][0]["query"] == "advisors.cq"
        assert report["results"][0]["answers"] > 0
        assert report["engine"]["plan_misses"] == 1

    def test_run_batch_matches_default_query(self, capsys):
        exit_code = cli_main(
            ["run", "--workload", "office", "--size", "40", "--batch", "--json"]
        )
        assert exit_code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["mode"] == "batch"
        assert report["queries"] == 1

    def test_run_updates_replay(self, capsys):
        exit_code = cli_main(
            [
                "run",
                "--workload",
                "university",
                "--size",
                "60",
                "--updates",
                "4",
                "--update-size",
                "2",
                "--json",
            ]
        )
        assert exit_code == 0
        report = json.loads(capsys.readouterr().out)
        updates = report["updates"]
        assert updates["rounds"] == 4
        assert updates["batch_size"] == 2
        assert updates["chase_increments"] == 4
        assert updates["chase_builds"] == 1
        assert report["engine"]["invalidations"] == 0

    def test_run_updates_no_incremental_rebuilds(self, capsys):
        exit_code = cli_main(
            [
                "run",
                "--workload",
                "university",
                "--size",
                "60",
                "--updates",
                "3",
                "--update-size",
                "2",
                "--no-incremental",
                "--json",
            ]
        )
        assert exit_code == 0
        report = json.loads(capsys.readouterr().out)
        updates = report["updates"]
        assert updates["chase_increments"] == 0
        assert updates["chase_builds"] == 4  # warm build + one per round

    def test_workloads_listing(self, capsys):
        assert cli_main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "university" in out
        assert "office" in out

    def test_bad_query_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.cq"
        bad.write_text("not a query", encoding="utf-8")
        exit_code = cli_main(
            ["run", "--workload", "university", "--queries", str(bad), "--json"]
        )
        assert exit_code == 2
        assert "error" in capsys.readouterr().err


class TestStatsConcurrency:
    """Regression tests for the stats race: counters bumped from worker
    threads (``execute_batch`` maps over a thread pool) must never lose
    increments, and ``snapshot()`` must be one consistent cut."""

    def test_counters_survive_a_thread_hammer(self):
        from repro.engine import EngineCounters

        counters = EngineCounters()
        threads_n, rounds = 8, 2_000

        def hammer():
            for _ in range(rounds):
                counters.bump("executions")
                counters.bump("pages", 3)

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = counters.snapshot()
        assert snapshot["executions"] == threads_n * rounds
        assert snapshot["pages"] == 3 * threads_n * rounds

    def test_histogram_counts_every_observation(self):
        from repro.engine import LatencyHistogram

        histogram = LatencyHistogram()
        threads_n, rounds = 8, 500

        def hammer(seed):
            for index in range(rounds):
                histogram.observe(0.0001 * ((seed + index) % 50 + 1))

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = histogram.snapshot()
        assert snapshot["count"] == threads_n * rounds
        assert 0 < snapshot["p50_ms"] <= snapshot["p99_ms"] <= snapshot["max_ms"]

    def test_engine_counts_are_exact_under_concurrency(self, univ_omq, univ_db):
        engine = QueryEngine(univ_omq.ontology, univ_db)
        queries = [QUERY_TEXT, PROJECTION_TEXT]
        threads_n, rounds = 6, 10

        def hammer(seed):
            for index in range(rounds):
                query = queries[(seed + index) % len(queries)]
                if index % 2:
                    engine.execute(query)
                else:
                    engine.execute_batch(queries)
                with engine.open(query) as cursor:
                    cursor.fetchmany(4)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = engine.snapshot()
        execute_calls = threads_n * (rounds // 2)
        batch_calls = threads_n * (rounds - rounds // 2)
        assert stats.executions == execute_calls + batch_calls * len(queries)
        assert stats.cursors_opened == threads_n * rounds
        assert stats.cursors_open == 0  # every cursor closed by its context

    def test_snapshot_equals_stats_property(self, univ_omq, engine):
        engine.execute(univ_omq.query)
        assert engine.snapshot() == engine.stats
        assert engine.stats.as_dict()["executions"] == 1


class TestCursorLifecycleHooks:
    def test_close_hooks_fire_once_in_lifo_order(self, univ_omq, engine):
        fired = []
        cursor = engine.open(univ_omq.query, on_close=lambda c: fired.append("init"))
        cursor.add_close_hook(lambda c: fired.append("later"))
        assert not cursor.closed
        cursor.close()
        cursor.close()  # idempotent: hooks must not fire twice
        assert cursor.closed
        assert fired == ["later", "init"]

    def test_hook_added_after_close_runs_immediately(self, univ_omq, engine):
        cursor = engine.open(univ_omq.query)
        cursor.close()
        fired = []
        cursor.add_close_hook(lambda c: fired.append(True))
        assert fired == [True]

    def test_open_gauge_tracks_cursors(self, univ_omq, engine):
        first = engine.open(univ_omq.query)
        second = engine.open(univ_omq.query)
        assert engine.snapshot().cursors_open == 2
        first.close()
        second.close()
        assert engine.snapshot().cursors_open == 0
