"""Tests for hypergraphs, join trees and the acyclicity notions (Figure 1)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq import Atom, Variable, parse_query
from repro.cq.acyclicity import (
    bad_paths,
    classify,
    extended_query,
    figure1_examples,
    has_bad_path,
    is_acyclic,
    is_free_connex_acyclic,
    is_weakly_acyclic,
    join_tree,
)
from repro.cq.hypergraph import Hypergraph, atom_hypergraph, gyo_reduction, is_alpha_acyclic
from repro.cq.jointree import build_join_tree, guard_atom

X, Y, Z, U, W = (Variable(n) for n in ("x", "y", "z", "u", "w"))


class TestHypergraph:
    def test_path_is_acyclic(self):
        graph = Hypergraph.from_edge_sets([{1, 2}, {2, 3}, {3, 4}])
        assert is_alpha_acyclic(graph)

    def test_triangle_is_cyclic(self):
        graph = Hypergraph.from_edge_sets([{1, 2}, {2, 3}, {3, 1}])
        assert not is_alpha_acyclic(graph)

    def test_guarded_triangle_is_acyclic(self):
        graph = Hypergraph.from_edge_sets([{1, 2}, {2, 3}, {3, 1}, {1, 2, 3}])
        assert is_alpha_acyclic(graph)

    def test_square_is_cyclic(self):
        graph = Hypergraph.from_edge_sets([{1, 2}, {2, 3}, {3, 4}, {4, 1}])
        assert not is_alpha_acyclic(graph)

    def test_empty_and_single_edge(self):
        assert is_alpha_acyclic(Hypergraph.from_edge_sets([]))
        assert is_alpha_acyclic(Hypergraph.from_edge_sets([{1, 2, 3}]))

    def test_gyo_reports_ear_order(self):
        graph = Hypergraph.from_edge_sets([{1, 2}, {2, 3}])
        acyclic, ears = gyo_reduction(graph)
        assert acyclic
        assert len(ears) == 2

    def test_vertices(self):
        graph = Hypergraph.from_edge_sets([{1, 2}, {3}])
        assert graph.vertices() == {1, 2, 3}
        assert len(graph) == 2


class TestJoinTree:
    def test_join_tree_of_path(self):
        atoms = [Atom("R", (X, Y)), Atom("S", (Y, Z)), Atom("T", (Z, U))]
        tree = build_join_tree(atoms)
        assert tree is not None
        assert tree.is_valid()
        assert len(list(tree.edges())) == 2

    def test_join_tree_of_triangle_is_none(self):
        atoms = [Atom("R", (X, Y)), Atom("S", (Y, Z)), Atom("T", (Z, X))]
        assert build_join_tree(atoms) is None

    def test_single_atom_tree(self):
        tree = build_join_tree([Atom("R", (X, Y))])
        assert tree is not None and tree.root == Atom("R", (X, Y))

    def test_rooting_and_preorder(self):
        a, b, c = Atom("A", (X,)), Atom("R", (X, Y)), Atom("B", (Y,))
        tree = build_join_tree([a, b, c], root=b)
        assert tree.root == b
        order = tree.preorder()
        assert order[0] == b and set(order) == {a, b, c}
        assert tree.parent(b) is None
        assert tree.parent(a) == b

    def test_predecessor_variables(self):
        a, b = Atom("R", (X, Y)), Atom("S", (Y, Z))
        tree = build_join_tree([a, b], root=a)
        assert tree.predecessor_variables(b) == {Y}
        assert tree.predecessor_variables(a) == set()

    def test_subtree_atoms(self):
        a, b, c = Atom("R", (X, Y)), Atom("S", (Y, Z)), Atom("T", (Z, U))
        tree = build_join_tree([a, b, c], root=a)
        assert set(tree.subtree_atoms(b)) == {b, c}

    def test_disconnected_atoms_get_linked(self):
        a, b = Atom("A", (X,)), Atom("B", (Y,))
        tree = build_join_tree([a, b])
        assert tree is not None
        assert tree.is_valid()

    def test_guard_atom(self):
        guard = guard_atom((X, Y))
        assert guard.args == (X, Y)
        assert guard.relation == "__guard__"


class TestAcyclicityNotions:
    def test_figure1_classifications(self):
        expectations = {
            "free path": (True, True, True),
            "projected path": (True, False, True),
            "free triangle": (False, True, True),
            "triangle with quantified corner": (False, False, True),
            "Boolean triangle": (False, False, False),
        }
        for name, _query, props in figure1_examples():
            expected = expectations[name]
            assert (
                props["acyclic"],
                props["free_connex_acyclic"],
                props["weakly_acyclic"],
            ) == expected, name

    def test_each_notion_implies_weak_acyclicity(self):
        for _name, query, props in figure1_examples():
            if props["acyclic"] or props["free_connex_acyclic"]:
                assert props["weakly_acyclic"]

    def test_office_query_is_acyclic_and_free_connex(self):
        query = parse_query("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
        assert is_acyclic(query)
        assert is_free_connex_acyclic(query)
        assert is_weakly_acyclic(query)

    def test_matrix_multiplication_query(self):
        query = parse_query("q(x, y) :- R(x, z), S(z, y)")
        assert is_acyclic(query)
        assert not is_free_connex_acyclic(query)

    def test_boolean_queries_acyclicity_coincides_with_weak(self):
        cyclic = parse_query("q() :- R(x, y), S(y, z), T(z, x)")
        path = parse_query("q() :- R(x, y), S(y, z)")
        assert is_weakly_acyclic(cyclic) == is_acyclic(cyclic) is False
        assert is_weakly_acyclic(path) == is_acyclic(path) is True

    def test_join_tree_exists_iff_acyclic(self):
        acyclic_query = parse_query("q(x) :- R(x, y), S(y, z)")
        cyclic_query = parse_query("q(x) :- R(x, y), S(y, z), T(z, x)")
        assert join_tree(acyclic_query) is not None
        assert join_tree(cyclic_query) is None

    def test_extended_query_adds_guard(self):
        query = parse_query("q(x, y) :- R(x, z), S(z, y)")
        extended = extended_query(query)
        assert len(extended.atoms) == len(query.atoms) + 1

    def test_classify_reports_all_fields(self):
        report = classify(parse_query("q(x) :- R(x, y)"))
        assert set(report) == {
            "acyclic",
            "free_connex_acyclic",
            "weakly_acyclic",
            "self_join_free",
            "connected",
            "full",
        }


class TestBadPaths:
    def test_mm_query_has_bad_path(self):
        query = parse_query("q(x, y) :- R(x, z), S(z, y)")
        paths = bad_paths(query)
        assert paths, "the projected path query must have a bad path"
        assert all(len(path) >= 3 for path in paths)
        assert has_bad_path(query)

    def test_free_connex_acyclic_query_has_no_bad_path(self):
        query = parse_query("q(x, y, z) :- R(x, y), S(y, z)")
        assert not has_bad_path(query)

    def test_bad_path_endpoints_are_answer_variables(self):
        query = parse_query("q(x, y) :- R(x, a), S(a, b), T(b, y)")
        for path in bad_paths(query):
            assert path[0] in query.answer_variables
            assert path[-1] in query.answer_variables

    def test_acyclic_query_bad_path_characterises_free_connex(self):
        # For acyclic queries: free-connex acyclic iff no bad path.
        queries = [
            "q(x, y) :- R(x, z), S(z, y)",
            "q(x, y, z) :- R(x, y), S(y, z)",
            "q(x, y) :- R(x, y), S(y, z)",
            "q(s, a, d) :- Advisor(s, a), WorksFor(a, d)",
            "q(x, y) :- R(x, a), S(a, b), T(b, y)",
        ]
        for text in queries:
            query = parse_query(text)
            assert is_acyclic(query)
            assert is_free_connex_acyclic(query) == (not has_bad_path(query)), text


def _random_acyclic_atoms(rng: random.Random, size: int) -> list[Atom]:
    """Generate atoms whose hypergraph is acyclic by growing a tree."""
    variables = [Variable(f"v{i}") for i in range(size + 1)]
    atoms = [Atom("R0", (variables[0], variables[1]))]
    for index in range(1, size):
        anchor = rng.choice(variables[: index + 1])
        atoms.append(Atom(f"R{index}", (anchor, variables[index + 1])))
    return atoms


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=10_000))
def test_tree_shaped_atom_sets_are_acyclic(size, seed):
    """Property: atom sets grown as trees are acyclic and have valid join trees."""
    rng = random.Random(seed)
    atoms = _random_acyclic_atoms(rng, size)
    assert is_alpha_acyclic(atom_hypergraph(atoms))
    tree = build_join_tree(atoms)
    assert tree is not None and tree.is_valid()


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=3, max_value=7), st.integers(min_value=0, max_value=10_000))
def test_gyo_and_join_tree_construction_agree(size, seed):
    """Property: GYO acyclicity and join-tree existence coincide."""
    rng = random.Random(seed)
    variables = [Variable(f"v{i}") for i in range(size)]
    atoms = []
    for index in range(size):
        width = rng.randint(1, 3)
        atoms.append(Atom(f"R{index}", tuple(rng.sample(variables, width))))
    acyclic = is_alpha_acyclic(atom_hypergraph(atoms))
    tree = build_join_tree(atoms)
    assert acyclic == (tree is not None)
