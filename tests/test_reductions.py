"""Tests for the lower-bound reductions (triangles and Boolean matrices)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WILDCARD
from repro.core.testing import OMQSingleTester
from repro.reductions import (
    bmm_free_connex_omq,
    bmm_omq,
    boolean_matrix_multiply_naive,
    boolean_matrix_multiply_sparse,
    boolean_matrix_multiply_via_omq,
    graph_to_database,
    has_triangle_naive,
    has_triangle_via_omq,
    matrices_to_database,
    triangle_omq,
    triangle_partial_answer_omq,
)
from repro.reductions.triangle import vertices_on_triangles_via_omq
from repro.workloads import random_graph, random_sparse_matrix


class TestTriangleReduction:
    def test_omq_shapes(self):
        omq = triangle_omq()
        assert omq.is_guarded()
        assert omq.is_weakly_acyclic()
        assert not omq.is_acyclic()
        path_omq = triangle_partial_answer_omq()
        assert path_omq.is_acyclic()
        assert path_omq.is_free_connex_acyclic()

    def test_graph_encoding_is_symmetric(self):
        database = graph_to_database([("a", "b")])
        assert len(database) == 2

    def test_known_triangle(self):
        edges = [("a", "b"), ("b", "c"), ("c", "a")]
        assert has_triangle_naive(edges)
        assert has_triangle_via_omq(edges)

    def test_known_triangle_free(self):
        edges = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]
        assert not has_triangle_naive(edges)
        assert not has_triangle_via_omq(edges)

    def test_empty_graph(self):
        assert not has_triangle_via_omq([])

    def test_all_wildcard_is_always_a_partial_answer(self):
        edges = [("a", "b"), ("b", "c")]
        tester = OMQSingleTester(triangle_omq(), graph_to_database(edges))
        assert tester.test_partial((WILDCARD, WILDCARD, WILDCARD))

    def test_vertices_on_triangles(self):
        edges = [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]
        on_triangles = vertices_on_triangles_via_omq(edges)
        assert on_triangles == {"a", "b", "c"}

    def test_random_graphs_agree_with_naive(self):
        rng = random.Random(2)
        for trial in range(6):
            vertices = rng.randint(4, 9)
            edges = random_graph(vertices, rng.randint(3, 12), seed=trial)
            assert has_triangle_via_omq(edges) == has_triangle_naive(edges)

    def test_avoid_triangles_generator(self):
        edges = random_graph(15, 25, seed=4, avoid_triangles=True)
        assert not has_triangle_naive(edges)


class TestBMMReduction:
    def test_omq_shapes(self):
        omq = bmm_omq()
        assert omq.is_acyclic()
        assert not omq.is_free_connex_acyclic()
        full = bmm_free_connex_omq()
        assert full.is_acyclic() and full.is_free_connex_acyclic()

    def test_small_product(self):
        m1 = [(0, 0), (0, 1), (1, 1)]
        m2 = [(0, 1), (1, 0)]
        expected = {(0, 1), (0, 0), (1, 0)}
        assert boolean_matrix_multiply_naive(m1, m2, 2) == expected
        assert boolean_matrix_multiply_sparse(m1, m2) == expected
        assert boolean_matrix_multiply_via_omq(m1, m2) == expected

    def test_empty_matrices(self):
        assert boolean_matrix_multiply_via_omq([], [(0, 0)]) == set()
        assert boolean_matrix_multiply_sparse([], []) == set()

    def test_database_encoding(self):
        database = matrices_to_database([(0, 1)], [(1, 2)])
        assert len(database) == 2
        assert database.relations() == {"R", "S"}

    def test_identity_matrix(self):
        identity = [(i, i) for i in range(4)]
        m = [(0, 1), (2, 3), (3, 0)]
        assert boolean_matrix_multiply_via_omq(identity, m) == set(m)
        assert boolean_matrix_multiply_via_omq(m, identity) == set(m)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=10_000))
def test_bmm_reduction_matches_baselines(dimension, seed):
    """Property: the OMQ route, the sparse baseline and the dense baseline
    compute the same Boolean matrix product."""
    m1 = random_sparse_matrix(dimension, 0.4, seed=seed)
    m2 = random_sparse_matrix(dimension, 0.4, seed=seed + 1)
    dense = boolean_matrix_multiply_naive(m1, m2, dimension)
    sparse = boolean_matrix_multiply_sparse(m1, m2)
    via_omq = boolean_matrix_multiply_via_omq(m1, m2)
    assert dense == sparse == via_omq


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=4, max_value=8), st.integers(min_value=0, max_value=10_000))
def test_triangle_reduction_matches_naive_property(vertices, seed):
    """Property: the OMQ triangle test agrees with direct detection."""
    edges = random_graph(vertices, vertices + 2, seed=seed)
    assert has_triangle_via_omq(edges) == has_triangle_naive(edges)
