"""The observability layer: traces, spans, delay stats, EXPLAIN, telemetry.

Unit tests for the ``repro.obs`` primitives plus the two integration
properties the instrumentation must never lose:

* trace context propagates into ``QueryEngine.execute_batch`` worker
  threads (spans from the pool attach to the calling trace), and
* a server-side timeout closes the request's spans with an error status —
  a cancelled execution may never leave an open span behind.
"""

from __future__ import annotations

import asyncio
import io
import json
import threading
import time

import pytest

from repro.engine import QueryEngine
from repro.obs import (
    NULL_SPAN,
    TRACES,
    DelayStats,
    Trace,
    TraceStore,
    add_event,
    current_span,
    current_trace,
    explain_report,
    format_span_tree,
    render_prometheus,
    SlowQueryLog,
    span,
    start_trace,
    traced_answers,
)
from repro.obs.trace import MAX_SPANS_PER_TRACE
from repro.server import QueryService, Request, ServiceConfig
from repro.server.service import _Cancelled
from repro.workloads import get_workload

WORKLOAD = "university"
SIZE = 40
SEED = 5
QUERY = "q(s, a) :- HasAdvisor(s, a)"
JOIN_QUERY = "q(s, a, d) :- HasAdvisor(s, a), WorksFor(a, d)"


def _engine(**kwargs) -> QueryEngine:
    scenario = get_workload(WORKLOAD).scenario(size=SIZE, seed=SEED)
    return QueryEngine(scenario.ontology, scenario.database, **kwargs)


class TestDelayStats:
    def test_exact_aggregates_and_bounded_percentiles(self):
        stats = DelayStats()
        samples = [1e-6, 2e-6, 4e-6, 1e-3]
        for value in samples:
            stats.observe(value)
        assert stats.count == 4
        assert stats.min == 1e-6
        assert stats.max == 1e-3
        assert stats.total == pytest.approx(sum(samples))
        # Percentiles answer from bucket upper bounds: conservative, but
        # never beyond the exact max and never below the exact min.
        for fraction in (0.5, 0.9, 0.99, 1.0):
            value = stats.percentile(fraction)
            assert stats.min <= value <= stats.max
        assert stats.percentile(1.0) == stats.max

    def test_median_within_bucket_factor(self):
        stats = DelayStats()
        for _ in range(100):
            stats.observe(3e-6)
        assert 3e-6 <= stats.percentile(0.5) <= 6e-6

    def test_empty_wire_form(self):
        assert DelayStats().to_dict() == {"count": 0}

    def test_wire_form_is_milliseconds(self):
        stats = DelayStats()
        stats.observe(0.002)
        payload = stats.to_dict()
        assert payload["count"] == 1
        assert payload["min_ms"] == pytest.approx(2.0)
        assert payload["max_ms"] == pytest.approx(2.0)
        assert payload["mean_ms"] == pytest.approx(2.0)


class TestSpansAndTraces:
    def test_spans_nest_and_carry_attributes(self):
        with start_trace("unit", store=None) as trace:
            with span("outer", flavor="a") as outer:
                with span("inner") as inner:
                    assert current_span() is inner
                assert current_span() is outer
        assert trace.ended is not None
        root, outer, inner = trace.spans
        assert root.name == "unit" and root.parent_id is None
        assert outer.parent_id == root.span_id
        assert inner.parent_id == outer.span_id
        assert outer.attributes == {"flavor": "a"}
        assert all(s.status == "ok" for s in trace.spans)

    def test_exception_marks_span_and_root_as_error(self):
        with pytest.raises(RuntimeError):
            with start_trace("boom", store=None) as trace:
                with span("phase"):
                    raise RuntimeError("kaput")
        root, phase = trace.spans
        assert phase.status == "error" and "kaput" in phase.error
        assert root.status == "error"

    def test_leaked_span_is_force_closed_as_error(self):
        with start_trace("leak", store=None) as trace:
            trace.begin_span("orphan", None)  # no __exit__ will ever run
        orphan = trace.spans[-1]
        assert orphan.status == "error"
        assert orphan.error == "span leaked open"
        assert trace.open_spans() == []

    def test_span_cap_drops_and_counts(self):
        trace = Trace("cap")
        for _ in range(MAX_SPANS_PER_TRACE):
            assert trace.begin_span("s", None) is not None
        assert trace.begin_span("overflow", None) is None
        assert trace.spans_dropped == 1

    def test_no_ambient_trace_means_null_span(self):
        assert current_trace() is None
        assert span("anything") is NULL_SPAN
        with span("anything") as sp:
            assert sp is None

    def test_events_attach_to_ambient_trace(self):
        add_event("ignored.without.trace")  # must be a silent no-op
        with start_trace("events", store=None) as trace:
            add_event("codegen.compile", function="f0")
        (event,) = trace.events
        assert event["name"] == "codegen.compile"
        assert event["function"] == "f0"
        assert event["at_ms"] >= 0

    def test_adopted_trace_id_and_span_tree(self):
        with start_trace("adopt", trace_id="cafe0123cafe0123", store=None) as trace:
            with span("child"):
                pass
        assert trace.trace_id == "cafe0123cafe0123"
        (root,) = trace.span_tree()
        assert root["name"] == "adopt"
        assert [c["name"] for c in root["children"]] == ["child"]

    def test_nested_trace_shadows_and_restores(self):
        with start_trace("outer", store=None) as outer:
            with start_trace("shadow", store=None) as inner:
                assert current_trace() is inner
            assert current_trace() is outer
        assert current_trace() is None


class TestTraceStore:
    def test_ring_buffer_evicts_oldest(self):
        store = TraceStore(capacity=2)
        traces = [Trace(f"t{i}") for i in range(3)]
        for trace in traces:
            store.add(trace)
        assert len(store) == 2
        assert store.get(traces[0].trace_id) is None
        assert store.get(traces[2].trace_id) is traces[2]
        assert [t.name for t in store.recent()] == ["t2", "t1"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


class TestTracedAnswers:
    def test_samples_delays_and_marks_exhausted(self):
        with start_trace("enum", store=None) as trace:
            out = list(traced_answers(iter([(1,), (2,), (3,)])))
        assert out == [(1,), (2,), (3,)]
        enum = next(s for s in trace.spans if s.name == "enumerate")
        assert enum.status == "ok"
        assert enum.attributes["answers"] == 3
        assert enum.attributes["exhausted"] is True
        assert enum.attributes["delay"]["count"] == 3

    def test_abandoned_iterator_closes_span_as_cancelled(self):
        with start_trace("enum", store=None) as trace:
            it = traced_answers(iter([(1,), (2,), (3,)]))
            assert next(it) == (1,)
            it.close()
        enum = next(s for s in trace.spans if s.name == "enumerate")
        assert enum.status == "cancelled"
        assert enum.attributes["answers"] == 1
        assert enum.attributes["exhausted"] is False
        assert trace.open_spans() == []

    def test_passthrough_without_a_trace(self):
        assert list(traced_answers(iter([(1,)]))) == [(1,)]


class TestEngineTracing:
    def test_execute_records_pipeline_phases(self):
        engine = _engine()
        with start_trace("exec", store=None) as trace:
            answers = engine.execute(QUERY)
        names = {s.name for s in trace.spans}
        assert {"execute", "parse", "plan", "chase", "reduce", "enumerate"} <= names
        enum = next(s for s in trace.spans if s.name == "enumerate")
        assert enum.attributes["answers"] == len(answers)
        assert trace.open_spans() == []

    def test_hard_off_engine_stays_silent_inside_a_trace(self):
        engine = _engine(tracing=False)
        with start_trace("silent", store=None) as trace:
            engine.execute(QUERY)
        assert [s.name for s in trace.spans] == ["silent"]

    def test_execute_batch_workers_join_the_calling_trace(self):
        engine = _engine()
        queries = [QUERY, JOIN_QUERY]
        with start_trace("batch", store=None) as trace:
            results = engine.execute_batch(queries, max_workers=2)
        assert [len(r) for r in results] == [
            len(engine.execute(q)) for q in queries
        ]
        enum_spans = [s for s in trace.spans if s.name == "enumerate"]
        # One enumerate span per query, recorded from the pool's worker
        # threads, all attached to this trace and all closed.
        assert len(enum_spans) == len(queries)
        assert all(s.status == "ok" for s in enum_spans)
        assert trace.open_spans() == []
        batch = next(s for s in trace.spans if s.name == "execute_batch")
        assert all(s.parent_id is not None for s in enum_spans)
        assert batch.status == "ok"


def _request(method: str, path: str, payload=None, params=None, headers=None):
    body = json.dumps(payload).encode("utf-8") if payload is not None else b""
    return Request(
        method=method,
        path=path,
        params=params or {},
        headers=headers or {},
        body=body,
    )


def _service(**overrides) -> QueryService:
    service = QueryService(ServiceConfig(port=0, **overrides))
    service.create_tenant("t", WORKLOAD, size=SIZE, seed=SEED)
    return service


class TestServerTracing:
    def test_client_trace_id_is_adopted_and_echoed(self):
        service = _service()
        trace_id = "feedc0de12345678"
        response = asyncio.run(
            service.handle(
                _request(
                    "POST",
                    "/tenants/t/query",
                    {"query": QUERY},
                    headers={"x-repro-trace": trace_id},
                )
            )
        )
        assert response.status == 200
        assert response.headers["X-Repro-Trace"] == trace_id
        assert json.loads(response.body)["trace_id"] == trace_id
        trace = TRACES.get(trace_id)
        assert trace is not None
        assert {"plan", "enumerate"} <= {s.name for s in trace.spans}

    def test_explain_param_embeds_phase_report(self):
        service = _service()
        response = asyncio.run(
            service.handle(
                _request(
                    "POST",
                    "/tenants/t/query",
                    {"query": QUERY},
                    params={"explain": "1"},
                )
            )
        )
        assert response.status == 200
        body = json.loads(response.body)
        explain = body["explain"]
        assert explain["trace_id"] == body["trace_id"]
        assert {"plan", "enumerate"} <= set(explain["phases"])
        assert explain["answers"] == body["count"]

    def test_hard_off_config_ignores_trace_header(self):
        service = _service(tracing=False)
        response = asyncio.run(
            service.handle(
                _request(
                    "POST",
                    "/tenants/t/query",
                    {"query": QUERY},
                    headers={"x-repro-trace": "竜ignored"},
                )
            )
        )
        assert response.status == 200
        assert "X-Repro-Trace" not in response.headers
        assert "trace_id" not in json.loads(response.body)

    def test_timeout_closes_spans_with_error_status(self):
        """A cancelled execution must never leave an open span behind."""
        service = _service(query_timeout=0.05)
        trace_id = "dead0123dead0123"
        span_entered = threading.Event()

        def hanging_execute(cancel, tenant, query):
            # Runs in the worker thread with the request's (copied) trace
            # context: the span below attaches to the request trace.
            with span("enumerate"):
                span_entered.set()
                while not cancel.is_set():
                    time.sleep(0.005)
                raise _Cancelled()

        service._execute_blocking = hanging_execute
        response = asyncio.run(
            service.handle(
                _request(
                    "POST",
                    "/tenants/t/query",
                    {"query": QUERY},
                    headers={"x-repro-trace": trace_id},
                )
            )
        )
        assert response.status == 504
        assert span_entered.is_set()
        # The 504 still correlates: same trace id, finished trace stored.
        assert response.headers["X-Repro-Trace"] == trace_id
        trace = TRACES.get(trace_id)
        assert trace is not None
        assert trace.ended is not None
        assert trace.open_spans() == []
        by_name = {s.name: s for s in trace.spans}
        assert by_name["enumerate"].status == "error"
        assert by_name["query:t"].status == "error"


class TestSlowQueryLog:
    def test_threshold_gates_emission(self):
        stream = io.StringIO()
        log = SlowQueryLog(5.0, stream=stream)
        assert log.record(query="fast", elapsed_ms=1.0) is False
        assert log.record(query="slow", elapsed_ms=9.5, tenant="t") is True
        assert log.emitted == 1
        entry = json.loads(stream.getvalue())
        assert entry["event"] == "slow_query"
        assert entry["query"] == "slow"
        assert entry["elapsed_ms"] == 9.5
        assert entry["threshold_ms"] == 5.0
        assert entry["tenant"] == "t"

    def test_disabled_and_invalid_thresholds(self):
        log = SlowQueryLog(None, stream=io.StringIO())
        assert log.record(query="q", elapsed_ms=1e9) is False
        with pytest.raises(ValueError):
            SlowQueryLog(-1.0)

    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        log = SlowQueryLog(0.0, stream=stream)
        log.record(query="a", elapsed_ms=1.0)
        log.record(query="b", elapsed_ms=2.0, trace_id="tid")
        lines = stream.getvalue().splitlines()
        assert [json.loads(line)["query"] for line in lines] == ["a", "b"]
        assert json.loads(lines[1])["trace_id"] == "tid"


class TestPrometheusExposition:
    METRICS = {
        "service": {
            "draining": False,
            "uptime_seconds": 1.25,
            "tenants": 1,
            "counters": {"queries": 3, "timeouts": 1},
        },
        "engine": {"executions": 5, "plans_cached": 2},
        "engines": {"abc123def456": {"executions": 5, "plans_cached": 2}},
        "tenants": {
            't"x\\y': {
                "db_facts": 10,
                "db_version": 2,
                "inflight": 0,
                "open_cursors": 1,
                "counters": {"queries": 3},
                "latency": {
                    "count": 2,
                    "sum_seconds": 0.5,
                    "buckets": [
                        {"le": 0.0001, "count": 1},
                        {"le": "+Inf", "count": 2},
                    ],
                },
            }
        },
    }

    def test_families_counters_gauges_histograms(self):
        text = render_prometheus(self.METRICS)
        lines = text.splitlines()
        assert "repro_service_queries_total 3" in lines
        assert "repro_service_draining 0" in lines
        assert "# TYPE repro_service_uptime_seconds gauge" in lines
        # Aggregate engine series unlabeled, per-engine series labeled.
        assert "repro_engine_executions_total 5" in lines
        assert 'repro_engine_executions_total{engine="abc123def456"} 5' in lines
        assert "# TYPE repro_engine_plans_cached gauge" in lines

    def test_histogram_is_cumulative_with_inf_bucket(self):
        text = render_prometheus(self.METRICS)
        assert "# TYPE repro_tenant_latency_seconds histogram" in text
        inf_line = next(
            line
            for line in text.splitlines()
            if line.startswith("repro_tenant_latency_seconds_bucket")
            and 'le="+Inf"' in line
        )
        assert inf_line.endswith(" 2")
        count_line = next(
            line
            for line in text.splitlines()
            if line.startswith("repro_tenant_latency_seconds_count")
        )
        assert count_line.endswith(" 2")

    def test_label_values_are_escaped(self):
        text = render_prometheus(self.METRICS)
        assert 'tenant="t\\"x\\\\y"' in text

    def test_every_sample_line_parses(self):
        for line in render_prometheus(self.METRICS).splitlines():
            if line.startswith("#") or not line:
                continue
            name, value = line.rsplit(" ", 1)
            float(value)  # must be a valid exposition number
            assert name[0].isalpha() or name[0] == "_"


class TestExplainReport:
    def test_report_from_a_real_execution(self):
        engine = _engine()
        with start_trace("explain:q", store=None) as trace:
            answers = engine.execute(QUERY)
        report = explain_report(
            trace, prepared=engine.prepare(QUERY), answers=len(answers)
        )
        phase_names = list(report["phases"])
        # Canonical pipeline order first, whatever extra spans after.
        pipeline = [
            p
            for p in ("parse", "plan", "chase", "plan_choice", "reduce", "enumerate")
            if p in report["phases"]
        ]
        assert phase_names[: len(pipeline)] == pipeline
        assert report["answers"] == len(answers)
        assert report["delay"]["count"] == len(answers)
        assert report["plan"]["is_acyclic"] is True
        assert report["plan"]["supports_enumeration"] is True
        for rollup in report["phases"].values():
            assert rollup["calls"] >= 1
            assert rollup["errors"] == 0

    def test_text_rendering_mentions_delay_line(self):
        engine = _engine()
        with start_trace("explain:q", store=None) as trace:
            engine.execute(QUERY)
        text = format_span_tree(explain_report(trace))
        assert "enumerate" in text
        assert "per-answer delay" in text
        assert trace.trace_id in text
