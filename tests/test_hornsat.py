"""Tests for the Dowling–Gallier Horn minimal-model computation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hornsat import HornClause, HornFormula, minimal_model


class TestHornFormula:
    def test_facts_are_derived(self):
        formula = HornFormula()
        formula.add_fact("a")
        formula.add_fact("b")
        assert minimal_model(formula) == {"a", "b"}

    def test_simple_chain(self):
        formula = HornFormula()
        formula.add_fact("a")
        formula.add_rule(["a"], "b")
        formula.add_rule(["b"], "c")
        assert minimal_model(formula) == {"a", "b", "c"}

    def test_unsupported_head_not_derived(self):
        formula = HornFormula()
        formula.add_fact("a")
        formula.add_rule(["b"], "c")
        assert minimal_model(formula) == {"a"}

    def test_conjunction_in_body(self):
        formula = HornFormula()
        formula.add_fact("a")
        formula.add_rule(["a", "b"], "c")
        assert "c" not in minimal_model(formula)
        formula.add_fact("b")
        assert "c" in minimal_model(formula)

    def test_cycle_without_support_is_not_derived(self):
        formula = HornFormula()
        formula.add_rule(["a"], "b")
        formula.add_rule(["b"], "a")
        assert minimal_model(formula) == set()

    def test_clause_classification(self):
        assert HornClause((), "a").is_fact()
        assert not HornClause(("b",), "a").is_fact()

    def test_variables_and_size(self):
        formula = HornFormula()
        formula.add_rule(["a", "b"], "c")
        formula.add_fact("d")
        assert formula.variables() == {"a", "b", "c", "d"}
        assert formula.size() == 3 + 1
        assert len(formula) == 2

    def test_duplicate_rules_are_harmless(self):
        formula = HornFormula()
        formula.add_fact("a")
        formula.add_rule(["a"], "b")
        formula.add_rule(["a"], "b")
        assert minimal_model(formula) == {"a", "b"}


def _naive_fixpoint(formula: HornFormula) -> set:
    derived = set()
    changed = True
    while changed:
        changed = False
        for clause in formula.clauses:
            if clause.head not in derived and set(clause.body) <= derived:
                derived.add(clause.head)
                changed = True
    return derived


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_minimal_model_matches_naive_fixpoint(seed):
    """Property: linear-time propagation equals the naive fixpoint."""
    rng = random.Random(seed)
    variables = [f"v{i}" for i in range(rng.randint(2, 10))]
    formula = HornFormula()
    for _ in range(rng.randint(0, 3)):
        formula.add_fact(rng.choice(variables))
    for _ in range(rng.randint(1, 12)):
        body_size = rng.randint(1, min(3, len(variables)))
        formula.add_rule(rng.sample(variables, body_size), rng.choice(variables))
    assert minimal_model(formula) == _naive_fixpoint(formula)
