"""Documentation guards: link integrity, CLI coverage, runnable doctests.

Three rot detectors:

* every intra-repo Markdown link in README.md and docs/ resolves (same
  check as ``tools/check_docs.py`` and the docs CI job);
* every CLI flag of every ``repro`` subcommand is documented in
  ``docs/cli.md``, so the parser cannot grow options the docs don't know;
* the doctest examples embedded in the ``repro.io`` (and registry)
  docstrings execute, so documented snippets can't rot.
"""

import doctest
import sys
from pathlib import Path

import pytest

import repro.io
import repro.io.dlgp
import repro.io.tabular
import repro.workloads.registry
from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402  (repo tools/ is not a package)


def test_markdown_links_resolve():
    problems = check_docs.check_all(REPO_ROOT)
    assert not problems, "broken documentation links:\n" + "\n".join(problems)


def test_docs_pages_exist():
    for page in ("index", "architecture", "formats", "cli", "engine", "incremental"):
        assert (REPO_ROOT / "docs" / f"{page}.md").is_file(), f"docs/{page}.md missing"


def test_every_cli_flag_is_documented():
    cli_doc = (REPO_ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, type(parser._subparsers._group_actions[0]))
    )
    for name, subparser in subparsers.choices.items():
        assert f"repro {name}" in cli_doc, f"subcommand {name!r} undocumented"
        for action in subparser._actions:
            for option in action.option_strings:
                if option in ("-h", "--help"):
                    continue
                assert option in cli_doc, (
                    f"flag {option!r} of `repro {name}` is missing from docs/cli.md"
                )


@pytest.mark.parametrize(
    "module",
    [repro.io, repro.io.dlgp, repro.io.tabular, repro.workloads.registry],
    ids=lambda module: module.__name__,
)
def test_io_doctests_execute(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} should embed doctest examples"
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
