"""Tests for the incremental-maintenance subsystem (repro.incremental).

Covers the database mutation log (``changes_since`` / ``batch`` /
``add_facts``), the provenance-tracking delta chase (insertions, DRed-style
deletions, suppressed-trigger re-firing), the CD∘Lin reduction maintenance,
and — the heavy hammer — a randomized metamorphic suite interleaving
add/discard/batch sequences on the office, university and graph workloads,
asserting after every step that a warm incremental engine returns answers
byte-identical to a cold from-scratch evaluation, without ever rebuilding
the chase.
"""

import random

import pytest

from repro import Database, Fact, parse_ontology, parse_query
from repro.core import OMQ, CompleteAnswerEnumerator
from repro.chase.query_directed import default_null_depth
from repro.chase.standard import chase
from repro.engine import QueryEngine
from repro.enumeration.cdlin import CDLinEnumerator
from repro.incremental import ChaseMaintainer, Delta
from repro.workloads import (
    generate_office_database,
    generate_university_database,
    office_omq,
    university_omq,
)
from repro.workloads.graphs import random_graph


class TestMutationLog:
    def test_changes_since_nets_mutations(self):
        database = Database([Fact("R", ("a", "b"))])
        start = database.version
        database.add(Fact("R", ("c", "d")))
        database.discard(Fact("R", ("a", "b")))
        delta = database.changes_since(start)
        assert delta is not None
        assert delta.added == {Fact("R", ("c", "d"))}
        assert delta.removed == {Fact("R", ("a", "b"))}
        assert delta.relations() == {"R"}

    def test_add_then_discard_nets_to_nothing(self):
        database = Database()
        start = database.version
        fact = Fact("R", ("a",))
        database.add(fact)
        database.discard(fact)
        delta = database.changes_since(start)
        assert delta is not None and not delta
        assert database.version > start

    def test_discard_then_readd_nets_to_nothing(self):
        fact = Fact("R", ("a",))
        database = Database([fact])
        start = database.version
        database.discard(fact)
        database.add(fact)
        delta = database.changes_since(start)
        assert delta is not None and not delta

    def test_plain_instance_has_no_log(self):
        from repro.data.instance import Instance

        instance = Instance([Fact("R", ("a",))])
        assert instance.changes_since(0) is None

    def test_log_floor_forces_rebuild(self):
        database = Database()
        database.change_log_limit = 8
        for index in range(40):
            database.add(Fact("R", (f"c{index}",)))
        assert database.changes_since(0) is None  # trimmed past the floor
        recent = database.version - 2
        delta = database.changes_since(recent)
        assert delta is not None and len(delta.added) == 2

    def test_future_version_is_unreconstructable(self):
        database = Database()
        assert database.changes_since(database.version + 1) is None

    def test_empty_delta_at_current_version(self):
        database = Database([Fact("R", ("a",))])
        delta = database.changes_since(database.version)
        assert delta == Delta()


class TestBatch:
    def test_batch_bumps_version_once(self):
        database = Database()
        start = database.version
        with database.batch():
            for index in range(10):
                database.add(Fact("R", (f"c{index}",)))
        assert database.version == start + 1
        delta = database.changes_since(start)
        assert delta is not None and len(delta.added) == 10

    def test_batch_is_visible_inside(self):
        database = Database()
        with database.batch():
            database.add(Fact("R", ("a",)))
            assert Fact("R", ("a",)) in database
            assert database.relation_size("R") == 1

    def test_nested_batches_coalesce(self):
        database = Database()
        start = database.version
        with database.batch():
            database.add(Fact("R", ("a",)))
            with database.batch():
                database.add(Fact("R", ("b",)))
        assert database.version == start + 1

    def test_noop_batch_keeps_version(self):
        database = Database([Fact("R", ("a",))])
        start = database.version
        with database.batch():
            database.add(Fact("R", ("a",)))  # already present
        assert database.version == start

    def test_add_facts_bulk_insert(self):
        database = Database([Fact("R", ("a",))])
        start = database.version
        added = database.add_facts(
            [Fact("R", ("a",)), Fact("R", ("b",)), Fact("S", ("c",)), Fact("R", ("b",))]
        )
        assert added == 2
        assert database.version == start + 1
        assert database.relation_size("R") == 2
        assert database.relation_size("S") == 1

    def test_add_facts_maintains_registered_indexes(self):
        database = Database([Fact("R", ("a", "b"))])
        index = database.index("R", (0,))
        database.add_facts([Fact("R", ("a", "c")), Fact("R", ("d", "e"))])
        assert len(index[("a",)]) == 2
        assert len(database.probe("R", (0,), ("d",))) == 1


def _maintained_chase(database, ontology, depth=None):
    maintainer = ChaseMaintainer(database, ontology, max_null_depth=depth)
    result = chase(database, ontology, max_null_depth=depth, recorder=maintainer)
    maintainer.attach(result)
    return maintainer, result


def _certain_facts(result):
    return {fact for fact in result.instance if not fact.has_null()}


class TestChaseMaintainer:
    ONTOLOGY = "A(x) -> B(x)\nB(x) -> C(x)"

    def test_insertion_delta(self):
        ontology = parse_ontology(self.ONTOLOGY)
        database = Database([Fact("A", ("a",))])
        maintainer, result = _maintained_chase(database, ontology)
        database.add(Fact("A", ("b",)))
        delta = maintainer.apply([Fact("A", ("b",))], [])
        assert Fact("C", ("b",)) in result.instance
        assert Fact("B", ("b",)) in delta.added
        reference = chase(database, ontology)
        assert _certain_facts(result) == _certain_facts(reference)

    def test_deletion_cascades(self):
        ontology = parse_ontology(self.ONTOLOGY)
        database = Database([Fact("A", ("a",)), Fact("A", ("b",))])
        maintainer, result = _maintained_chase(database, ontology)
        database.discard(Fact("A", ("a",)))
        delta = maintainer.apply([], [Fact("A", ("a",))])
        assert Fact("B", ("a",)) not in result.instance
        assert Fact("C", ("a",)) not in result.instance
        assert Fact("C", ("b",)) in result.instance
        assert Fact("C", ("a",)) in delta.removed
        reference = chase(database, ontology)
        assert _certain_facts(result) == _certain_facts(reference)

    def test_deletion_keeps_alternative_justification(self):
        # B(a) is derivable from A(a) and from D(a): deleting one leaves it.
        ontology = parse_ontology("A(x) -> B(x)\nD(x) -> B(x)")
        database = Database([Fact("A", ("a",)), Fact("D", ("a",))])
        maintainer, result = _maintained_chase(database, ontology)
        database.discard(Fact("A", ("a",)))
        maintainer.apply([], [Fact("A", ("a",))])
        assert Fact("B", ("a",)) in result.instance
        reference = chase(database, ontology)
        assert _certain_facts(result) == _certain_facts(reference)

    def test_deleting_base_fact_with_derived_copy_keeps_it(self):
        ontology = parse_ontology("A(x) -> B(x)")
        database = Database([Fact("A", ("a",)), Fact("B", ("a",))])
        maintainer, result = _maintained_chase(database, ontology)
        # B(a) pre-existed, so the A(x) -> B(x) trigger was suppressed with
        # B(a) itself as witness; deleting the base copy must re-fire it.
        database.discard(Fact("B", ("a",)))
        maintainer.apply([], [Fact("B", ("a",))])
        assert Fact("B", ("a",)) in result.instance
        reference = chase(database, ontology)
        assert _certain_facts(result) == _certain_facts(reference)

    def test_suppressed_trigger_refires_with_existential(self):
        ontology = parse_ontology("Researcher(x) -> HasOffice(x, y)")
        database = Database(
            [Fact("Researcher", ("p",)), Fact("HasOffice", ("p", "o1"))]
        )
        depth = 3
        maintainer, result = _maintained_chase(database, ontology, depth=depth)
        assert not result.nulls()  # trigger suppressed by the explicit office
        database.discard(Fact("HasOffice", ("p", "o1")))
        maintainer.apply([], [Fact("HasOffice", ("p", "o1"))])
        offices = [f for f in result.instance if f.relation == "HasOffice"]
        assert len(offices) == 1 and offices[0].has_null()

    def test_insertion_suppresses_nothing_retroactively(self):
        # Adding an explicit office after the chase invented one keeps the
        # invented tree (homomorphically redundant, answers unchanged).
        ontology = parse_ontology("Researcher(x) -> HasOffice(x, y)")
        database = Database([Fact("Researcher", ("p",))])
        maintainer, result = _maintained_chase(database, ontology, depth=3)
        assert result.nulls()
        database.add(Fact("HasOffice", ("p", "o1")))
        maintainer.apply([Fact("HasOffice", ("p", "o1"))], [])
        assert Fact("HasOffice", ("p", "o1")) in result.instance
        reference = chase(database, ontology, max_null_depth=3)
        assert _certain_facts(result) >= _certain_facts(reference)

    def test_mixed_batch_delta(self):
        ontology = parse_ontology(self.ONTOLOGY)
        database = Database([Fact("A", ("a",)), Fact("A", ("b",))])
        maintainer, result = _maintained_chase(database, ontology)
        start = database.version
        with database.batch():
            database.discard(Fact("A", ("a",)))
            database.add(Fact("A", ("c",)))
        delta = database.changes_since(start)
        assert delta is not None
        maintainer.apply_delta(delta)
        reference = chase(database, ontology)
        assert _certain_facts(result) == _certain_facts(reference)

    def test_apply_requires_attached_result(self):
        ontology = parse_ontology(self.ONTOLOGY)
        database = Database([Fact("A", ("a",))])
        maintainer = ChaseMaintainer(database, ontology)
        with pytest.raises(RuntimeError):
            maintainer.apply([], [])


class TestReductionMaintenance:
    QUERY = "q(x, y) :- R(x, y), S(y)"

    def _instance(self, pairs, names):
        from repro.data.instance import Instance

        return Instance(
            [Fact("R", pair) for pair in pairs] + [Fact("S", (n,)) for n in names]
        )

    def test_untouched_relations_keep_state(self):
        instance = self._instance([("a", "b")], ["b"])
        enumerator = CDLinEnumerator(parse_query(self.QUERY), instance)
        before = set(enumerator.enumerate())
        assert enumerator.maintain(instance, {"Unrelated"}) is False
        assert set(enumerator.enumerate()) == before

    def test_insert_updates_answers(self):
        instance = self._instance([("a", "b")], ["b"])
        query = parse_query(self.QUERY)
        enumerator = CDLinEnumerator(query, instance)
        instance.add(Fact("R", ("c", "b")))
        assert enumerator.maintain(instance, {"R"}) is True
        expected = set(CDLinEnumerator(query, instance).enumerate())
        assert set(enumerator.enumerate()) == expected
        assert ("c", "b") in expected

    def test_delete_to_empty_and_back(self):
        instance = self._instance([("a", "b")], ["b"])
        query = parse_query(self.QUERY)
        enumerator = CDLinEnumerator(query, instance)
        instance.discard(Fact("S", ("b",)))
        assert enumerator.maintain(instance, {"S"}) is True
        assert enumerator.is_empty()
        assert set(enumerator.enumerate()) == set()
        instance.add(Fact("S", ("b",)))
        assert enumerator.maintain(instance, {"S"}) is True
        assert set(enumerator.enumerate()) == {("a", "b")}


def _graph_database(vertices=14, edges=30, seed=7):
    return Database(
        Fact("E", edge) for edge in random_graph(vertices, edges, seed=seed)
    )


def _graph_omq():
    return OMQ.from_parts(
        parse_ontology(""),
        parse_query("q(x, y, z) :- E(x, y), E(y, z)"),
        name="Q_path",
    )


def _random_mutation(database, rng, counter):
    """One random mutation: add a schema-shaped fact or discard an existing one."""
    facts = sorted(database.facts(), key=repr)
    if facts and rng.random() < 0.45:
        database.discard(facts[rng.randrange(len(facts))])
    else:
        template = facts[rng.randrange(len(facts))] if facts else Fact("E", ("a", "b"))
        if rng.random() < 0.5 and template.arity > 0:
            # Fresh first argument: a genuinely new entity.
            args = (f"new{counter}",) + template.args[1:]
        else:
            # Rewire existing constants into a new combination.
            pool = sorted({a for f in facts for a in f.args}) or ["a"]
            args = tuple(pool[rng.randrange(len(pool))] for _ in template.args)
        database.add(Fact(template.relation, args))


class TestMetamorphic:
    """Warm incremental engines must track cold evaluation exactly."""

    WORKLOADS = [
        pytest.param(
            lambda: (university_omq(), generate_university_database(30, seed=1)),
            id="university",
        ),
        pytest.param(
            lambda: (office_omq(), generate_office_database(30, seed=2)),
            id="office",
        ),
        pytest.param(lambda: (_graph_omq(), _graph_database()), id="graph"),
    ]

    @pytest.mark.parametrize("setup", WORKLOADS)
    def test_interleaved_mutations_match_cold_engine(self, setup):
        omq, database = setup()
        engine = QueryEngine(
            omq.ontology, database, incremental_fallback_ratio=1.0
        )
        engine.execute(omq.query)  # warm the materialization
        rng = random.Random(0xC0FFEE)
        for step in range(24):
            if step % 5 == 4:
                with database.batch():
                    for offset in range(rng.randrange(2, 6)):
                        _random_mutation(database, rng, f"{step}_{offset}")
            else:
                _random_mutation(database, rng, step)
            warm = sorted(engine.execute(omq.query))
            cold = sorted(set(CompleteAnswerEnumerator(omq, database)))
            assert warm == cold, f"divergence after step {step}"
        stats = engine.stats
        assert stats.chase_builds == 1, "incremental engine must never re-chase"
        assert stats.chase_increments > 0
        assert stats.invalidations == 0

    @pytest.mark.parametrize("setup", WORKLOADS)
    def test_cursor_and_batch_follow_mutations(self, setup):
        omq, database = setup()
        engine = QueryEngine(
            omq.ontology, database, incremental_fallback_ratio=1.0
        )
        cursor = engine.open(omq.query)
        rng = random.Random(31337)
        for step in range(8):
            _random_mutation(database, rng, f"c{step}")
            cursor.restart()
            cold = set(CompleteAnswerEnumerator(omq, database))
            assert set(cursor.fetchall()) == cold
            (batched,) = engine.execute_batch([omq.query])
            assert batched == cold
        assert engine.stats.chase_builds == 1


class TestSnapshotIsolation:
    def test_inflight_enumeration_survives_maintenance(self):
        # Maintenance swaps containers instead of mutating them, so an
        # enumeration started before a delta finishes over the consistent
        # pre-delta snapshot while new enumerations see the new state.
        omq = university_omq()
        database = generate_university_database(60, seed=21)
        engine = QueryEngine(omq.ontology, database)
        before = engine.execute(omq.query)
        cursor = engine.open(omq.query)
        first = cursor.fetchmany(3)
        database.add(Fact("HasAdvisor", ("snapshot_s", "prof0")))
        database.add(Fact("WorksFor", ("prof0", "dept0")))
        after = engine.execute(omq.query)  # triggers in-place maintenance
        assert engine.stats.chase_increments >= 1
        stale_rest = cursor.fetchall()  # continues over the old snapshot
        assert set(first) | set(stale_rest) == before
        cursor.restart()  # re-resolves state: now sees the new answers
        assert set(cursor.fetchall()) == after
        assert ("snapshot_s", "prof0", "dept0") in after


class TestAcceptance:
    """The ISSUE acceptance scenario: warm engine, ≤1% mutation, no rebuild."""

    def test_one_percent_delta_no_rebuild_and_identical_answers(self):
        omq = university_omq()
        database = generate_university_database(400, seed=11)
        engine = QueryEngine(omq.ontology, database)
        engine.execute(omq.query)
        materialization = engine._materialization(database)
        assert materialization.chase_rebuilds == 1

        budget = len(database) // 100
        with database.batch():
            for index in range(max(1, budget // 2)):
                database.add(Fact("HasAdvisor", (f"late{index}", "prof0")))
            victims = [f for f in sorted(database.relation("HasAdvisor"), key=repr)]
            for victim in victims[: max(1, budget // 2)]:
                database.discard(victim)

        warm = engine.execute(omq.query)
        assert materialization.chase_rebuilds == 1  # no full chase rebuild
        assert materialization.chase_increments == 1

        cold_engine = QueryEngine(omq.ontology, database)
        assert warm == cold_engine.execute(omq.query)
        assert sorted(warm) == sorted(set(CompleteAnswerEnumerator(omq, database)))

    def test_default_depth_consistency_after_updates(self):
        # The maintained chase must stay at the depth the plan compiled.
        omq = office_omq()
        database = generate_office_database(25, seed=5)
        engine = QueryEngine(omq.ontology, database)
        engine.execute(omq.query)
        materialization = engine._materialization(database)
        depth = materialization.chase.null_depth_bound
        assert depth == default_null_depth(omq.ontology, omq.query)
        database.add(Fact("Researcher", ("fresh",)))
        engine.execute(omq.query)
        assert materialization.chase.null_depth_bound == depth


class TestDeltaWire:
    """The JSON wire format the server's mutation endpoint speaks."""

    def test_roundtrip_is_identity(self):
        from repro.incremental import apply_delta

        delta = Delta(
            added=frozenset({Fact("R", ("a", "b")), Fact("S", ("c",))}),
            removed=frozenset({Fact("R", ("x", "y"))}),
        )
        wire = delta.to_wire()
        assert wire["add"] == sorted(wire["add"])  # deterministic order
        back = Delta.from_wire(wire)
        assert back.added == delta.added and back.removed == delta.removed

    @pytest.mark.parametrize(
        "payload",
        [
            {"add": "not-a-list"},
            {"add": [["R"]]},  # missing argument list
            {"add": [["R", "ab"]]},  # args must be a list
            {"add": [[42, ["a"]]]},  # relation must be a string
            {"remove": [["R", ["a", 7]]]},  # terms must be strings
            {"bogus": []},
        ],
    )
    def test_malformed_payloads_raise_value_error(self, payload):
        with pytest.raises(ValueError):
            Delta.from_wire(payload)

    def test_apply_delta_is_one_batch_and_reports_effective_change(self):
        from repro.incremental import apply_delta

        database = Database([Fact("R", ("a", "b")), Fact("R", ("x", "y"))])
        version_before = database.version
        delta = Delta.from_wire(
            {
                "add": [["R", ["a", "b"]], ["S", ["new"]]],  # one is a no-op
                "remove": [["R", ["x", "y"]], ["R", ["gone", "gone"]]],
            }
        )
        added, removed = apply_delta(database, delta)
        assert (added, removed) == (1, 1)
        # One coalesced batch: exactly one version step for the whole delta.
        assert database.version == version_before + 1
