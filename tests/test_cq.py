"""Unit tests for the CQ data model, parser and structural accessors."""

import pytest

from repro.cq import Atom, ConjunctiveQuery, Variable, parse_atom, parse_query
from repro.cq.atoms import is_variable
from repro.cq.query import QueryError
from repro.data.facts import Fact

X, Y, Z, U = Variable("x"), Variable("y"), Variable("z"), Variable("u")


class TestAtoms:
    def test_variables_and_constants(self):
        atom = Atom("R", (X, "a", Y))
        assert atom.variables() == {X, Y}
        assert atom.constants() == {"a"}
        assert atom.arity == 3

    def test_substitute(self):
        atom = Atom("R", (X, Y))
        substituted = atom.substitute({X: "a"})
        assert substituted == Atom("R", ("a", Y))

    def test_to_fact(self):
        atom = Atom("R", (X, "c"))
        assert atom.to_fact({X: "a"}) == Fact("R", ("a", "c"))

    def test_to_fact_missing_variable(self):
        with pytest.raises(KeyError):
            Atom("R", (X, Y)).to_fact({X: "a"})

    def test_matches(self):
        atom = Atom("R", (X, Y))
        assert atom.matches(Fact("R", ("a", "b")))
        assert not atom.matches(Fact("R", ("a",)))
        assert not atom.matches(Fact("S", ("a", "b")))

    def test_is_variable(self):
        assert is_variable(X)
        assert not is_variable("a")


class TestParser:
    def test_parse_atom_with_constants(self):
        atom = parse_atom('Edge(x, "Main", 3)')
        assert atom.relation == "Edge"
        assert atom.args == (X, "Main", 3)

    def test_parse_atom_uppercase_constant(self):
        atom = parse_atom("Lives(x, Paris)")
        assert atom.args == (X, "Paris")

    def test_parse_nullary_atom(self):
        assert parse_atom("Flag()").arity == 0

    def test_parse_query_basic(self):
        query = parse_query("q(x, y) :- R(x, z), S(z, y)")
        assert query.arity == 2
        assert query.answer_variables == (X, Y)
        assert len(query.atoms) == 2

    def test_parse_query_boolean(self):
        query = parse_query("q() :- R(x, y)")
        assert query.is_boolean()

    def test_parse_query_requires_separator(self):
        with pytest.raises(QueryError):
            parse_query("q(x) R(x)")

    def test_parse_query_rejects_constant_in_head(self):
        with pytest.raises(QueryError):
            parse_query("q(Paris) :- R(Paris, y)")

    def test_parse_query_negative_integer_constant(self):
        query = parse_query("q(x) :- Score(x, -3)")
        atom = next(iter(query.atoms))
        assert -3 in atom.constants()

    def test_parse_bad_atom(self):
        with pytest.raises(QueryError):
            parse_atom("R(x")


class TestConjunctiveQuery:
    def make_query(self) -> ConjunctiveQuery:
        return parse_query("q(x, y) :- R(x, z), S(z, y), A(x)")

    def test_answer_variable_must_occur(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery((X,), [Atom("R", (Y, Z))])

    def test_variable_sets(self):
        query = self.make_query()
        assert query.variables() == {X, Y, Z}
        assert query.quantified_variables() == {Z}
        assert not query.is_full()

    def test_full_query(self):
        query = parse_query("q(x, y) :- R(x, y)")
        assert query.is_full()

    def test_self_join_freeness(self):
        assert self.make_query().is_self_join_free()
        query = parse_query("q(x) :- R(x, y), R(y, x)")
        assert not query.is_self_join_free()

    def test_relations_and_schema(self):
        query = self.make_query()
        assert query.relations() == {"R", "S", "A"}
        assert query.schema().arity("A") == 1

    def test_size(self):
        query = parse_query("q(x) :- R(x, y)")
        assert query.size() == 1 + (1 + 2)

    def test_gaifman_graph(self):
        query = self.make_query()
        graph = query.gaifman_graph()
        assert graph[Z] == {X, Y}
        assert Y not in graph[X]

    def test_connected_components(self):
        query = parse_query("q(x, y) :- R(x, a), S(y, b)")
        components = query.connected_components()
        assert len(components) == 2
        assert {c.arity for c in components} == {1}

    def test_components_connected_via_constant(self):
        query = parse_query("q(x, y) :- R(x, Hub), S(y, Hub)")
        assert query.is_connected()

    def test_canonical_database(self):
        query = parse_query("q(x) :- R(x, y), A(x)")
        canonical = query.canonical_database()
        assert len(canonical) == 2
        assert canonical.is_guarded_set({("var", "x"), ("var", "y")})

    def test_substitute_drops_grounded_head_variables(self):
        query = parse_query("q(x, y) :- R(x, y)")
        grounded = query.substitute({X: "a"})
        assert grounded.answer_variables == (Y,)
        assert Atom("R", ("a", Y)) in grounded.atoms

    def test_boolean_version(self):
        assert self.make_query().boolean_version().is_boolean()

    def test_drop_atoms(self):
        query = self.make_query()
        atom = next(a for a in query.atoms if a.relation == "S")
        smaller = query.drop_atoms([atom])
        assert len(smaller.atoms) == 2
        assert smaller.answer_variables == (X,)

    def test_deduplicated_head(self):
        query = parse_query("q(x, x, y) :- R(x, y)")
        reduced, positions = query.deduplicated_head()
        assert reduced.answer_variables == (X, Y)
        assert positions == [0, 0, 1]

    def test_atoms_with(self):
        query = self.make_query()
        assert {a.relation for a in query.atoms_with(X)} == {"R", "A"}
