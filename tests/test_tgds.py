"""Tests for TGDs, guardedness, ELI, ontologies and simulations."""

import pytest

from repro.cq import Variable, parse_query
from repro.cq.atoms import Atom
from repro.data import Fact, Instance
from repro.tgds import (
    TGD,
    TGDError,
    Ontology,
    is_eli_tgd,
    is_eliq,
    largest_simulation,
    parse_ontology,
    parse_tgd,
    simulates,
)

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestTGD:
    def test_frontier_and_existentials(self):
        tgd = parse_tgd("Researcher(x) -> HasOffice(x, y)")
        assert tgd.frontier_variables() == {X}
        assert tgd.existential_variables() == {Y}
        assert not tgd.is_full()

    def test_full_tgd(self):
        tgd = parse_tgd("HasOffice(x, y) -> Office(y)")
        assert tgd.is_full()
        assert tgd.existential_variables() == set()

    def test_guardedness(self):
        assert parse_tgd("R(x, y) -> S(x, y)").is_guarded()
        assert parse_tgd("A(x), B(y) -> R(x, y)").is_guarded() is False
        assert parse_tgd("R(x, y), A(x) -> S(y)").is_guarded()

    def test_true_body_is_guarded(self):
        tgd = parse_tgd("true -> Seed(x)")
        assert tgd.is_guarded()
        assert tgd.body == frozenset()

    def test_guard_atom(self):
        tgd = parse_tgd("R(x, y), A(x) -> S(x)")
        guard = tgd.guard()
        assert guard is not None and guard.relation == "R"

    def test_empty_head_rejected(self):
        with pytest.raises(TGDError):
            TGD([Atom("R", (X, Y))], [])

    def test_constants_rejected(self):
        with pytest.raises(TGDError):
            TGD([Atom("R", (X, "a"))], [Atom("S", (X,))])

    def test_body_and_head_queries(self):
        tgd = parse_tgd("R(x, y) -> S(x, z)")
        assert tgd.body_query().answer_variables == (X,)
        assert tgd.head_query().answer_variables == (X,)

    def test_relations_and_arity(self):
        tgd = parse_tgd("R(x, y) -> S(x), T(x, y, y)")
        assert tgd.relations() == {"R", "S", "T"}
        assert tgd.max_arity() == 3

    def test_parse_requires_arrow(self):
        with pytest.raises(TGDError):
            parse_tgd("R(x, y), S(x, y)")


class TestELI:
    def test_office_tgds_are_eli(self):
        for text in (
            "Researcher(x) -> HasOffice(x, y)",
            "HasOffice(x, y) -> Office(y)",
            "Office(x) -> InBuilding(x, y)",
        ):
            assert is_eli_tgd(parse_tgd(text)), text

    def test_two_frontier_variables_is_not_eli(self):
        assert not is_eli_tgd(parse_tgd("OfficeMate(x, y) -> HasOffice(x, z), HasOffice(y, z)"))

    def test_high_arity_is_not_eli(self):
        assert not is_eli_tgd(parse_tgd("T(x, y, z) -> A(x)"))

    def test_reflexive_loop_is_not_eli(self):
        assert not is_eli_tgd(parse_tgd("A(x) -> R(x, x)"))

    def test_multi_edge_head_is_not_eli(self):
        assert not is_eli_tgd(parse_tgd("A(x) -> R(x, y), S(x, y)"))

    def test_disconnected_head_is_not_eli(self):
        assert not is_eli_tgd(parse_tgd("A(x) -> B(x), C(y)"))

    def test_cyclic_head_is_not_eli(self):
        assert not is_eli_tgd(
            parse_tgd("A(x) -> R(x, y), S(y, z), T(z, x)")
        )

    def test_inverse_role_is_eli(self):
        assert is_eli_tgd(parse_tgd("A(x) -> R(y, x), B(y)"))

    def test_eliq(self):
        assert is_eliq(parse_query("q(x) :- R(x, y), A(y), S(y, z)"))
        assert not is_eliq(parse_query("q(x, y) :- R(x, y)"))
        assert not is_eliq(parse_query("q(x) :- R(x, y), S(y, x)"))
        assert not is_eliq(parse_query('q(x) :- R(x, "a")'))


class TestOntology:
    def test_parse_ontology_skips_comments(self):
        ontology = parse_ontology(
            """
            # a comment
            Researcher(x) -> HasOffice(x, y)

            % another comment
            HasOffice(x, y) -> Office(y)
            """
        )
        assert len(ontology) == 2

    def test_guarded_and_eli_flags(self):
        office = parse_ontology(
            "Researcher(x) -> HasOffice(x, y)\nHasOffice(x, y) -> Office(y)"
        )
        assert office.is_guarded() and office.is_eli()
        unguarded = parse_ontology("A(x), B(y) -> R(x, y)")
        assert not unguarded.is_guarded()

    def test_schema_and_relations(self):
        ontology = parse_ontology("R(x, y) -> A(x)")
        assert ontology.relations() == {"R", "A"}
        assert ontology.schema().arity("R") == 2

    def test_empty_ontology(self):
        ontology = Ontology(())
        assert ontology.is_empty()
        assert ontology.is_guarded() and ontology.is_eli()
        assert ontology.max_arity() == 0

    def test_radius_measures(self):
        ontology = parse_ontology("A(x) -> R(x, y), B(y)\nR(x, y), B(y) -> C(x)")
        assert ontology.max_head_radius() == 2
        assert ontology.max_body_radius() == 2


class TestSimulation:
    def test_simulation_on_paths(self):
        source = Instance([Fact("R", ("a", "b")), Fact("A", ("b",))])
        target = Instance(
            [Fact("R", ("u", "v")), Fact("A", ("v",)), Fact("R", ("v", "w"))]
        )
        assert simulates(source, "a", target, "u")
        assert not simulates(target, "v", source, "b")  # v has an outgoing R edge

    def test_unary_labels_must_be_preserved(self):
        source = Instance([Fact("A", ("a",))])
        target = Instance([Fact("B", ("b",))])
        assert not simulates(source, "a", target, "b")

    def test_largest_simulation_is_a_simulation(self):
        source = Instance([Fact("R", ("a", "b")), Fact("R", ("b", "c"))])
        target = Instance([Fact("R", ("x", "y")), Fact("R", ("y", "z"))])
        relation = largest_simulation(source, target)
        assert ("a", "x") in relation
        assert ("c", "z") in relation

    def test_rejects_high_arity(self):
        with pytest.raises(ValueError):
            largest_simulation(Instance([Fact("T", ("a", "b", "c"))]), Instance())

    def test_simulation_preserves_eliq_satisfaction(self):
        # Lemma A.4: if (I, c) <= (J, d) and c satisfies an ELIQ, so does d.
        from repro.cq.homomorphism import evaluate

        eliq = parse_query("q(x) :- R(x, y), A(y)")
        source = Instance([Fact("R", ("c", "c1")), Fact("A", ("c1",))])
        target = Instance(
            [Fact("R", ("d", "d1")), Fact("A", ("d1",)), Fact("B", ("d",))]
        )
        assert simulates(source, "c", target, "d")
        assert ("c",) in evaluate(eliq, source)
        assert ("d",) in evaluate(eliq, target)
