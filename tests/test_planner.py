"""Unit tests for the cost-based planner and its satellite fixes.

Covers the statistics collector (interned + term stores, version-keyed
caching), the cardinality/cost model, join-tree tie and candidate
enumeration, the cheapest-plan choice and its tie-break contract, the
per-edge semi-join kernel decision, the ``ExecutionOptions`` validation,
the fallback-ratio semantics (``0.0`` = always rebuild) and auto-tuning,
the engine defaults derived from ``ExecutionOptions``, and the
``LatencyHistogram`` boundary semantics.
"""

from __future__ import annotations

import math

import pytest

from repro.config import ExecutionOptions, use_planner
from repro.cq.atoms import Atom, Variable
from repro.cq.jointree import build_join_tree, enumerate_join_trees
from repro.cq.parser import parse_query
from repro.data import Database, Fact, use_interning
from repro.data.columns import ColumnarRelation
from repro.engine import LatencyHistogram, QueryEngine
from repro.engine.engine import EngineStats
from repro.engine.materialization import Materialization
from repro.planner import (
    InstanceStatistics,
    RelationStatistics,
    choose_plan,
    choose_semijoin_kernel,
    collect_statistics,
    estimate_atom_cardinality,
    estimate_decomposition,
    plan_candidates,
    planned_kernel,
    semijoin_planning,
    statistics_for,
)
from repro.tgds.ontology import Ontology
from repro.yannakakis.decomposition import (
    decompose_free_connex,
    enumerate_free_connex_decompositions,
)

EMPTY = Ontology([], name="empty")

#: A query whose q⁺ has several maximum-weight join trees, hence several
#: structurally distinct free-connex decompositions.
TIE_QUERY = "q(x, y) :- R(x, z), S(x, y), T(y, w)"


def _tie_facts(n: int = 40) -> list[Fact]:
    return [
        fact
        for i in range(n)
        for fact in (
            Fact("R", (f"a{i % 5}", f"b{i}")),
            Fact("S", (f"a{i % 5}", f"c{i % 3}")),
            Fact("T", (f"c{i % 3}", f"d{i}")),
        )
    ]


# -- statistics ------------------------------------------------------------


def test_collect_statistics_counts_and_distincts():
    database = Database(_tie_facts())
    statistics = collect_statistics(database)
    assert statistics.total_facts == len(database)
    r = statistics.get("R", 2)
    assert r is not None
    assert r.cardinality == 40
    assert r.distinct == (5, 40)
    assert statistics.get("S", 2).distinct == (5, 3)
    assert statistics.cardinality("missing", 2) == 0
    assert statistics.get("missing", 2) is None


def test_statistics_agree_across_stores():
    facts = _tie_facts()
    with use_interning(True):
        interned = collect_statistics(Database(facts))
    with use_interning(False):
        term_store = collect_statistics(Database(facts))
    assert set(interned.relations) == set(term_store.relations)
    for key, stats in interned.relations.items():
        assert term_store.relations[key].cardinality == stats.cardinality
        assert term_store.relations[key].distinct == stats.distinct


def test_statistics_cached_until_version_bump():
    database = Database(_tie_facts())
    first = statistics_for(database)
    assert statistics_for(database) is first
    database.add(Fact("R", ("fresh", "fresh")))
    second = statistics_for(database)
    assert second is not first
    assert second.version == database.version
    assert second.get("R", 2).cardinality == 41


def test_relation_statistics_boundaries():
    stats = RelationStatistics(relation="R", arity=2, cardinality=100, distinct=(10, 0))
    assert stats.distinct_at(0) == 10
    assert stats.distinct_at(1) == 1  # floor at 1 even for a zeroed column
    assert stats.distinct_at(7) == 100  # out of range: fall back to cardinality
    assert stats.selectivity(0) == pytest.approx(0.1)


# -- cost model ------------------------------------------------------------


def _stats(**relations: RelationStatistics) -> InstanceStatistics:
    return InstanceStatistics(
        version=0,
        total_facts=sum(stats.cardinality for stats in relations.values()),
        relations={
            (stats.relation, stats.arity): stats for stats in relations.values()
        },
    )


def test_estimate_atom_cardinality_selectivities():
    statistics = _stats(
        r=RelationStatistics(relation="R", arity=2, cardinality=100, distinct=(10, 50))
    )
    x, y = Variable("x"), Variable("y")
    assert estimate_atom_cardinality(Atom("R", (x, y)), statistics) == 100.0
    # A constant position scales by 1/distinct of that position.
    assert estimate_atom_cardinality(Atom("R", ("c", y)), statistics) == pytest.approx(10.0)
    # A repeated variable applies the second position's selectivity.
    assert estimate_atom_cardinality(Atom("R", (x, x)), statistics) == pytest.approx(2.0)
    # Unknown relations estimate to zero rows.
    assert estimate_atom_cardinality(Atom("Z", (x,)), statistics) == 0.0


def test_estimate_decomposition_tracks_data():
    query = parse_query(TIE_QUERY)
    database = Database(_tie_facts())
    statistics = collect_statistics(database)
    default = decompose_free_connex(query)
    cost, rows = estimate_decomposition(default, statistics)
    assert cost > 0.0
    assert rows >= 0


# -- join-tree tie and candidate enumeration -------------------------------


def test_enumerate_join_trees_first_is_default_and_all_valid():
    atoms = list(parse_query(TIE_QUERY).atoms)
    trees = enumerate_join_trees(atoms)
    assert trees, "at least the default tree"
    default = build_join_tree(atoms)
    assert set(trees[0].edges()) == set(default.edges())
    seen = set()
    for tree in trees:
        assert tree.is_valid()
        edge_set = frozenset(frozenset((p, c)) for p, c in tree.edges())
        assert edge_set not in seen, "trees must be structurally distinct"
        seen.add(edge_set)


def test_enumerate_free_connex_decompositions_distinct_shapes():
    query = parse_query(TIE_QUERY)
    decompositions = enumerate_free_connex_decompositions(query)
    assert len(decompositions) >= 2
    shapes = {
        tuple(
            sorted(
                (component.root.relation, len(component.atoms))
                for component in decomposition.components
            )
        )
        for decomposition in decompositions
    }
    assert len(shapes) >= 2


def test_plan_candidates_default_first_and_deduplicated():
    query = parse_query(TIE_QUERY)
    default = decompose_free_connex(query)
    candidates = plan_candidates(query, default=default)
    assert candidates[0] is default
    assert len(candidates) >= 2
    # Re-running with the enumeration's own first tree as the default must
    # not produce a duplicate entry.
    assert len(plan_candidates(query, default=candidates[1])) == len(candidates)


# -- plan choice -----------------------------------------------------------


def test_choose_plan_picks_cheapest_and_records_all():
    query = parse_query(TIE_QUERY)
    database = Database(_tie_facts())
    candidates = plan_candidates(query, default=decompose_free_connex(query))
    choice = choose_plan(candidates, database)
    assert choice is not None
    assert len(choice.candidates) == len(candidates)
    assert choice.chosen.cost == min(candidate.cost for candidate in choice.candidates)
    assert choice.statistics_version == database.version
    report = choice.as_dict()
    assert report["chosen"] == choice.chosen.index
    assert len(report["candidates"]) == len(candidates)


def test_choose_plan_ties_break_to_default():
    query = parse_query(TIE_QUERY)
    database = Database(_tie_facts())
    default = decompose_free_connex(query)
    # Two copies of the same decomposition cost identically: index 0 wins.
    choice = choose_plan([default, default], database)
    assert choice is not None
    assert choice.chosen.index == 0
    assert choose_plan([], database) is None


# -- semi-join kernel decision ---------------------------------------------


def test_choose_semijoin_kernel_thresholds():
    assert choose_semijoin_kernel(10, 100_000) == "sorted"
    assert choose_semijoin_kernel(100_000, 10) == "hash"
    assert choose_semijoin_kernel(10, 255) == "hash"  # below the size floor
    assert choose_semijoin_kernel(100, 1_000) == "hash"  # below the ratio
    assert choose_semijoin_kernel(0, 256) == "sorted"  # empty probe side


def test_planned_kernel_only_inside_scope():
    assert planned_kernel(10, 100_000) == "hash"
    with semijoin_planning():
        assert planned_kernel(10, 100_000) == "sorted"
        assert planned_kernel(100_000, 10) == "hash"
    assert planned_kernel(10, 100_000) == "hash"


def test_filter_by_keys_sorted_matches_hash_kernel():
    rows = [(i % 7, i) for i in range(50)]
    store = ColumnarRelation(2, rows)
    for keys in (set(), {(1,), (3,)}, {(i,) for i in range(100)}):
        assert set(store.filter_by_keys_sorted(0, keys)) == set(
            store.filter_by_keys((0,), keys)
        )
    assert store.filter_by_keys_sorted(0, set()) == []


# -- ExecutionOptions validation (satellite) -------------------------------


def test_execution_options_validation():
    ExecutionOptions()  # defaults are valid
    ExecutionOptions(incremental_fallback_ratio=0.0, plan_cache_size=1, workers=1)
    ExecutionOptions(incremental_fallback_ratio=1.0, workers=None, planner=False)
    with pytest.raises(ValueError):
        ExecutionOptions(plan_cache_size=0)
    with pytest.raises(ValueError):
        ExecutionOptions(plan_cache_size=16.0)
    with pytest.raises(ValueError):
        ExecutionOptions(workers=0)
    with pytest.raises(ValueError):
        ExecutionOptions(incremental_fallback_ratio=float("nan"))
    with pytest.raises(ValueError):
        ExecutionOptions(incremental_fallback_ratio=-0.1)
    with pytest.raises(ValueError):
        ExecutionOptions(incremental_fallback_ratio=1.5)
    with pytest.raises(ValueError):
        ExecutionOptions(incremental_fallback_ratio=True)


def test_engine_defaults_derive_from_execution_options():
    defaults = ExecutionOptions()
    engine = QueryEngine(EMPTY)
    assert engine.strict == defaults.strict
    assert engine.incremental == defaults.incremental
    assert engine.incremental_fallback_ratio == defaults.incremental_fallback_ratio
    assert engine.codegen == defaults.codegen
    assert engine.workers == defaults.workers
    assert engine.planner == defaults.planner
    assert engine._plan_cache_size == defaults.plan_cache_size


# -- fallback ratio semantics and auto-tuning (satellite) ------------------


def test_materialization_rejects_bad_fallback_ratio():
    database = Database([])
    with pytest.raises(ValueError):
        Materialization(EMPTY, database, fallback_ratio=-0.1)
    with pytest.raises(ValueError):
        Materialization(EMPTY, database, fallback_ratio=float("nan"))
    with pytest.raises(ValueError):
        Materialization(EMPTY, database, fallback_ratio=float("inf"))
    with pytest.raises(ValueError):
        Materialization(EMPTY, database, fallback_ratio=True)


def test_fallback_ratio_zero_always_rebuilds():
    database = Database(_tie_facts())
    query = parse_query(TIE_QUERY)
    engine = QueryEngine(
        EMPTY, database, incremental=True, incremental_fallback_ratio=0.0
    )
    before = engine.execute(query)
    database.add(Fact("R", ("a0", "zz")))
    after = engine.execute(query)
    assert before <= after
    stats = engine.snapshot()
    # Honouring 0.0 means no delta is ever maintained: the mutation forced
    # a full rebuild instead of a 1-row increment.
    assert stats.chase_increments == 0
    assert stats.incremental_fallbacks >= 1
    assert stats.chase_builds == 2


def test_effective_fallback_ratio_tuning():
    database = Database(_tie_facts())
    materialization = Materialization(
        EMPTY, database, fallback_ratio=0.1, planner=True
    )
    assert materialization.effective_fallback_ratio() == 0.1
    materialization._record_over_budget()
    assert materialization.effective_fallback_ratio() == pytest.approx(0.15)
    for _ in range(20):
        materialization._record_over_budget()
    assert materialization.effective_fallback_ratio() == Materialization.TUNE_CAP
    for _ in range(100):
        materialization._record_increment()
    # Decay converges back to the configured base exactly (not asymptotically).
    assert materialization.effective_fallback_ratio() == 0.1
    assert list(materialization.fallback_history)[-1] is True


def test_tuning_disabled_for_zero_ratio_and_planner_off():
    database = Database(_tie_facts())
    zero = Materialization(EMPTY, database, fallback_ratio=0.0, planner=True)
    zero._record_over_budget()
    assert zero.effective_fallback_ratio() == 0.0
    off = Materialization(EMPTY, database, fallback_ratio=0.1, planner=False)
    off._record_over_budget()
    assert off.effective_fallback_ratio() == 0.1


# -- engine integration ----------------------------------------------------


def test_engine_planner_counters_and_identical_answers():
    database = Database(_tie_facts())
    query = parse_query(TIE_QUERY)
    with use_planner(True):
        planned = QueryEngine(EMPTY, database)
        planned_answers = planned.execute(query)
        stats = planned.snapshot()
        assert stats.planner_choices == 1
        assert stats.planner_candidates >= 2
        assert stats.planner_actual_rows > 0
        prepared = planned.prepare(query)
        choice = prepared.last_plan_choice
        assert choice is not None
        assert choice.actual_rows is not None
    with use_planner(False):
        unplanned = QueryEngine(EMPTY, database)
        assert unplanned.execute(query) == planned_answers
        assert unplanned.snapshot().planner_choices == 0


def test_engine_planner_kwarg_beats_process_default():
    database = Database(_tie_facts())
    query = parse_query(TIE_QUERY)
    with use_planner(True):
        engine = QueryEngine(EMPTY, database, planner=False)
        engine.execute(query)
        assert engine.snapshot().planner_choices == 0


def test_engine_stats_schema_includes_planner_fields():
    snapshot = EngineStats.zero().as_dict()
    for key in (
        "planner_choices",
        "planner_candidates",
        "planner_estimated_rows",
        "planner_actual_rows",
    ):
        assert key in snapshot
        assert snapshot[key] == 0


def test_explain_plan_summary_includes_plan_choice():
    from repro.obs.explain import plan_summary

    database = Database(_tie_facts())
    query = parse_query(TIE_QUERY)
    with use_planner(True):
        engine = QueryEngine(EMPTY, database)
        engine.execute(query)
        summary = plan_summary(engine.prepare(query))
    assert "plan_choice" in summary
    assert summary["plan_choice"]["candidates"]
    assert summary["plan_choice"]["actual_rows"] is not None


# -- LatencyHistogram boundary semantics (satellite) -----------------------


def test_histogram_exact_bound_lands_in_le_bucket():
    histogram = LatencyHistogram(bounds=(0.001, 0.01, 0.1))
    histogram.observe(0.01)  # exactly on a bound: le-inclusive
    snapshot = histogram.snapshot()
    by_bound = {bucket["le"]: bucket["count"] for bucket in snapshot["buckets"]}
    assert by_bound[0.001] == 0
    assert by_bound[0.01] == 1
    assert by_bound[0.1] == 1


def test_histogram_single_observation_p50():
    histogram = LatencyHistogram(bounds=(0.001, 0.01, 0.1))
    histogram.observe(0.004)
    # rank = max(1, round(0.5 * 1)) = 1, capped by the exact max: the single
    # observation is reported exactly, not as its bucket's upper bound.
    assert histogram.percentile(0.5) == pytest.approx(0.004)


def test_histogram_overflow_reports_exact_max():
    histogram = LatencyHistogram(bounds=(0.001, 0.01))
    histogram.observe(5.0)
    histogram.observe(7.5)
    assert histogram.percentile(0.99) == 7.5
    assert histogram.percentile(1.0) == 7.5
    snapshot = histogram.snapshot()
    assert snapshot["max_ms"] == 7500.0


def test_histogram_snapshot_buckets_are_cumulative_to_count():
    histogram = LatencyHistogram(bounds=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.005, 0.05, 0.5, 5.0):
        histogram.observe(value)
    snapshot = histogram.snapshot()
    buckets = snapshot["buckets"]
    assert buckets[-1]["le"] == "+Inf"
    assert buckets[-1]["count"] == snapshot["count"] == 5
    counts = [bucket["count"] for bucket in buckets]
    assert counts == sorted(counts), "bucket counts must be cumulative"


def test_histogram_empty_and_invalid_fraction():
    histogram = LatencyHistogram(bounds=(0.001,))
    assert histogram.percentile(0.5) == 0.0
    with pytest.raises(ValueError):
        histogram.percentile(1.5)
    with pytest.raises(ValueError):
        LatencyHistogram(bounds=())


def test_nan_never_reaches_budget_math():
    # The engine rejects NaN before any budget computation can silently
    # swallow it (NaN comparisons are all False).
    assert math.isnan(float("nan"))
    with pytest.raises(ValueError):
        QueryEngine(EMPTY, incremental_fallback_ratio=float("nan"))
