"""Tests for the OMQ enumerators: Theorems 4.1(1), 5.2, 6.1 and Prop. 2.1."""

import random

import pytest

from repro import Database, Fact, parse_ontology, parse_query
from repro.baselines import (
    naive_certain_answers,
    naive_minimal_partial_answers,
    naive_minimal_partial_answers_multi,
)
from repro.core import (
    OMQ,
    WILDCARD,
    CompleteAnswerEnumerator,
    MinimalPartialAnswerEnumerator,
    MultiWildcardEnumerator,
    Wildcard,
)
from repro.core.progress import PartialAnswerEnumerator
from repro.workloads import (
    generate_university_database,
    office_omq,
    university_omq,
)
from tests.conftest import random_office_database


class TestCompleteAnswerEnumeration:
    def test_office_example(self, office_omq, office_database):
        answers = list(CompleteAnswerEnumerator(office_omq, office_database))
        assert answers == [("mary", "room1", "main1")]

    def test_no_duplicates_and_matches_naive(self, office_omq):
        rng = random.Random(3)
        for _ in range(10):
            database = random_office_database(rng)
            answers = list(CompleteAnswerEnumerator(office_omq, database))
            assert len(answers) == len(set(answers))
            assert set(answers) == naive_certain_answers(office_omq, database)

    def test_rejects_non_free_connex_query(self):
        ontology = parse_ontology("R(x, y) -> A(x)")
        query = parse_query("q(x, y) :- R(x, z), S(z, y)")
        omq = OMQ.from_parts(ontology, query)
        with pytest.raises(Exception):
            CompleteAnswerEnumerator(omq, Database([Fact("R", ("a", "b"))]))

    def test_strict_false_allows_structurally_fine_queries(self):
        ontology = parse_ontology("R(x, y) -> A(x)")
        query = parse_query("q(x, y) :- R(x, y), A(x)")
        omq = OMQ.from_parts(ontology, query)
        database = Database([Fact("R", ("a", "b"))])
        answers = set(CompleteAnswerEnumerator(omq, database, strict=False))
        assert answers == {("a", "b")}

    def test_university_workload(self):
        omq = university_omq()
        database = generate_university_database(40, seed=1)
        answers = set(CompleteAnswerEnumerator(omq, database))
        assert answers == naive_certain_answers(omq, database)

    def test_empty_database(self, office_omq):
        enumerator = CompleteAnswerEnumerator(office_omq, Database())
        assert enumerator.is_empty()
        assert list(enumerator) == []


class TestMinimalPartialAnswerEnumeration:
    def test_paper_example(self, office_omq, office_database):
        answers = set(MinimalPartialAnswerEnumerator(office_omq, office_database))
        assert answers == {
            ("mary", "room1", "main1"),
            ("john", "room4", WILDCARD),
            ("mike", WILDCARD, WILDCARD),
        }

    def test_no_duplicates(self, office_omq, office_database):
        answers = list(MinimalPartialAnswerEnumerator(office_omq, office_database))
        assert len(answers) == len(set(answers))

    def test_contains_all_complete_answers(self, office_omq):
        rng = random.Random(41)
        for _ in range(6):
            database = random_office_database(rng)
            partial = set(MinimalPartialAnswerEnumerator(office_omq, database))
            complete = naive_certain_answers(office_omq, database)
            assert complete <= partial

    @pytest.mark.slow
    def test_matches_naive_on_random_databases(self, office_omq):
        rng = random.Random(43)
        for _ in range(12):
            database = random_office_database(rng)
            got = list(MinimalPartialAnswerEnumerator(office_omq, database))
            assert len(got) == len(set(got))
            assert set(got) == naive_minimal_partial_answers(office_omq, database)

    def test_largeoffice_example(self, largeoffice_omq, largeoffice_database):
        got = set(MinimalPartialAnswerEnumerator(largeoffice_omq, largeoffice_database))
        assert got == naive_minimal_partial_answers(
            largeoffice_omq, largeoffice_database
        )
        assert ("mike", WILDCARD, WILDCARD, WILDCARD) in got

    def test_university_workload(self):
        omq = university_omq()
        database = generate_university_database(30, seed=7)
        got = set(MinimalPartialAnswerEnumerator(omq, database))
        assert got == naive_minimal_partial_answers(omq, database)

    def test_cone_example(self, cone_example_omq, cone_example_database):
        got = set(MinimalPartialAnswerEnumerator(cone_example_omq, cone_example_database))
        assert got == {("c", "cprime", WILDCARD, WILDCARD)}

    def test_boolean_omq(self):
        ontology = parse_ontology("A(x) -> R(x, y)")
        query = parse_query("q() :- R(x, y)")
        omq = OMQ.from_parts(ontology, query)
        has_answer = Database([Fact("A", ("a",))])
        assert list(MinimalPartialAnswerEnumerator(omq, has_answer)) == [()]
        assert list(MinimalPartialAnswerEnumerator(omq, Database())) == []

    def test_rejects_non_acyclic_query(self):
        ontology = parse_ontology("R(x, y) -> A(x)")
        query = parse_query("q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
        omq = OMQ.from_parts(ontology, query)
        with pytest.raises(Exception):
            MinimalPartialAnswerEnumerator(omq, Database([Fact("R", ("a", "b"))]))


class TestDatabasePreferringOrder:
    def test_less_wildcarded_answers_for_same_prefix_come_first(
        self, office_omq, office_database
    ):
        # For a fixed first component value, answers with fewer wildcards are
        # produced before answers with more wildcards.
        answers = list(MinimalPartialAnswerEnumerator(office_omq, office_database))
        by_person = {}
        for answer in answers:
            by_person.setdefault(answer[0], []).append(answer)
        for person_answers in by_person.values():
            stars = [sum(1 for v in a if v is WILDCARD) for a in person_answers]
            assert stars == sorted(stars)

    def test_complete_first_order(self, office_omq):
        rng = random.Random(47)
        for _ in range(6):
            database = random_office_database(rng)
            enumerator = MinimalPartialAnswerEnumerator(office_omq, database)
            ordered = list(enumerator.enumerate_complete_first())
            # Same multiset of answers as the plain enumeration.
            assert set(ordered) == naive_minimal_partial_answers(office_omq, database)
            assert len(ordered) == len(set(ordered))
            # All complete answers precede all wildcard answers.
            seen_wildcard = False
            for answer in ordered:
                if any(v is WILDCARD for v in answer):
                    seen_wildcard = True
                else:
                    assert not seen_wildcard, "complete answer after a wildcard answer"


class TestMultiWildcardEnumeration:
    def test_paper_example(self, office_omq, office_database):
        answers = set(MultiWildcardEnumerator(office_omq, office_database))
        assert answers == {
            ("mary", "room1", "main1"),
            ("john", "room4", Wildcard(1)),
            ("mike", Wildcard(1), Wildcard(2)),
        }

    def test_cone_example_from_paper(self, cone_example_omq, cone_example_database):
        # Example 6.2: the ball of (c, c', *, *) misses (c, *1, *2, *1); the
        # cone-based algorithm finds both minimal multi-wildcard answers.
        answers = set(MultiWildcardEnumerator(cone_example_omq, cone_example_database))
        assert answers == {
            ("c", "cprime", Wildcard(1), Wildcard(2)),
            ("c", Wildcard(1), Wildcard(2), Wildcard(1)),
        }

    def test_largeoffice_example(self, largeoffice_omq, largeoffice_database):
        answers = set(MultiWildcardEnumerator(largeoffice_omq, largeoffice_database))
        assert ("mike", Wildcard(1), Wildcard(1), Wildcard(2)) in answers
        assert ("mike", Wildcard(1), Wildcard(2), Wildcard(3)) not in answers
        assert answers == naive_minimal_partial_answers_multi(
            largeoffice_omq, largeoffice_database
        )

    @pytest.mark.slow
    def test_matches_naive_on_random_databases(self, office_omq):
        rng = random.Random(53)
        for _ in range(10):
            database = random_office_database(rng)
            got = list(MultiWildcardEnumerator(office_omq, database))
            assert len(got) == len(set(got))
            assert set(got) == naive_minimal_partial_answers_multi(office_omq, database)

    def test_university_workload(self):
        omq = university_omq()
        database = generate_university_database(25, seed=3)
        got = set(MultiWildcardEnumerator(omq, database))
        assert got == naive_minimal_partial_answers_multi(omq, database)


class TestCQLevelPartialEnumerator:
    def test_runs_directly_on_chase_instances(self, office_omq, office_database):
        chased = office_omq.chase(office_database)
        enumerator = PartialAnswerEnumerator(office_omq.query, chased.instance)
        assert set(enumerator.enumerate()) == naive_minimal_partial_answers(
            office_omq, office_database
        )

    def test_plain_instance_without_nulls(self):
        query = parse_query("q(x, y) :- R(x, y)")
        from repro.data import Instance

        instance = Instance([Fact("R", ("a", "b"))])
        enumerator = PartialAnswerEnumerator(query, instance)
        assert set(enumerator.enumerate()) == {("a", "b")}
