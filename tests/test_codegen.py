"""Tests for per-plan code generation (`repro.engine.codegen`).

Covers the generated-source shape and caching of the enumeration walk, the
arity-specialised columnar kernels, the single-atom chase matchers, every
escape hatch (``REPRO_NO_CODEGEN``, :func:`repro.set_codegen`,
``ExecutionOptions(codegen=False)``), and the eviction guarantee: compiled
closures never outlive their :class:`PreparedQuery`.
"""

from __future__ import annotations

import gc
import os
import subprocess
import sys
import weakref

import pytest

from repro import Database, ExecutionOptions, Fact, QueryEngine, use_codegen
from repro.cq.atoms import Atom, Variable
from repro.cq.homomorphism import match_atom
from repro.data import ColumnarRelation
from repro.engine import CODEGEN_STATS, PlanCodegen
from repro.engine.codegen import (
    MAX_KERNEL_ARITY,
    MAX_WALK_DEPTH,
    compile_walk,
    key_kernels,
    maybe_single_body_matcher,
    nullfree_kernel,
    single_body_matcher,
    walk_source,
)
from repro.tgds.ontology import Ontology
from repro.tgds.parser import parse_ontology


def _x():
    return Variable("x")


#: A depth-2 slot plan shaped like ``CDLinEnumerator._build_plan`` output:
#: level 0 reads the root rows into slots 0/1, level 1 joins on slot 1 and
#: reads its second position into slot 2.
PATH_PLAN = (
    ((), (1,)),  # key_slots per level
    (((0, 0), (1, 1)), ((1, 2),)),  # stores per level: (position, slot)
    (0, 1, 2),  # final_slots
    3,  # slot_count
)

#: index_list matching PATH_PLAN over R = {(a,b),(a,c)}, S = {(b,d),(c,d)}.
PATH_INDEXES = [
    {(): [("a", "b"), ("a", "c")]},
    {("b",): [("b", "d")], ("c",): [("c", "d")]},
]


class TestWalkSource:
    def test_source_mirrors_the_interpreter(self):
        source = walk_source(PATH_PLAN, interned=False)
        assert "def _walk(index_list, decode):" in source
        assert "_get1 = index_list[1].get" in source
        assert "for _r0 in index_list[0].get((), ()):" in source
        assert "for _r1 in _get1((_v1,), ()):" in source
        assert "yield (_v0, _v1, _v2)" in source
        # Writes to key slots are elided: level 1's slot 1 is its lookup key.
        assert "_v1 = _r1" not in source

    def test_compiled_walk_enumerates_the_join(self):
        walk = compile_walk(PATH_PLAN, interned=False)
        assert set(walk(PATH_INDEXES, None)) == {
            ("a", "b", "d"),
            ("a", "c", "d"),
        }

    def test_interned_plans_decode_at_emit(self):
        source = walk_source(PATH_PLAN, interned=True)
        assert "yield (decode(_v0), decode(_v1), decode(_v2))" in source
        walk = compile_walk(PATH_PLAN, interned=True)
        table = {"a": "A", "b": "B", "c": "C", "d": "D"}
        assert set(walk(PATH_INDEXES, table.__getitem__)) == {
            ("A", "B", "D"),
            ("A", "C", "D"),
        }

    def test_boolean_plan_yields_the_empty_tuple(self):
        plan = (((),), (((0, 0),),), (), 1)
        source = walk_source(plan, interned=False)
        assert "yield ()" in source
        walk = compile_walk(plan, interned=False)
        assert list(walk([{(): [("w",)]}], None)) == [()]

    def test_single_answer_variable_yields_one_tuples(self):
        plan = (((),), (((0, 0),),), (0,), 1)
        assert "yield (_v0,)" in walk_source(plan, interned=False)
        walk = compile_walk(plan, interned=False)
        assert set(walk([{(): [("a",), ("b",)]}], None)) == {("a",), ("b",)}

    def test_depth_zero_and_too_deep_fall_back(self):
        assert walk_source(((), (), (), 0), interned=False) is None
        deep = MAX_WALK_DEPTH + 1
        plan = (
            tuple(() for _ in range(deep)),
            tuple(((0, i),) for i in range(deep)),
            (0,),
            deep,
        )
        assert walk_source(plan, interned=False) is None
        assert compile_walk(plan, interned=False) is None


class TestPlanCodegen:
    def test_walks_compile_once_then_hit(self):
        cache = PlanCodegen()
        compiled_before, hits_before = CODEGEN_STATS.snapshot()
        first = cache.walk_for(PATH_PLAN, interned=False)
        second = cache.walk_for(PATH_PLAN, interned=False)
        compiled_after, hits_after = CODEGEN_STATS.snapshot()
        assert first is second and first is not None
        assert compiled_after == compiled_before + 1
        assert hits_after == hits_before + 1
        assert len(cache) == 1

    def test_interned_and_plain_walks_are_distinct_entries(self):
        cache = PlanCodegen()
        assert cache.walk_for(PATH_PLAN, True) is not cache.walk_for(PATH_PLAN, False)
        assert len(cache) == 2

    def test_uncovered_plans_cache_the_fallback(self):
        cache = PlanCodegen()
        plan = ((), (), (), 0)
        assert cache.walk_for(plan, False) is None
        _, hits_before = CODEGEN_STATS.snapshot()
        assert cache.walk_for(plan, False) is None  # cached None, no recompile
        _, hits_after = CODEGEN_STATS.snapshot()
        assert hits_after == hits_before + 1


class TestKeyKernels:
    def rel(self):
        return ColumnarRelation(3, [(1, 2, 3), (1, 5, 6), (4, 2, 3), (1, 2, 9)])

    @pytest.mark.parametrize("positions", [(0,), (0, 1), (2, 0, 1)])
    def test_kernels_agree_with_the_generic_paths(self, positions):
        relation = self.rel()
        keys = {tuple(row[p] for p in positions) for row in list(relation)[:2]}
        with use_codegen(True):
            fast_filter = relation.filter_by_keys(positions, keys)
            fast_index = relation.index_on(positions)
        with use_codegen(False):
            slow_filter = relation.filter_by_keys(positions, keys)
            slow_index = relation.index_on(positions)
        assert fast_filter == slow_filter
        assert {k: list(v) for k, v in fast_index.items()} == {
            k: list(v) for k, v in slow_index.items()
        }

    def test_arity_bounds(self):
        assert key_kernels(0) is None
        assert key_kernels(MAX_KERNEL_ARITY + 1) is None
        assert key_kernels(1) is not None
        assert nullfree_kernel(0) is None
        assert nullfree_kernel(MAX_KERNEL_ARITY + 1) is None

    def test_kernels_are_cached_per_arity(self):
        first = key_kernels(2)
        _, hits_before = CODEGEN_STATS.snapshot()
        assert key_kernels(2) is first
        _, hits_after = CODEGEN_STATS.snapshot()
        assert hits_after == hits_before + 1

    def test_nullfree_kernel_matches_the_generic_filter(self):
        flags = bytearray([0, 1, 0, 0, 1])
        rows = {(0, 2), (0, 1), (3, 4), (2, 3)}
        kernel = nullfree_kernel(2)
        expected = {row for row in rows if not any(flags[v] for v in row)}
        assert kernel(rows, flags) == expected == {(0, 2), (2, 3)}


class TestSingleBodyMatcher:
    CASES = [
        Atom("R", (_x(), Variable("y"))),
        Atom("R", (_x(), _x())),  # repeated variable
        Atom("R", (_x(), "c")),  # constant in the body
        Atom("T", ("c", _x(), _x(), "d")),  # both, arity 4
        Atom("P", ()),  # 0-ary body atom
    ]

    FACTS = [
        Fact("R", ("a", "b")),
        Fact("R", ("a", "a")),
        Fact("R", ("a", "c")),
        Fact("R", ("c", "c")),
        Fact("T", ("c", "a", "a", "d")),
        Fact("T", ("c", "a", "b", "d")),
        Fact("T", ("x", "a", "a", "d")),
        Fact("P", ()),
        Fact("R", ("only", "one", "extra")),  # arity mismatch
    ]

    @pytest.mark.parametrize("atom", CASES, ids=lambda a: str(a))
    def test_matcher_agrees_with_match_atom(self, atom):
        matcher = single_body_matcher(atom)
        for fact in self.FACTS:
            assert matcher(fact) == match_atom(atom, fact, {}), fact

    def test_matchers_are_shared_across_equal_atoms(self):
        left = single_body_matcher(Atom("Q", (_x(), "k")))
        right = single_body_matcher(Atom("Q", (_x(), "k")))
        assert left is right

    def test_maybe_matcher_respects_the_switch(self):
        atom = Atom("R", (_x(), Variable("y")))
        with use_codegen(False):
            assert maybe_single_body_matcher(atom) is None
            assert maybe_single_body_matcher(atom, enabled=True) is not None
        with use_codegen(True):
            assert maybe_single_body_matcher(atom) is not None
            assert maybe_single_body_matcher(atom, enabled=False) is None


OFFICE_RULES = """
    Researcher(x) -> HasOffice(x, y)
    HasOffice(x, y) -> Office(y)
    Office(x) -> InBuilding(x, y)
"""

OFFICE_FACTS = [
    Fact("Researcher", ("mary",)),
    Fact("HasOffice", ("mary", "room1")),
    Fact("HasOffice", ("john", "room2")),
    Fact("InBuilding", ("room1", "main1")),
]

OFFICE_QUERY = "q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)"


def _office_engine(**kwargs) -> QueryEngine:
    return QueryEngine(parse_ontology(OFFICE_RULES), Database(OFFICE_FACTS), **kwargs)


class TestEscapeHatches:
    def test_codegen_on_and_off_agree_end_to_end(self):
        on = _office_engine(codegen=True).execute(OFFICE_QUERY)
        off = _office_engine(codegen=False).execute(OFFICE_QUERY)
        assert on == off and on  # non-empty and byte-identical

    def test_options_object_disables_codegen(self):
        engine = _office_engine(options=ExecutionOptions(codegen=False))
        answers = engine.execute(OFFICE_QUERY)
        assert answers == _office_engine().execute(OFFICE_QUERY)
        # The disabled engine itself must not have compiled a walk.
        (prepared,) = engine._plans.values()
        assert len(prepared.codegen) == 0

    def test_explicit_kwarg_beats_the_options_object(self):
        engine = _office_engine(
            options=ExecutionOptions(codegen=False, strict=False), codegen=True
        )
        assert engine.codegen is True
        assert engine.strict is False  # untouched fields still flow through

    def test_use_codegen_wins_over_unset_option_fields(self):
        with use_codegen(False):
            engine = _office_engine()  # codegen field stays None
            engine.execute(OFFICE_QUERY)
            (prepared,) = engine._plans.values()
            assert len(prepared.codegen) == 0

    def test_env_variable_escape_hatch(self):
        env = dict(os.environ, REPRO_NO_CODEGEN="1")
        env["PYTHONPATH"] = "src"
        probe = (
            "from repro.config import codegen_enabled; "
            "print(codegen_enabled())"
        )
        output = subprocess.run(
            [sys.executable, "-c", probe],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert output == "False"


class TestStatsAndEviction:
    def test_engine_stats_expose_codegen_counters(self):
        engine = _office_engine(codegen=True)
        engine.execute(OFFICE_QUERY)
        engine.execute(OFFICE_QUERY)
        stats = engine.stats
        assert stats.plans_compiled >= 1
        report = stats.as_dict()
        assert "plans_compiled" in report and "codegen_cache_hits" in report

    def test_compiled_walks_die_with_the_evicted_plan(self):
        """The eviction regression: no global cache outlives PreparedQuery."""
        engine = _office_engine(codegen=True, plan_cache_size=1)
        engine.execute(OFFICE_QUERY)
        (prepared,) = engine._plans.values()
        assert len(prepared.codegen) >= 1
        grave = weakref.ref(prepared.codegen)
        del prepared
        # A second distinct query evicts the first plan (capacity 1)...
        engine.execute("q(x, y) :- HasOffice(x, y)")
        gc.collect()
        # ...and the compiled closures go with it.
        assert grave() is None

    def test_cached_plan_reuses_its_compiled_walk(self):
        engine = _office_engine(codegen=True)
        engine.execute(OFFICE_QUERY)
        _, hits_before = CODEGEN_STATS.snapshot()
        engine.execute(OFFICE_QUERY)
        _, hits_after = CODEGEN_STATS.snapshot()
        assert hits_after > hits_before


class TestUnifiedSignatures:
    def test_execute_batch_accepts_any_iterable(self):
        engine = _office_engine()
        queries = (text for text in [OFFICE_QUERY, "q(x, y) :- HasOffice(x, y)"])
        results = engine.execute_batch(queries)
        assert len(results) == 2
        assert results[0] == engine.execute(OFFICE_QUERY)
        assert results[1] == engine.execute("q(x, y) :- HasOffice(x, y)")

    def test_open_page_size_hint_drives_fetchmany(self):
        engine = _office_engine()
        with engine.open("q(x, y) :- HasOffice(x, y)", page_size=1) as cursor:
            assert cursor.page_size == 1
            assert len(cursor.fetchmany()) == 1  # page size, not DEFAULT_PAGE_SIZE
            assert len(cursor.fetchmany(10)) <= 10  # explicit size still wins
        with engine.open(OFFICE_QUERY) as cursor:
            assert cursor.page_size == cursor.DEFAULT_PAGE_SIZE

    def test_incremental_maintenance_keeps_codegen_answers_correct(self):
        ontology = parse_ontology(OFFICE_RULES)
        database = Database(OFFICE_FACTS)
        engine = QueryEngine(ontology, database, codegen=True)
        before = engine.execute(OFFICE_QUERY)
        database.add(Fact("InBuilding", ("room2", "annex")))
        after = engine.execute(OFFICE_QUERY)
        reference = QueryEngine(ontology, database, codegen=False).execute(
            OFFICE_QUERY
        )
        assert after == reference
        assert before < after

    def test_empty_ontology_engine_still_honours_options(self):
        engine = QueryEngine(
            Ontology([], name="empty"),
            Database([Fact("R", ("a", "b"))]),
            options=ExecutionOptions(codegen=True, plan_cache_size=2),
        )
        assert engine._plans.capacity == 2
        assert engine.execute("q(x, y) :- R(x, y)") == {("a", "b")}
