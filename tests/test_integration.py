"""End-to-end integration tests: all evaluation modes agree with each other."""

import pytest

from repro.baselines import (
    naive_certain_answers,
    naive_minimal_partial_answers,
    naive_minimal_partial_answers_multi,
)
from repro.core import (
    WILDCARD,
    CompleteAnswerEnumerator,
    MinimalPartialAnswerEnumerator,
    MultiWildcardEnumerator,
    OMQAllTester,
    OMQSingleTester,
)
from repro.core.wildcards import leq_partial, multi_to_single
from repro.workloads import (
    generate_office_database,
    generate_university_database,
    office_omq,
    university_omq,
)

pytestmark = pytest.mark.slow


def _check_consistency(omq, database):
    """The cross-mode invariants of the paper, checked on one database."""
    complete = set(CompleteAnswerEnumerator(omq, database))
    partial = set(MinimalPartialAnswerEnumerator(omq, database))
    multi = set(MultiWildcardEnumerator(omq, database))

    # Reference implementations agree.
    assert complete == naive_certain_answers(omq, database)
    assert partial == naive_minimal_partial_answers(omq, database)
    assert multi == naive_minimal_partial_answers_multi(omq, database)

    # Q(D) ⊆ Q(D)* and |Q(D)*| <= |Q(D)^W| (Claim D.2).
    assert complete <= partial
    assert len(partial) <= len(multi) or not multi
    # Collapsing multi-wildcards gives tuples dominated by some minimal
    # single-wildcard answer.
    for answer in multi:
        collapsed = multi_to_single(answer)
        assert any(leq_partial(m, collapsed) for m in partial)

    # Single-testing and all-testing agree with enumeration.
    tester = OMQSingleTester(omq, database)
    all_tester = OMQAllTester(omq, database)
    for answer in complete:
        assert tester.test_complete(answer)
        assert all_tester.test(answer)
    for answer in partial:
        assert tester.test_minimal_partial(answer)
    for answer in multi:
        assert tester.test_minimal_partial_multi(answer)

    # Complete-first enumeration is a permutation with complete prefix.
    ordered = list(
        MinimalPartialAnswerEnumerator(omq, database).enumerate_complete_first()
    )
    assert set(ordered) == partial
    wildcard_seen = False
    for answer in ordered:
        if any(v is WILDCARD for v in answer):
            wildcard_seen = True
        else:
            assert not wildcard_seen


class TestOfficeIntegration:
    def test_small_generated_databases(self):
        omq = office_omq()
        for seed in (1, 2, 3):
            database = generate_office_database(12, seed=seed)
            _check_consistency(omq, database)

    def test_medium_database_counts(self):
        omq = office_omq()
        database = generate_office_database(200, seed=9)
        complete = set(CompleteAnswerEnumerator(omq, database))
        partial = set(MinimalPartialAnswerEnumerator(omq, database))
        researchers = sum(1 for f in database if f.relation == "Researcher")
        # Every researcher contributes exactly one minimal partial answer
        # whose first component is that researcher.
        first_components = {a[0] for a in partial}
        assert len(first_components) >= researchers
        assert complete <= partial


class TestUniversityIntegration:
    def test_small_generated_databases(self):
        omq = university_omq()
        for seed in (4, 5):
            database = generate_university_database(15, seed=seed)
            _check_consistency(omq, database)

    def test_answer_shape_statistics(self):
        omq = university_omq()
        database = generate_university_database(80, seed=8)
        partial = list(MinimalPartialAnswerEnumerator(omq, database))
        stars = [sum(1 for v in a if v is WILDCARD) for a in partial]
        # The workload produces complete answers, one-wildcard answers
        # (advisor known, department anonymous) and two-wildcard answers.
        assert {0, 1, 2} <= set(stars)
