"""Property-based differential tests: every engine path vs. the naive baseline.

Hypothesis generates random ELI ontologies (drawn from a pool of validated
ELI TGD templates), small random databases and acyclic, free-connex CQs,
then asserts that every optimised evaluation path returns an answer set
identical to ``repro.baselines.naive`` — the materialise-everything
reference implementation:

* CD∘Lin enumeration (:class:`CompleteAnswerEnumerator`),
* the prepared-query engine, cold, cached, and incremental after database
  mutations,
* the interned (dictionary-encoded, columnar) store and the
  ``REPRO_NO_INTERN`` term-object store,
* per-plan code generation (compiled walks/kernels/matchers) and the
  ``REPRO_NO_CODEGEN`` interpreted paths,
* the cost-based plan choice (candidate decompositions + per-edge kernel
  selection) and the ``REPRO_NO_PLANNER`` default-plan path,
* the sharded multi-process backend (``workers >= 2``): parallel chase,
  worker-pool batch enumeration, and pool re-forks across mutations — the
  cross-process differential harness of ``docs/parallel.md``.

The tier-1 ``fast`` profile runs 60 examples per property (≥200 cases per
run across the four properties); the ``slow``-marked sweep runs a larger
budget and rides the nightly ``-m slow`` job.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.naive import naive_certain_answers
from repro.core import OMQ
from repro.core.enumeration import CompleteAnswerEnumerator
from repro.cq.parser import parse_query
from repro.config import use_codegen, use_planner
from repro.data import Database, Fact, use_interning
from repro.engine import QueryEngine
from repro.parallel import active_segments
from repro.parallel import supported as parallel_supported
from repro.tgds.eli import is_eli_tgd
from repro.tgds.ontology import Ontology
from repro.tgds.parser import parse_ontology

settings.register_profile(
    "differential-fast",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
settings.register_profile(
    "differential-slow",
    max_examples=400,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
settings.load_profile("differential-fast")


# -- generators -----------------------------------------------------------

#: ELI TGD templates (unary/binary symbols, single frontier variable,
#: loop-free tree heads).  Validated against ``is_eli_tgd`` below.
TGD_TEMPLATES = (
    "A(x) -> R(x, y)",
    "B(x) -> S(x, y)",
    "R(x, y) -> B(y)",
    "S(x, y) -> C(y)",
    "A(x) -> B(x)",
    "C(x) -> A(x)",
    "R(x, y) -> A(x)",
    "B(x) -> R(x, y)",
    "C(x) -> S(x, y)",
    "S(x, y) -> B(x)",
)

#: Acyclic, free-connex query templates over the same vocabulary.
QUERY_TEMPLATES = (
    "q(x) :- A(x)",
    "q(x) :- B(x)",
    "q(x, y) :- R(x, y)",
    "q(x, y) :- S(x, y)",
    "q(x) :- R(x, y)",
    "q(y) :- R(x, y)",
    "q(x, y) :- R(x, y), B(y)",
    "q(x, y) :- R(x, y), A(x)",
    "q(x, y, z) :- R(x, y), S(y, z)",
    "q(x) :- A(x), B(x)",
    "q() :- R(x, y)",
)

CONSTANTS = ("c0", "c1", "c2", "c3", "c4")
UNARY = ("A", "B", "C")
BINARY = ("R", "S")


def test_tgd_templates_are_eli():
    """The generator pool really draws from the paper's ELI fragment."""
    for template in TGD_TEMPLATES:
        (tgd,) = parse_ontology(template, name="t")
        assert is_eli_tgd(tgd), template


def test_query_templates_are_acyclic_free_connex():
    for template in QUERY_TEMPLATES:
        query = parse_query(template)
        omq = OMQ.from_parts(Ontology([], name="empty"), query)
        assert omq.is_acyclic() and omq.is_free_connex_acyclic(), template


fact_strategy = st.one_of(
    st.tuples(st.sampled_from(UNARY), st.sampled_from(CONSTANTS)).map(
        lambda pair: Fact(pair[0], (pair[1],))
    ),
    st.tuples(
        st.sampled_from(BINARY),
        st.sampled_from(CONSTANTS),
        st.sampled_from(CONSTANTS),
    ).map(lambda triple: Fact(triple[0], (triple[1], triple[2]))),
)

facts_strategy = st.lists(fact_strategy, min_size=0, max_size=10)

ontology_strategy = st.lists(
    st.sampled_from(TGD_TEMPLATES), unique=True, min_size=0, max_size=4
)

query_strategy = st.sampled_from(QUERY_TEMPLATES)


def _build_omq(templates: list[str], query_text: str) -> OMQ:
    if templates:
        ontology = parse_ontology("\n".join(templates), name="fuzz")
    else:
        ontology = Ontology([], name="fuzz")
    return OMQ.from_parts(ontology, parse_query(query_text), name="Q_fuzz")


# -- properties -----------------------------------------------------------


@given(templates=ontology_strategy, query_text=query_strategy, facts=facts_strategy)
def test_cdlin_enumeration_matches_naive(templates, query_text, facts):
    """CD∘Lin (chase + reduction + constant-delay walk) == naive baseline."""
    omq = _build_omq(templates, query_text)
    database = Database(facts)
    expected = naive_certain_answers(omq, database)
    enumerated = set(CompleteAnswerEnumerator(omq, database))
    assert enumerated == expected


@given(templates=ontology_strategy, query_text=query_strategy, facts=facts_strategy)
def test_engine_cold_and_cached_match_naive(templates, query_text, facts):
    """QueryEngine first (cold) and second (plan/state cached) executions."""
    omq = _build_omq(templates, query_text)
    database = Database(facts)
    expected = naive_certain_answers(omq, database)
    engine = QueryEngine(omq.ontology, database)
    cold = engine.execute(omq.query)
    cached = engine.execute(omq.query)
    assert cold == expected
    assert cached == expected
    assert engine.stats.plan_hits >= 1


@given(
    templates=ontology_strategy,
    query_text=query_strategy,
    facts=facts_strategy,
    extra=st.lists(fact_strategy, min_size=1, max_size=3),
    drop_one=st.booleans(),
)
def test_engine_incremental_after_mutation_matches_naive(
    templates, query_text, facts, extra, drop_one
):
    """A warm engine served across mutations == naive on the mutated data."""
    omq = _build_omq(templates, query_text)
    database = Database(facts)
    engine = QueryEngine(omq.ontology, database, incremental=True)
    engine.execute(omq.query)  # warm: chase + reduced state materialised
    database.add_facts(extra)
    if drop_one and len(database):
        database.discard(sorted(database.facts(), key=repr)[0])
    expected = naive_certain_answers(omq, database)
    assert engine.execute(omq.query) == expected


@given(templates=ontology_strategy, query_text=query_strategy, facts=facts_strategy)
def test_interned_and_term_stores_agree(templates, query_text, facts):
    """The interned columnar store and the REPRO_NO_INTERN path are
    answer-identical (and both equal the naive baseline)."""
    omq = _build_omq(templates, query_text)
    with use_interning(True):
        interned_db = Database(facts)
        assert interned_db.interned
        interned_answers = set(CompleteAnswerEnumerator(omq, interned_db))
        interned_engine = QueryEngine(omq.ontology, interned_db).execute(omq.query)
    with use_interning(False):
        term_db = Database(facts)
        assert not term_db.interned
        term_answers = set(CompleteAnswerEnumerator(omq, term_db))
        expected = naive_certain_answers(omq, term_db)
    assert interned_answers == term_answers == expected
    assert interned_engine == expected


@given(templates=ontology_strategy, query_text=query_strategy, facts=facts_strategy)
def test_codegen_on_and_off_agree(templates, query_text, facts):
    """Compiled walks/kernels/matchers == the interpreted paths == naive."""
    omq = _build_omq(templates, query_text)
    with use_codegen(True):
        database = Database(facts)
        compiled_answers = set(CompleteAnswerEnumerator(omq, database))
        compiled_engine = QueryEngine(omq.ontology, database).execute(omq.query)
    with use_codegen(False):
        database = Database(facts)
        interpreted_answers = set(CompleteAnswerEnumerator(omq, database))
        expected = naive_certain_answers(omq, database)
    assert compiled_answers == interpreted_answers == expected
    assert compiled_engine == expected


@given(
    templates=ontology_strategy,
    query_text=query_strategy,
    facts=facts_strategy,
    extra=st.lists(fact_strategy, min_size=1, max_size=3),
)
def test_planner_on_and_off_agree(templates, query_text, facts, extra):
    """The cost-based plan choice == the default decomposition == naive,
    cold, cached, and across a mutation (incremental maintenance of the
    chosen plan's state)."""
    omq = _build_omq(templates, query_text)
    with use_planner(True):
        planned_db = Database(facts)
        planned_engine = QueryEngine(omq.ontology, planned_db)
        planned_cold = planned_engine.execute(omq.query)
        planned_cached = planned_engine.execute(omq.query)
    with use_planner(False):
        default_db = Database(facts)
        default_engine = QueryEngine(omq.ontology, default_db)
        default_cold = default_engine.execute(omq.query)
        expected = naive_certain_answers(omq, default_db)
    assert planned_cold == planned_cached == default_cold == expected
    with use_planner(True):
        planned_db.add_facts(extra)
        planned_mutated = planned_engine.execute(omq.query)
    with use_planner(False):
        default_db.add_facts(extra)
        mutated_expected = naive_certain_answers(omq, default_db)
        assert default_engine.execute(omq.query) == mutated_expected
    assert planned_mutated == mutated_expected


_parallel_supported = parallel_supported()


@pytest.mark.skipif(not _parallel_supported, reason="fork start method unavailable")
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(templates=ontology_strategy, query_text=query_strategy, facts=facts_strategy)
def test_parallel_workers_match_naive(templates, query_text, facts):
    """The sharded 2-process backend (parallel chase + worker-side batch
    enumeration) == naive baseline, with zero leaked shm segments."""
    omq = _build_omq(templates, query_text)
    database = Database(facts)
    expected = naive_certain_answers(omq, database)
    engine = QueryEngine(omq.ontology, database, workers=2, incremental=False)
    try:
        assert engine.execute(omq.query) == expected
        assert engine.execute_batch([omq.query, omq.query]) == [expected, expected]
    finally:
        engine.shutdown()
    assert active_segments() == set()


@pytest.mark.slow
@settings(
    max_examples=400,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(
    templates=ontology_strategy,
    query_text=query_strategy,
    facts=facts_strategy,
    extra=st.lists(fact_strategy, min_size=1, max_size=3),
)
def test_differential_sweep_slow(templates, query_text, facts, extra):
    """Nightly sweep: all paths, both stores, both codegen modes, both
    planner modes, across a mutation."""
    omq = _build_omq(templates, query_text)
    for interned in (True, False):
        for codegen in (True, False):
            for planner in (True, False):
                with (
                    use_interning(interned),
                    use_codegen(codegen),
                    use_planner(planner),
                ):
                    database = Database(facts)
                    expected = naive_certain_answers(omq, database)
                    assert set(CompleteAnswerEnumerator(omq, database)) == expected
                    engine = QueryEngine(omq.ontology, database)
                    assert engine.execute(omq.query) == expected
                    database.add_facts(extra)
                    mutated_expected = naive_certain_answers(omq, database)
                    assert engine.execute(omq.query) == mutated_expected


@pytest.mark.slow
@pytest.mark.skipif(not _parallel_supported, reason="fork start method unavailable")
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(
    templates=ontology_strategy,
    query_text=query_strategy,
    facts=facts_strategy,
    workers=st.sampled_from((2, 4)),
    extra=st.lists(fact_strategy, min_size=1, max_size=3),
)
def test_parallel_sweep_slow(templates, query_text, facts, workers, extra):
    """Nightly cross-process sweep: 2- and 4-worker execution across a
    mutation (pool re-fork) == naive, zero leaked segments."""
    omq = _build_omq(templates, query_text)
    database = Database(facts)
    engine = QueryEngine(omq.ontology, database, workers=workers, incremental=False)
    try:
        assert engine.execute(omq.query) == naive_certain_answers(omq, database)
        database.add_facts(extra)
        mutated_expected = naive_certain_answers(omq, database)
        assert engine.execute(omq.query) == mutated_expected
        assert engine.execute_batch([omq.query]) == [mutated_expected]
    finally:
        engine.shutdown()
    assert active_segments() == set()
