"""Tests for homomorphism search and reference CQ evaluation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq import Variable, parse_query
from repro.cq.homomorphism import (
    all_homomorphisms,
    evaluate,
    find_homomorphism,
    is_homomorphism,
    satisfies,
)
from repro.data import Fact, Instance

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def path_instance() -> Instance:
    return Instance(
        [
            Fact("R", ("a", "b")),
            Fact("R", ("b", "c")),
            Fact("S", ("b", "d")),
            Fact("S", ("c", "d")),
            Fact("A", ("a",)),
        ]
    )


class TestHomomorphisms:
    def test_is_homomorphism(self):
        query = parse_query("q(x, y) :- R(x, y)")
        instance = path_instance()
        assert is_homomorphism({X: "a", Y: "b"}, query, instance)
        assert not is_homomorphism({X: "a", Y: "c"}, query, instance)
        assert not is_homomorphism({X: "a"}, query, instance)

    def test_find_homomorphism_respects_partial(self):
        query = parse_query("q(x, y) :- R(x, y)")
        instance = path_instance()
        hom = find_homomorphism(query, instance, partial={X: "b"})
        assert hom is not None and hom[X] == "b" and hom[Y] == "c"
        assert find_homomorphism(query, instance, partial={X: "d"}) is None

    def test_all_homomorphisms_count(self):
        query = parse_query("q(x, y) :- R(x, y)")
        homs = list(all_homomorphisms(query, path_instance()))
        assert len(homs) == 2

    def test_constants_in_query(self):
        query = parse_query('q(x) :- R(x, "b")')
        assert evaluate(query, path_instance()) == {("a",)}

    def test_repeated_variables(self):
        instance = Instance([Fact("R", ("a", "a")), Fact("R", ("a", "b"))])
        query = parse_query("q(x) :- R(x, x)")
        assert evaluate(query, instance) == {("a",)}

    def test_evaluate_join(self):
        query = parse_query("q(x, z) :- R(x, y), S(y, z)")
        assert evaluate(query, path_instance()) == {("a", "d"), ("b", "d")}

    def test_evaluate_boolean(self):
        query = parse_query("q() :- R(x, y), S(y, z)")
        assert evaluate(query, path_instance()) == {()}
        assert satisfies(query, path_instance())

    def test_unsatisfiable_query(self):
        query = parse_query("q(x) :- R(x, y), A(y)")
        assert evaluate(query, path_instance()) == set()
        assert not satisfies(query, path_instance())

    def test_self_join(self):
        query = parse_query("q(x, z) :- R(x, y), R(y, z)")
        assert evaluate(query, path_instance()) == {("a", "c")}

    def test_empty_instance(self):
        query = parse_query("q(x) :- R(x, y)")
        assert evaluate(query, Instance()) == set()


def _brute_force_evaluate(query, instance):
    """Exhaustive evaluation by trying every assignment of variables."""
    domain = sorted(instance.adom(), key=repr)
    variables = sorted(query.variables(), key=lambda v: v.name)
    answers = set()

    def recurse(index, assignment):
        if index == len(variables):
            if is_homomorphism(assignment, query, instance):
                answers.add(tuple(assignment[v] for v in query.answer_variables))
            return
        for value in domain:
            assignment[variables[index]] = value
            recurse(index + 1, assignment)
        del assignment[variables[index]]

    recurse(0, {})
    return answers


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_evaluation_matches_brute_force(seed):
    """Property: the backtracking evaluator agrees with exhaustive search."""
    rng = random.Random(seed)
    constants = ["a", "b", "c", "d"]
    facts = []
    for _ in range(rng.randint(1, 8)):
        facts.append(Fact("R", (rng.choice(constants), rng.choice(constants))))
    for _ in range(rng.randint(0, 4)):
        facts.append(Fact("A", (rng.choice(constants),)))
    instance = Instance(facts)
    queries = [
        parse_query("q(x, y) :- R(x, y)"),
        parse_query("q(x) :- R(x, y), A(y)"),
        parse_query("q(x, z) :- R(x, y), R(y, z)"),
        parse_query("q(x) :- R(x, x)"),
        parse_query("q() :- R(x, y), A(x)"),
    ]
    for query in queries:
        assert evaluate(query, instance) == _brute_force_evaluate(query, instance)
