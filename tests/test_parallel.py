"""Unit and fault-injection tests for the sharded multi-process backend.

Covers, in isolation and end to end:

* deterministic hash partitioning (:mod:`repro.parallel.shards`) — every
  row owned by exactly one shard, stable across processes and runs;
* shared-memory segment lifecycle (:mod:`repro.parallel.shm`) — creation,
  zero-copy attach, close/unlink discipline, the ``/dev/shm`` leak class;
* the persistent forked worker pool (:mod:`repro.parallel.pool`) — task
  round-trips, crash detection (a SIGKILLed worker raises
  :class:`WorkerCrashed`, never hangs), pool teardown;
* the parallel chase, reduce projections and sharded semi-joins against
  their sequential twins (byte-identical results);
* engine integration — ``workers=N`` execution, batch fan-out, stats,
  sequential fallback after a crash, pool re-fork across mutations;
* the interrupt/leak regression: an aborted ``execute_batch`` leaves zero
  orphaned segments (per-operation ``finally`` + the ``atexit`` registry).

Everything here is fork-only and skipped where ``fork`` is unavailable.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.chase.standard import chase
from repro.config import ExecutionOptions, default_workers, use_workers
from repro.data.columns import ColumnarRelation
from repro.data.facts import Fact
from repro.data.instance import Database, Instance
from repro.engine import QueryEngine
from repro.parallel import (
    DEFAULT_TASK_TIMEOUT,
    PARALLEL_STATS,
    SEGMENTS,
    ParallelExecutionError,
    SharedColumns,
    SharedFactBlock,
    WorkerBootstrap,
    WorkerCrashed,
    WorkerPool,
    active_segments,
    hash_partition,
    maybe_parallel_filter,
    mix64,
    parallel_chase,
    parallel_filter_by_keys,
    parallel_projections,
    shard_of,
    sharded_semijoins,
    supported,
)
from repro.parallel.shards import shard_rows
from repro.parallel.shm import decode_value, encode_null
from repro.data.terms import Null, is_null
from repro.tgds.parser import parse_ontology
from repro.workloads.university import (
    generate_university_database,
    university_omq,
    university_ontology,
)

pytestmark = pytest.mark.skipif(
    not supported(), reason="fork start method unavailable on this platform"
)


def _null_free(instance: Instance) -> set[Fact]:
    return {
        fact
        for fact in instance
        if not any(is_null(arg) for arg in fact.args)
    }


def _shm_names() -> set[str]:
    """Segment names visible in /dev/shm (best effort, empty if unreadable)."""
    try:
        return {entry for entry in os.listdir("/dev/shm") if entry.startswith("psm_")}
    except OSError:  # pragma: no cover - /dev/shm not mounted
        return set()


@pytest.fixture(autouse=True)
def _no_segment_leaks():
    """Every test must exit with the registry empty and /dev/shm unchanged."""
    before = _shm_names()
    yield
    assert active_segments() == set()
    leaked = _shm_names() - before
    assert leaked == set(), f"leaked /dev/shm segments: {leaked}"


@pytest.fixture
def pool():
    ontology = parse_ontology("edge(x, y) -> reach(x, y)", name="pool-test")
    instance = Instance(Database([Fact("edge", ("a", "b"))]))
    pool = WorkerPool(2, WorkerBootstrap(ontology, instance, codegen=False))
    yield pool
    pool.close()


# -- sharding --------------------------------------------------------------


class TestSharding:
    def test_mix64_is_deterministic_and_avalanching(self):
        assert mix64(0) == mix64(0)
        assert mix64(1) != mix64(2)
        # Avalanche sanity: single-bit input flips move many output bits.
        diff = mix64(7) ^ mix64(6)
        assert bin(diff).count("1") > 8

    def test_shard_of_stable_and_in_range(self):
        for count in (1, 2, 3, 7):
            for key in ((), (1,), (1, 2), (2, 1), (10**12,)):
                shard = shard_of(key, count)
                assert 0 <= shard < count
                assert shard == shard_of(tuple(key), count)

    def test_shard_of_distinguishes_order(self):
        hits = sum(shard_of((a, b), 8) != shard_of((b, a), 8) for a, b in [(1, 2), (3, 9), (5, 11), (2, 7)])
        assert hits >= 2  # hash of a tuple is order-sensitive

    def test_shard_rows_partitions_exactly(self):
        rows = [(i, i % 5) for i in range(100)]
        shards = shard_rows(rows, (1,), 4)
        assert sum(len(shard) for shard in shards) == len(rows)
        assert sorted(row for shard in shards for row in shard) == sorted(rows)
        # Same key column => same shard, always.
        owner = {}
        for index, shard in enumerate(shards):
            for row in shard:
                assert owner.setdefault(row[1], index) == index

    def test_shard_rows_empty_positions_round_robins(self):
        rows = [(i,) for i in range(10)]
        shards = shard_rows(rows, (), 3)
        assert sorted(row for shard in shards for row in shard) == rows

    def test_hash_partition_union_is_exact(self):
        store = ColumnarRelation(2, [(i, i * 3 % 7) for i in range(50)])
        shards = hash_partition(store, (1,), 3)
        try:
            rows = [tuple(row) for shard in shards for row in shard.rows()]
            assert sorted(rows) == sorted(tuple(row) for row in store)
        finally:
            for shard in shards:
                shard.unlink()


# -- shared memory ---------------------------------------------------------


class TestSharedMemory:
    def test_columns_roundtrip_zero_copy(self):
        rows = [(1, 2), (3, 4), (5, 6)]
        block = SharedColumns.create(2, rows)
        try:
            attached = SharedColumns.attach(block.name)
            assert attached.arity == 2 and attached.row_count == 3
            assert [tuple(row) for row in attached.rows()] == rows
            columns = attached.columns()
            assert list(columns[0]) == [1, 3, 5]
            del columns
            attached.close()
        finally:
            block.unlink()

    def test_columns_empty_and_zero_arity(self):
        empty = SharedColumns.create(2, [])
        wide = SharedColumns.create(0, [(), ()])
        try:
            assert list(empty.rows()) == []
            assert list(wide.rows()) == [(), ()]
        finally:
            empty.unlink()
            wide.unlink()

    def test_fact_block_roundtrip_with_nulls(self):
        records = [(0, (5, encode_null(Null(7)))), (1, ()), (0, (2, 3))]
        block = SharedFactBlock.create(records)
        try:
            attached = SharedFactBlock.attach(block.name)
            assert list(attached.records()) == records
            attached.close()
        finally:
            block.unlink()
        decoded = decode_value(encode_null(Null(7)), lambda _: None)
        assert decoded == Null(7)
        assert decode_value(3, {3: "c"}.__getitem__) == "c"

    def test_unlink_is_idempotent_and_attachers_cannot_unlink(self):
        block = SharedColumns.create(1, [(1,)])
        attached = SharedColumns.attach(block.name)
        attached.unlink()  # non-owner: must be a no-op
        reattached = SharedColumns.attach(block.name)
        assert reattached.row_count == 1
        reattached.close()
        attached.close()
        block.unlink()
        block.unlink()  # second unlink: no error

    def test_registry_backstop_unlinks_strays(self):
        before = len(SEGMENTS)
        block = SharedColumns.create(1, [(9,)])
        assert len(SEGMENTS) == before + 1
        assert block.name in active_segments()
        # Simulate a crashed operation that never reached its finally.
        count = SEGMENTS.unlink_all()
        assert count >= 1
        assert active_segments() == set()
        block.close()  # release the mapping the stray handle still holds


# -- the worker pool -------------------------------------------------------


class TestWorkerPool:
    def test_ping_broadcast_and_scatter(self, pool):
        responses = pool.broadcast("ping", {"value": 21}, timeout=30.0)
        assert responses == [{"value": 21}, {"value": 21}]
        scattered = pool.scatter("ping", [{"value": 1}, {"value": 2}], timeout=30.0)
        assert scattered == [{"value": 1}, {"value": 2}]

    def test_scatter_requires_one_payload_per_worker(self, pool):
        with pytest.raises(ValueError):
            pool.scatter("ping", [{"value": 1}])

    def test_task_error_is_reported_not_fatal(self, pool):
        with pytest.raises(ParallelExecutionError, match="no-such-task"):
            pool.broadcast("no-such-task", {}, timeout=30.0)

    def test_task_error_drains_replies_pool_stays_synchronized(self, pool):
        """The stale-reply regression: one worker's task error must not
        leave the other workers' replies stuck in their pipes, or the next
        operation would consume them as its own results."""
        # Worker 0 fails (non-numeric sleep payload), worker 1 succeeds.
        with pytest.raises(ParallelExecutionError, match="ValueError"):
            pool.scatter("sleep", ["not-a-number", 0.0], timeout=30.0)
        assert pool.alive  # a task error is not a crash
        # Replies of the next operations align with their own payloads.
        assert pool.scatter("ping", [{"value": 1}, {"value": 2}], timeout=30.0) == [
            {"value": 1},
            {"value": 2},
        ]
        with pytest.raises(ParallelExecutionError, match="no-such-task"):
            pool.broadcast("no-such-task", {}, timeout=30.0)
        assert pool.broadcast("ping", {"value": 7}, timeout=30.0) == [
            {"value": 7},
            {"value": 7},
        ]

    def test_wedged_worker_hits_deadline_never_hangs(self, pool):
        """A worker that is alive but stalled must surface as a crash once
        the per-operation deadline passes, not block the master forever."""
        assert DEFAULT_TASK_TIMEOUT is not None and DEFAULT_TASK_TIMEOUT > 0
        started = time.monotonic()
        with pytest.raises(WorkerCrashed, match="timed out"):
            pool.broadcast("sleep", 60.0, timeout=0.5)
        assert time.monotonic() - started < 30.0
        assert not pool.alive  # deadline breach breaks the pool → re-fork

    def test_sigkill_raises_worker_crashed_and_never_hangs(self, pool):
        victim = pool.processes[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10.0)
        started = time.monotonic()
        with pytest.raises(WorkerCrashed):
            pool.broadcast("ping", {"value": 1}, timeout=30.0)
        assert time.monotonic() - started < 20.0
        assert not pool.alive
        # A broken pool refuses further work instead of deadlocking.
        with pytest.raises(ParallelExecutionError):
            pool.broadcast("ping", {"value": 1}, timeout=5.0)

    def test_env_timeout_parsing(self, monkeypatch):
        from repro.parallel.pool import _env_timeout

        monkeypatch.delenv("X_REPRO_TIMEOUT", raising=False)
        assert _env_timeout("X_REPRO_TIMEOUT", 300.0) == 300.0
        monkeypatch.setenv("X_REPRO_TIMEOUT", "12.5")
        assert _env_timeout("X_REPRO_TIMEOUT", 300.0) == 12.5
        monkeypatch.setenv("X_REPRO_TIMEOUT", "0")  # <= 0 disables
        assert _env_timeout("X_REPRO_TIMEOUT", 300.0) is None
        monkeypatch.setenv("X_REPRO_TIMEOUT", "garbage")
        assert _env_timeout("X_REPRO_TIMEOUT", 300.0) == 300.0

    def test_partial_fork_failure_reaps_started_workers(self):
        """If the Nth fork fails with OSError, the workers already started
        must be shut down before the error propagates (the finalizer is
        not registered yet at that point)."""
        import multiprocessing

        ontology = parse_ontology("edge(x, y) -> reach(x, y)", name="pool-test")
        instance = Instance(Database([Fact("edge", ("a", "b"))]))
        fork_process = multiprocessing.get_context("fork").Process
        original_start = fork_process.start
        started: list = []

        def flaky_start(process):
            if started:
                raise OSError("Resource temporarily unavailable")
            started.append(process)
            return original_start(process)

        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(fork_process, "start", flaky_start)
            with pytest.raises(OSError):
                WorkerPool(2, WorkerBootstrap(ontology, instance, codegen=False))
        (survivor,) = started
        survivor.join(timeout=10.0)
        assert not survivor.is_alive()

    def test_close_terminates_workers(self, pool):
        processes = list(pool.processes)
        pool.close()
        for process in processes:
            process.join(timeout=10.0)
            assert not process.is_alive()
        assert not pool.alive


# -- parallel chase == sequential chase ------------------------------------


class TestParallelChase:
    def test_university_chase_matches_sequential(self):
        database = Database(generate_university_database(40, seed=7))
        ontology = university_ontology()
        sequential = chase(Instance(database), ontology, max_null_depth=3)
        run = parallel_chase(Database(database.facts()), ontology, 2, max_null_depth=3)
        try:
            assert _null_free(run.result.instance) == _null_free(sequential.instance)
            assert run.result.fired_triggers == sequential.fired_triggers
            assert run.boundary_facts > 0  # multi-round boundary exchange
        finally:
            run.pool.close()

    def test_worker_crash_mid_chase_raises_and_cleans_up(self):
        database = Database(generate_university_database(60, seed=3))
        ontology = university_ontology()
        crashes_before = PARALLEL_STATS.snapshot().get("worker_crashes", 0)

        original_broadcast = WorkerPool.broadcast

        def sabotage(self, task, payload, timeout=None):
            if task == "chase_round":
                os.kill(self.processes[0].pid, signal.SIGKILL)
            return original_broadcast(self, task, payload, timeout=timeout)

        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(WorkerPool, "broadcast", sabotage)
            with pytest.raises(ParallelExecutionError):
                parallel_chase(database, ontology, 2, max_null_depth=3)
        assert PARALLEL_STATS.snapshot().get("worker_crashes", 0) > crashes_before
        assert active_segments() == set()


# -- reduce projections and sharded semi-joins -----------------------------


class TestParallelReduce:
    def test_projections_match_sequential(self):
        from repro.enumeration.reduction import component_projection

        database = Database(generate_university_database(40, seed=7))
        omq = university_omq()
        engine = QueryEngine(university_ontology(), database, workers=2, incremental=False)
        try:
            prepared = engine.prepare(omq)
            materialization = engine._materialization(database)
            materialization.chase_for(prepared)
            worker_pool = materialization.ensure_pool()
            assert worker_pool is not None
            projections = parallel_projections(
                worker_pool, prepared.decomposition, keep_nulls=False
            )
            assert projections is not None
            instance = materialization.chase.instance
            for index, component in enumerate(prepared.decomposition.components):
                expected = component_projection(
                    component, instance, keep_nulls=False, interned=instance.interned
                )
                assert projections[index] == expected
        finally:
            engine.shutdown()

    def test_filter_by_keys_matches_sequential(self, pool):
        store = ColumnarRelation(2, [(i, i % 11) for i in range(200)])
        keys = {(value,) for value in range(0, 11, 2)}
        parallel = parallel_filter_by_keys(pool, store, (1,), keys)
        assert parallel is not None
        assert sorted(parallel) == sorted(store.filter_by_keys((1,), keys))

    def test_filter_requires_key_positions(self, pool):
        store = ColumnarRelation(1, [(1,)])
        assert parallel_filter_by_keys(pool, store, (), set()) is None

    def test_maybe_parallel_filter_respects_threshold_and_ambient_pool(self, pool):
        store = ColumnarRelation(2, [(i, i % 3) for i in range(100)])
        keys = {(0,), (1,)}
        # Small store: below the threshold, always sequential.
        assert maybe_parallel_filter(store, (1,), keys) is None
        from repro.parallel import runtime

        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(runtime, "PARALLEL_SEMIJOIN_THRESHOLD", 10)
            # Above threshold but no ambient pool: still sequential.
            assert maybe_parallel_filter(store, (1,), keys) is None
            with sharded_semijoins(pool):
                surviving = maybe_parallel_filter(store, (1,), keys)
            assert surviving is not None
            assert sorted(surviving) == sorted(store.filter_by_keys((1,), keys))


# -- engine integration ----------------------------------------------------


class TestEngineIntegration:
    def test_execute_matches_sequential_engine(self):
        database = Database(generate_university_database(40, seed=7))
        omq = university_omq()
        parallel_engine = QueryEngine(
            university_ontology(), database, workers=2, incremental=False
        )
        sequential_engine = QueryEngine(
            university_ontology(), database, workers=1, incremental=False
        )
        try:
            assert parallel_engine.execute(omq) == sequential_engine.execute(omq)
            assert parallel_engine.snapshot().parallel_chases == 1
        finally:
            parallel_engine.shutdown()

    def test_execute_batch_fans_out_and_matches(self):
        database = Database(generate_university_database(40, seed=7))
        omq = university_omq()
        engine = QueryEngine(university_ontology(), database, workers=2, incremental=False)
        reference = QueryEngine(university_ontology(), database, workers=1)
        try:
            batch = [omq, omq, omq]
            expected = reference.execute(omq)
            assert engine.execute_batch(batch) == [expected] * 3
            stats = engine.snapshot()
            assert stats.parallel_chases == 1
            assert stats.parallel_tasks > 0
        finally:
            engine.shutdown()

    def test_explicit_single_worker_skips_process_path(self):
        """``execute_batch(..., max_workers=1)`` is a contract for the
        sequential worker loop even when the engine's ``workers`` option
        would fan the batch out across processes."""
        database = Database(generate_university_database(40, seed=7))
        omq = university_omq()
        engine = QueryEngine(university_ontology(), database, workers=2, incremental=False)
        reference = QueryEngine(university_ontology(), database, workers=1)
        try:
            expected = reference.execute(omq)
            calls: list = []

            def record(plans, resolved):
                calls.append(plans)
                return None

            with pytest.MonkeyPatch.context() as patcher:
                patcher.setattr(engine, "_execute_batch_processes", record)
                assert engine.execute_batch([omq, omq], max_workers=1) == [expected] * 2
                assert calls == []  # never consulted
                assert engine.execute_batch([omq, omq], max_workers=0) == [expected] * 2
                assert calls == []
                assert engine.execute_batch([omq, omq]) == [expected] * 2
                assert len(calls) == 1  # default still fans out
        finally:
            engine.shutdown()

    def test_fork_oserror_falls_back_to_sequential(self):
        """A fork that fails with OSError (process/fd/memory exhaustion)
        degrades to the sequential path instead of crashing the query."""
        database = Database(generate_university_database(40, seed=7))
        omq = university_omq()
        expected = QueryEngine(university_ontology(), database, workers=1).execute(omq)

        def exhausted(self, *args, **kwargs):
            raise OSError("Resource temporarily unavailable")

        engine = QueryEngine(university_ontology(), database, workers=2, incremental=False)
        try:
            with pytest.MonkeyPatch.context() as patcher:
                patcher.setattr(WorkerPool, "__init__", exhausted)
                assert engine.execute(omq) == expected
                assert engine.execute_batch([omq, omq]) == [expected] * 2
            assert engine.snapshot().parallel_chases == 0
        finally:
            engine.shutdown()

    def test_mutation_reforks_pool_and_stays_correct(self):
        database = Database(generate_university_database(40, seed=7))
        omq = university_omq()
        engine = QueryEngine(university_ontology(), database, workers=2, incremental=False)
        reference = QueryEngine(university_ontology(), database, workers=1, incremental=False)
        try:
            assert engine.execute(omq) == reference.execute(omq)
            database.add(Fact("enrolled", ("s_new", "c_1")))
            assert engine.execute(omq) == reference.execute(omq)
            assert engine.snapshot().parallel_chases == 2  # pool re-forked
        finally:
            engine.shutdown()

    def test_crash_falls_back_to_sequential_answers(self):
        database = Database(generate_university_database(40, seed=7))
        omq = university_omq()
        expected = QueryEngine(university_ontology(), database, workers=1).execute(omq)

        original_broadcast = WorkerPool.broadcast

        def sabotage(self, task, payload, timeout=None):
            if task == "chase_round":
                for process in self.processes:
                    os.kill(process.pid, signal.SIGKILL)
            return original_broadcast(self, task, payload, timeout=timeout)

        engine = QueryEngine(university_ontology(), database, workers=2, incremental=False)
        try:
            with pytest.MonkeyPatch.context() as patcher:
                patcher.setattr(WorkerPool, "broadcast", sabotage)
                assert engine.execute(omq) == expected  # sequential fallback
            stats = engine.snapshot()
            assert stats.parallel_chases == 0
            assert stats.worker_crashes > 0
        finally:
            engine.shutdown()

    def test_interrupted_batch_leaves_no_segments(self):
        """The KeyboardInterrupt/timeout regression: an aborted batch must
        not strand shared-memory segments (the /dev/shm leak class)."""
        database = Database(generate_university_database(40, seed=7))
        omq = university_omq()
        engine = QueryEngine(university_ontology(), database, workers=2, incremental=False)

        original_scatter = WorkerPool.scatter

        def interrupt(self, task, payloads, timeout=None):
            if task == "execute":
                raise KeyboardInterrupt
            return original_scatter(self, task, payloads, timeout=timeout)

        try:
            with pytest.MonkeyPatch.context() as patcher:
                patcher.setattr(WorkerPool, "scatter", interrupt)
                with pytest.raises(KeyboardInterrupt):
                    engine.execute_batch([omq, omq])
        finally:
            engine.shutdown()
        SEGMENTS.unlink_all()  # the atexit backstop, invoked eagerly here
        assert active_segments() == set()


# -- configuration plumbing ------------------------------------------------


class TestConfiguration:
    def test_workers_default_and_scope(self):
        base = default_workers()
        with use_workers(4):
            assert default_workers() == 4
            assert ExecutionOptions().resolved_workers() == 4
            assert ExecutionOptions(workers=2).resolved_workers() == 2
        assert default_workers() == base

    def test_engine_workers_resolution(self):
        database = Database([Fact("edge", ("a", "b"))])
        ontology = parse_ontology("edge(x, y) -> reach(x, y)", name="t")
        assert QueryEngine(ontology, database).workers is None or isinstance(
            QueryEngine(ontology, database).workers, int
        )
        assert QueryEngine(ontology, database, workers=3).workers == 3
        with use_workers(2):
            engine = QueryEngine(ontology, database)
            assert engine._effective_workers() == 2

    def test_service_config_threads_workers_through(self):
        from repro.server.service import ServiceConfig

        options = ServiceConfig(workers=3).execution_options()
        assert options.workers == 3
        assert ServiceConfig().execution_options().workers is None

    def test_cli_exposes_workers_flag(self):
        from repro.cli import build_parser

        parser = build_parser()
        run_args = parser.parse_args(["run", "--workers", "4"])
        assert run_args.workers == 4
        serve_args = parser.parse_args(["serve", "--workers", "2"])
        assert serve_args.workers == 2

    def test_single_worker_engine_never_forks(self):
        database = Database(generate_university_database(20, seed=1))
        omq = university_omq()
        engine = QueryEngine(university_ontology(), database, workers=1, incremental=False)
        engine.execute(omq)
        stats = engine.snapshot()
        assert stats.parallel_chases == 0
