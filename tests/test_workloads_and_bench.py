"""Tests for the workload generators and the benchmark harness helpers."""

import pytest

from repro.bench import (
    DelayProfile,
    format_table,
    linear_fit,
    measure_enumeration,
    print_table,
    scaling_exponent,
    time_call,
)
from repro.core import CompleteAnswerEnumerator, MinimalPartialAnswerEnumerator
from repro.workloads import (
    generate_office_database,
    generate_university_database,
    office_omq,
    random_graph,
    random_sparse_matrix,
    university_omq,
)
from repro.workloads.office import OfficeProfile
from repro.workloads.university import UniversityProfile


class TestOfficeWorkload:
    def test_omq_structure(self):
        omq = office_omq()
        assert omq.is_acyclic() and omq.is_free_connex_acyclic() and omq.is_eli()

    def test_database_scales_with_researchers(self):
        small = generate_office_database(10, seed=1)
        large = generate_office_database(100, seed=1)
        assert len(large) > len(small)
        omq = office_omq()
        omq.validate_database(small)

    def test_generation_is_deterministic(self):
        assert generate_office_database(20, seed=5).facts() == generate_office_database(
            20, seed=5
        ).facts()
        assert generate_office_database(20, seed=5).facts() != generate_office_database(
            20, seed=6
        ).facts()

    def test_profile_extremes(self):
        complete = generate_office_database(
            30, profile=OfficeProfile(1.0, 1.0), seed=2
        )
        sparse = generate_office_database(30, profile=OfficeProfile(0.0, 0.0), seed=2)
        assert len(complete) > len(sparse)
        omq = office_omq()
        # Fully complete databases have no wildcard answers.
        from repro.core import WILDCARD

        answers = list(MinimalPartialAnswerEnumerator(omq, complete))
        assert answers and all(WILDCARD not in a for a in answers)


class TestUniversityWorkload:
    def test_omq_structure(self):
        omq = university_omq()
        assert omq.is_acyclic() and omq.is_free_connex_acyclic() and omq.is_eli()

    def test_database_is_valid_and_scales(self):
        omq = university_omq()
        database = generate_university_database(50, seed=3)
        omq.validate_database(database)
        bigger = generate_university_database(200, seed=3)
        assert len(bigger) > len(database)

    def test_profile_controls_advisors(self):
        none = generate_university_database(
            40, profile=UniversityProfile(advisor_probability=0.0), seed=1
        )
        assert not any(f.relation == "HasAdvisor" for f in none)


class TestGraphAndMatrixGenerators:
    def test_random_graph_is_simple(self):
        edges = random_graph(10, 20, seed=1)
        assert len(edges) <= 20
        assert all(u != v for u, v in edges)
        assert len({frozenset(e) for e in edges}) == len(edges)

    def test_random_matrix_density(self):
        entries = random_sparse_matrix(10, 0.2, seed=1)
        assert len(entries) == 20
        assert all(0 <= i < 10 and 0 <= j < 10 for i, j in entries)


class TestBenchHelpers:
    def test_time_call(self):
        elapsed, result = time_call(sum, [1, 2, 3])
        assert result == 6
        assert elapsed >= 0

    def test_measure_enumeration(self, office_omq, office_database):
        profile = measure_enumeration(
            lambda: CompleteAnswerEnumerator(office_omq, office_database)
        )
        assert profile.answer_count == 1
        assert profile.preprocessing_seconds > 0
        assert profile.max_delay >= profile.mean_delay >= 0

    def test_measure_enumeration_truncates(self, office_omq, office_database):
        profile = measure_enumeration(
            lambda: MinimalPartialAnswerEnumerator(office_omq, office_database),
            max_answers=2,
        )
        assert profile.answer_count == 2

    def test_delay_profile_percentile(self):
        profile = DelayProfile(0.0, 4, 1.0, delays=[0.1, 0.2, 0.3, 0.4])
        assert profile.percentile_delay(0.5) == 0.3
        assert DelayProfile(0.0, 0, 0.0).percentile_delay(0.5) == 0.0

    def test_format_table(self):
        text = format_table(["n", "time"], [(10, 0.5), (100, 1.0)], title="demo")
        assert "demo" in text and "100" in text

    def test_print_table(self, capsys):
        print_table(["a"], [(1,)])
        assert "1" in capsys.readouterr().out

    def test_linear_fit(self):
        slope, intercept, r2 = linear_fit([1, 2, 3, 4], [2, 4, 6, 8])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(0.0)
        assert r2 == pytest.approx(1.0)

    def test_linear_fit_requires_points(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])

    def test_scaling_exponent(self):
        xs = [10, 20, 40, 80]
        linear = [x * 3.0 for x in xs]
        quadratic = [x * x / 10 for x in xs]
        assert scaling_exponent(xs, linear) == pytest.approx(1.0, abs=0.05)
        assert scaling_exponent(xs, quadratic) == pytest.approx(2.0, abs=0.05)
