"""Tests for semi-joins, the full reducer and Yannakakis evaluation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq import Atom, Variable, parse_query
from repro.cq.homomorphism import evaluate
from repro.cq.jointree import build_join_tree
from repro.data import Fact, Instance
from repro.yannakakis import (
    atom_relation,
    boolean_eval,
    decompose_free_connex,
    full_reducer,
    semijoin,
    single_test,
)
from repro.yannakakis.decomposition import NotFreeConnexError
from repro.yannakakis.evaluation import NotAcyclicError

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def chain_instance() -> Instance:
    return Instance(
        [
            Fact("R", ("a", "b")),
            Fact("R", ("a2", "b2")),
            Fact("S", ("b", "c")),
            Fact("T", ("c", "d")),
        ]
    )


class TestAtomRelation:
    def test_materialisation(self):
        relation = atom_relation(Atom("R", (X, Y)), chain_instance())
        assert len(relation) == 2
        assert relation.variables == (X, Y)

    def test_constants_act_as_selection(self):
        relation = atom_relation(Atom("R", ("a", Y)), chain_instance())
        assert relation.tuples == {("b",)}

    def test_repeated_variables_filter(self):
        instance = Instance([Fact("R", ("a", "a")), Fact("R", ("a", "b"))])
        relation = atom_relation(Atom("R", (X, X)), instance)
        assert relation.tuples == {("a",)}

    def test_projection_and_index(self):
        relation = atom_relation(Atom("R", (X, Y)), chain_instance())
        assert relation.project([Y]) == {("b",), ("b2",)}
        index = relation.index_on([X])
        assert set(index) == {("a",), ("a2",)}

    def test_assignment_roundtrip(self):
        relation = atom_relation(Atom("R", (X, Y)), chain_instance())
        row = next(iter(relation))
        assignment = relation.assignment(row)
        assert set(assignment) == {X, Y}


class TestSemijoin:
    def test_semijoin_removes_dangling(self):
        left = atom_relation(Atom("R", (X, Y)), chain_instance())
        right = atom_relation(Atom("S", (Y, Z)), chain_instance())
        changed = semijoin(left, right)
        assert changed
        assert left.tuples == {("a", "b")}

    def test_semijoin_without_shared_variables(self):
        left = atom_relation(Atom("R", (X, Y)), chain_instance())
        empty = atom_relation(Atom("Missing", (Z,)), chain_instance())
        assert semijoin(left, empty)
        assert left.is_empty()

    def test_full_reducer_gives_global_consistency(self):
        query = parse_query("q(x, y, z) :- R(x, y), S(y, z)")
        atoms = list(query.atoms)
        tree = build_join_tree(atoms)
        relations = {a: atom_relation(a, chain_instance()) for a in atoms}
        full_reducer(tree, relations)
        answers = evaluate(query, chain_instance())
        for atom, relation in relations.items():
            for row in relation.tuples:
                assignment = relation.assignment(row)
                assert any(
                    all(
                        answer[query.answer_variables.index(v)] == value
                        for v, value in assignment.items()
                    )
                    for answer in answers
                )

    def test_full_reducer_empties_everything_when_join_is_empty(self):
        instance = Instance([Fact("R", ("a", "b")), Fact("S", ("x", "y"))])
        query = parse_query("q(x, z) :- R(x, y), S(y, z)")
        atoms = list(query.atoms)
        tree = build_join_tree(atoms)
        relations = {a: atom_relation(a, instance) for a in atoms}
        full_reducer(tree, relations)
        assert all(rel.is_empty() for rel in relations.values())


class TestBooleanEvalAndSingleTest:
    def test_boolean_eval_true_and_false(self):
        query = parse_query("q() :- R(x, y), S(y, z), T(z, u)")
        assert boolean_eval(query, chain_instance())
        query_false = parse_query("q() :- R(x, y), T(y, z)")
        assert not boolean_eval(query_false, chain_instance())

    def test_boolean_eval_disconnected(self):
        query = parse_query("q() :- R(x, y), T(u, w)")
        assert boolean_eval(query, chain_instance())

    def test_boolean_eval_rejects_cyclic(self):
        query = parse_query("q() :- R(x, y), S(y, z), T(z, x)")
        with pytest.raises(NotAcyclicError):
            boolean_eval(query, chain_instance())

    def test_single_test_matches_evaluate(self):
        query = parse_query("q(x, z) :- R(x, y), S(y, z)")
        answers = evaluate(query, chain_instance())
        assert single_test(query, chain_instance(), ("a", "c"))
        assert ("a", "c") in answers
        assert not single_test(query, chain_instance(), ("a2", "c"))

    def test_single_test_wrong_arity(self):
        query = parse_query("q(x) :- R(x, y)")
        with pytest.raises(Exception):
            single_test(query, chain_instance(), ("a", "b"))

    def test_single_test_repeated_head_variables(self):
        query = parse_query("q(x, x) :- R(x, y)")
        assert single_test(query, chain_instance(), ("a", "a"))
        assert not single_test(query, chain_instance(), ("a", "a2"))


class TestFreeConnexDecomposition:
    def test_office_query_decomposition(self):
        query = parse_query("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
        decomposition = decompose_free_connex(query)
        for component in decomposition.components:
            assert set(component.answer_variables) <= component.root.variables()

    def test_components_partition_atoms(self):
        query = parse_query("q(x, y) :- R(x, a), S(a, x), T(y, b)")
        decomposition = decompose_free_connex(query)
        covered = [atom for c in decomposition.components for atom in c.atoms]
        assert sorted(map(repr, covered)) == sorted(map(repr, query.atoms))

    def test_components_share_only_answer_variables(self):
        query = parse_query("q(x, y) :- R(x, a), S(x, y), T(y, b)")
        decomposition = decompose_free_connex(query)
        for i, left in enumerate(decomposition.components):
            left_vars = {v for atom in left.atoms for v in atom.variables()}
            for right in decomposition.components[i + 1 :]:
                right_vars = {v for atom in right.atoms for v in atom.variables()}
                shared = left_vars & right_vars
                assert shared <= set(query.answer_variables)

    def test_not_free_connex_raises(self):
        query = parse_query("q(x, y) :- R(x, z), S(z, y)")
        with pytest.raises(NotFreeConnexError):
            decompose_free_connex(query)

    def test_boolean_query_decomposition(self):
        query = parse_query("q() :- R(x, y), S(y, z)")
        decomposition = decompose_free_connex(query)
        assert all(c.answer_variables == () for c in decomposition.components)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_boolean_eval_matches_reference_evaluator(seed):
    """Property: Yannakakis Boolean evaluation agrees with the backtracking
    evaluator on random acyclic queries and instances."""
    rng = random.Random(seed)
    constants = ["a", "b", "c", "d", "e"]
    facts = []
    for _ in range(rng.randint(1, 12)):
        facts.append(Fact("R", (rng.choice(constants), rng.choice(constants))))
        facts.append(Fact("S", (rng.choice(constants), rng.choice(constants))))
    for _ in range(rng.randint(0, 5)):
        facts.append(Fact("A", (rng.choice(constants),)))
    instance = Instance(facts)
    queries = [
        "q() :- R(x, y), S(y, z)",
        "q() :- R(x, y), A(y)",
        "q() :- R(x, y), S(y, z), A(z)",
        "q() :- A(x), R(x, y)",
    ]
    for text in queries:
        query = parse_query(text)
        assert boolean_eval(query, instance) == bool(evaluate(query, instance))
