"""Tests for the OMQ class and reference certain-answer evaluation."""

import pytest

from repro import Database, Fact, parse_ontology, parse_query
from repro.core import OMQ
from repro.data.schema import SchemaError
from repro.tgds.ontology import Ontology


class TestOMQConstruction:
    def test_from_parts_infers_schema(self, office_omq):
        assert "HasOffice" in office_omq.data_schema
        assert "Researcher" in office_omq.data_schema
        assert office_omq.arity == 3

    def test_structural_properties(self, office_omq):
        assert office_omq.is_acyclic()
        assert office_omq.is_free_connex_acyclic()
        assert office_omq.is_weakly_acyclic()
        assert office_omq.is_self_join_free()
        assert office_omq.is_guarded()
        assert office_omq.is_eli()

    def test_largeoffice_ontology_is_guarded(self, largeoffice_omq):
        assert largeoffice_omq.is_guarded()

    def test_two_frontier_variables_make_an_ontology_non_eli(self):
        ontology = parse_ontology(
            "OfficeMate(x, y) -> HasOffice(x, z), HasOffice(y, z)"
        )
        query = parse_query("q(x, y) :- HasOffice(x, y)")
        omq = OMQ.from_parts(ontology, query)
        assert omq.is_guarded()
        assert not omq.is_eli()

    def test_validate_database(self, office_omq, office_database):
        office_omq.validate_database(office_database)
        bad = Database([Fact("Unknown", ("a",))])
        with pytest.raises(SchemaError):
            office_omq.validate_database(bad)

    def test_explicit_data_schema(self):
        ontology = parse_ontology("A(x) -> B(x)")
        query = parse_query("q(x) :- B(x)")
        from repro.data.schema import Schema

        omq = OMQ(ontology, Schema({"A": 1}), query)
        assert "A" in omq.data_schema
        assert "B" not in omq.data_schema


class TestCertainAnswers:
    def test_office_example(self, office_omq, office_database):
        assert office_omq.certain_answers(office_database) == {
            ("mary", "room1", "main1")
        }
        assert not office_omq.is_empty_on(office_database)

    def test_empty_database(self, office_omq):
        assert office_omq.certain_answers(Database()) == set()
        assert office_omq.is_empty_on(Database())

    def test_ontology_derives_new_answers(self):
        # The unary projection is entailed by the ontology even though the
        # office itself is anonymous.
        ontology = parse_ontology(
            "Employee(x) -> WorksFor(x, y)\nWorksFor(x, y) -> Employed(x)"
        )
        query = parse_query("q(x) :- Employed(x)")
        omq = OMQ.from_parts(ontology, query)
        database = Database([Fact("Employee", ("ann",))])
        assert omq.certain_answers(database) == {("ann",)}

    def test_answers_never_contain_nulls(self, office_omq, office_database):
        for answer in office_omq.certain_answers(office_database):
            for value in answer:
                assert value in office_database.adom()

    def test_empty_ontology_reduces_to_cq_evaluation(self):
        query = parse_query("q(x, y) :- R(x, y)")
        omq = OMQ.from_parts(Ontology(()), query)
        database = Database([Fact("R", ("a", "b"))])
        assert omq.certain_answers(database) == {("a", "b")}

    def test_datalog_ontology_materialises(self):
        ontology = parse_ontology("R(x, y) -> T(x, y)\nT(x, y), T(y, z) -> T(x, z)")
        query = parse_query("q(x, y) :- T(x, y)")
        omq = OMQ.from_parts(ontology, query)
        database = Database(
            [Fact("R", ("a", "b")), Fact("R", ("b", "c")), Fact("R", ("c", "d"))]
        )
        answers = omq.certain_answers(database)
        assert ("a", "d") in answers
        assert len(answers) == 6
