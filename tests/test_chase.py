"""Tests for the chase, the query-directed chase and Horn saturation."""

import pytest

from repro import Database, Fact, parse_ontology, parse_query
from repro.chase import chase, horn_saturation, query_directed_chase
from repro.chase.standard import ChaseNotTerminating, certain_facts
from repro.cq.homomorphism import evaluate, find_homomorphism
from repro.data.terms import is_null


class TestStandardChase:
    def test_full_tgds_reach_fixpoint(self):
        ontology = parse_ontology("R(x, y) -> R(y, x)\nR(x, y) -> A(x)")
        database = Database([Fact("R", ("a", "b"))])
        result = chase(database, ontology)
        assert Fact("R", ("b", "a")) in result.instance
        assert Fact("A", ("a",)) in result.instance
        assert Fact("A", ("b",)) in result.instance
        assert not result.truncated

    def test_existentials_introduce_nulls(self):
        ontology = parse_ontology("Researcher(x) -> HasOffice(x, y)")
        database = Database([Fact("Researcher", ("mary",))])
        result = chase(database, ontology)
        offices = [f for f in result.instance if f.relation == "HasOffice"]
        assert len(offices) == 1
        assert is_null(offices[0].args[1])

    def test_restricted_chase_does_not_fire_satisfied_heads(self):
        ontology = parse_ontology("Researcher(x) -> HasOffice(x, y)")
        database = Database(
            [Fact("Researcher", ("mary",)), Fact("HasOffice", ("mary", "room1"))]
        )
        result = chase(database, ontology)
        assert len(result.nulls()) == 0

    def test_oblivious_chase_fires_anyway(self):
        ontology = parse_ontology("Researcher(x) -> HasOffice(x, y)")
        database = Database(
            [Fact("Researcher", ("mary",)), Fact("HasOffice", ("mary", "room1"))]
        )
        result = chase(database, ontology, oblivious=True)
        assert len(result.nulls()) == 1

    def test_chase_result_is_a_model(self):
        ontology = parse_ontology(
            "Researcher(x) -> HasOffice(x, y)\nHasOffice(x, y) -> Office(y)\n"
            "Office(x) -> InBuilding(x, y)"
        )
        database = Database([Fact("Researcher", ("mary",))])
        result = chase(database, ontology)
        for tgd in ontology:
            body_query = tgd.body_query()
            head_query = tgd.head_query()
            for hom in [
                h
                for h in _all_body_matches(body_query, result.instance)
            ]:
                frontier = {v: hom[v] for v in tgd.frontier_variables()}
                assert find_homomorphism(head_query, result.instance, partial=frontier)

    def test_infinite_chase_is_truncated_by_depth(self):
        ontology = parse_ontology("A(x) -> R(x, y), A(y)")
        database = Database([Fact("A", ("a",))])
        result = chase(database, ontology, max_null_depth=3)
        assert result.truncated
        assert max(result.null_depth.values()) == 3

    def test_fact_budget_raises(self):
        ontology = parse_ontology("A(x) -> R(x, y), A(y)")
        database = Database([Fact("A", ("a",))])
        with pytest.raises(ChaseNotTerminating):
            chase(database, ontology, max_facts=10)

    def test_database_part_and_certain_facts(self):
        ontology = parse_ontology("Researcher(x) -> HasOffice(x, y)")
        database = Database([Fact("Researcher", ("mary",))])
        result = chase(database, ontology)
        assert certain_facts(result) == {Fact("Researcher", ("mary",))}
        assert result.database_part().facts() == {Fact("Researcher", ("mary",))}

    def test_null_blocks_group_connected_nulls(self):
        ontology = parse_ontology("A(x) -> R(x, y), S(y, z)")
        database = Database([Fact("A", ("a",)), Fact("A", ("b",))])
        result = chase(database, ontology)
        blocks = result.null_blocks()
        assert len(blocks) == 2
        for nulls, anchors in blocks:
            assert len(nulls) == 2
            assert len(anchors) == 1

    def test_empty_ontology(self):
        from repro.tgds.ontology import Ontology

        database = Database([Fact("A", ("a",))])
        result = chase(database, Ontology(()))
        assert result.instance.facts() == database.facts()


def _all_body_matches(body_query, instance):
    from repro.cq.homomorphism import all_homomorphisms

    if not body_query.atoms:
        return [{}]
    return list(all_homomorphisms(body_query.boolean_version(), instance))


class TestFreshNullContinuation:
    """Regression: null labels never alias across runs or instance copies."""

    OFFICE = "Researcher(x) -> HasOffice(x, y)\nOffice(x) -> InBuilding(x, y)"

    def test_independent_chase_runs_never_alias_labels(self):
        ontology = parse_ontology(self.OFFICE)
        first = chase(Database([Fact("Researcher", ("mary",))]), ontology)
        second = chase(Database([Fact("Researcher", ("mary",))]), ontology)
        assert first.nulls() and second.nulls()
        assert not ({n.label for n in first.nulls()} & {n.label for n in second.nulls()})

    def test_chase_of_database_and_its_copy_never_alias_labels(self):
        ontology = parse_ontology(self.OFFICE)
        database = Database([Fact("Researcher", ("mary",))])
        duplicate = database.copy()
        first = chase(database, ontology)
        second = chase(duplicate, ontology)
        assert not ({n.label for n in first.nulls()} & {n.label for n in second.nulls()})

    def test_instance_copies_continue_the_factory(self):
        database = Database([Fact("Researcher", ("mary",))])
        duplicate = database.copy()
        assert duplicate.null_factory is database.null_factory
        labels = {
            database.fresh_null().label,
            duplicate.fresh_null().label,
            database.fresh_null().label,
        }
        assert len(labels) == 3

    def test_interleaved_factories_stay_process_unique(self):
        from repro.data.terms import fresh_null, shared_null_factory

        factories = [shared_null_factory() for _ in range(3)]
        labels = [factory().label for factory in factories for _ in range(5)]
        labels.append(fresh_null().label)
        assert len(set(labels)) == len(labels)


class TestQueryDirectedChase:
    def test_office_example_sizes(self, office_omq, office_database):
        chased = query_directed_chase(
            office_database, office_omq.ontology, office_omq.query
        )
        # mike: office + building nulls, john: building null.
        assert len(chased.nulls()) == 3
        assert chased.database_constants() == frozenset(office_database.adom())
        assert chased.size() >= office_database.size()

    def test_certain_answers_via_chase(self, office_omq, office_database):
        chased = office_omq.chase(office_database)
        answers = evaluate(office_omq.query, chased.instance)
        complete = {a for a in answers if not any(is_null(v) for v in a)}
        assert complete == {("mary", "room1", "main1")}

    def test_blocks_have_bounded_size(self, office_omq, office_database):
        chased = office_omq.chase(office_database)
        for nulls, anchors in chased.blocks():
            assert len(nulls) <= 2
            assert len(anchors) <= 1

    def test_depth_override(self, office_omq, office_database):
        chased = query_directed_chase(
            office_database, office_omq.ontology, office_omq.query, null_depth=1
        )
        assert chased.null_depth_bound == 1

    def test_non_terminating_ontology_is_truncated(self):
        ontology = parse_ontology("Person(x) -> HasParent(x, y), Person(y)")
        query = parse_query("q(x, y) :- HasParent(x, y)")
        database = Database([Fact("Person", ("alice",))])
        chased = query_directed_chase(database, ontology, query)
        assert chased.result.truncated or len(chased.nulls()) > 0
        answers = evaluate(query, chased.instance)
        assert any(a[0] == "alice" for a in answers)


class TestHornSaturation:
    def test_saturation_adds_entailed_unary_facts(self):
        ontology = parse_ontology(
            "HasOffice(x, y) -> Office(y)\nOffice(x) -> Room(x)"
        )
        database = Database([Fact("HasOffice", ("mary", "room1"))])
        saturated = horn_saturation(database, ontology)
        assert Fact("Office", ("room1",)) in saturated
        assert Fact("Room", ("room1",)) in saturated

    def test_saturation_matches_chase_database_part(self, office_omq, office_database):
        saturated = horn_saturation(office_database, office_omq.ontology)
        chased = office_omq.chase(office_database)
        chase_certain = {f for f in chased.instance if not f.has_null()}
        assert chase_certain <= saturated.facts() | chase_certain
        assert {f for f in saturated if not f.has_null()} >= set(office_database)

    def test_saturation_with_existential_support(self):
        # B(x) is derivable only through the existential office.
        ontology = parse_ontology(
            "Researcher(x) -> HasOffice(x, y)\nHasOffice(x, y) -> Employed(x)"
        )
        database = Database([Fact("Researcher", ("mary",))])
        saturated = horn_saturation(database, ontology)
        assert Fact("Employed", ("mary",)) in saturated
