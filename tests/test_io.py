"""Tests for the file frontend (repro.io) and the workload registry.

Covers the DLGP parser/serializer (happy paths, labels, case conventions,
and negative paths with line/column positions), the CSV/TSV loaders (arity
validation, type inference, streaming bulk load), the registry
(``get_workload`` over names and paths, unknown-name errors), and the
round-trip acceptance property: every built-in workload's
ontology/database/queries can be dumped to DLGP/CSV and reloaded, and the
reloaded artifacts produce identical enumeration answers through
``QueryEngine`` and the ``repro run`` CLI.
"""

import json
from pathlib import Path

import pytest

from repro import Atom, Database, Fact, QueryEngine, Variable
from repro.cli import main as cli_main
from repro.cq.query import ConjunctiveQuery
from repro.io import (
    DlgpError,
    dump_facts,
    dump_ontology,
    dump_queries,
    dump_scenario,
    load_database,
    load_ontology,
    load_queries,
    load_scenario,
    parse_document,
)
from repro.io.tabular import (
    dump_database_csv,
    dump_facts_csv,
    iter_facts_csv,
    load_database_csv,
    load_facts_csv,
)
from repro.tgds.parser import parse_ontology
from repro.workloads import Workload, get_workload, list_workloads, register_workload

DATA_DIR = Path(__file__).resolve().parents[1] / "examples" / "data"


# -- DLGP parsing ------------------------------------------------------------


class TestDlgpParse:
    def test_sections_classify_statements(self):
        document = parse_document(
            """
            % a comment
            @rules
            [r1] Office(Y) :- HasOffice(X, Y).
            @facts
            HasOffice(mary, room1), Researcher(mary).
            @queries
            [q] ?(X, Y) :- HasOffice(X, Y).
            """
        )
        assert len(document.rules) == 1
        assert document.rules[0].label == "r1"
        assert set(document.facts) == {
            Fact("HasOffice", ("mary", "room1")),
            Fact("Researcher", ("mary",)),
        }
        assert document.queries[0].name == "q"
        assert document.queries[0].arity == 2

    def test_default_section_infers_statement_kind(self):
        document = parse_document(
            """
            HasOffice(X, Y) :- Researcher(X).
            Researcher(mary).
            ?(X) :- Researcher(X).
            """
        )
        assert len(document.rules) == 1
        assert len(document.facts) == 1
        assert len(document.queries) == 1

    def test_uppercase_is_variable_lowercase_is_constant(self):
        document = parse_document('@queries\n?(X) :- Knows(X, alice, 3, "Bob").')
        atom = next(iter(document.queries[0].atoms))
        assert atom.args == (Variable("x"), "alice", 3, "Bob")

    def test_internal_arrow_order_also_accepted(self):
        document = parse_document("@rules\nResearcher(X) -> HasOffice(X, Y).")
        tgd = document.rules[0]
        assert {atom.relation for atom in tgd.body} == {"Researcher"}
        assert {atom.relation for atom in tgd.head} == {"HasOffice"}

    def test_true_body_gives_bodyless_rule(self):
        document = parse_document("@rules\nSeed(X) :- true.")
        assert document.rules[0].body == frozenset()

    def test_multiline_statements_and_prologue_directives(self):
        document = parse_document(
            "@base <http://example.org/>\n"
            "@prefix ex: <http://example.org/ns#>\n"
            "@facts\n"
            "Edge(a,\n     b).\n"
        )
        assert document.facts == [Fact("Edge", ("a", "b"))]

    def test_escaped_strings_round_trip(self):
        fact = Fact("R", ('say "hi"', "back\\slash", "CamelCase"))
        reparsed = parse_document(dump_facts([fact])).facts
        assert reparsed == [fact]

    def test_control_characters_and_int_shaped_strings_round_trip(self):
        fact = Fact("R", ("two\nlines", "tab\there", "3", 3))
        reparsed = parse_document(dump_facts([fact])).facts
        assert reparsed == [fact]
        assert reparsed[0].args[2] == "3" and reparsed[0].args[3] == 3


class TestDlgpEdgeCases:
    """Robustness: CRLF files, BOMs, comment-only documents, name clashes."""

    def test_crlf_line_endings_parse_like_lf(self):
        text = "@rules\r\nOffice(Y) :- HasOffice(X, Y).\r\n@facts\r\nHasOffice(mary, room1).\r\n"
        document = parse_document(text)
        assert [str(f) for f in document.facts] == ["HasOffice(mary, room1)"]
        assert len(document.rules) == 1
        assert document.rules == parse_document(text.replace("\r\n", "\n")).rules

    def test_crlf_positions_still_point_at_the_right_line(self):
        with pytest.raises(DlgpError) as excinfo:
            parse_document("@facts\r\np(X).\r\n")
        assert excinfo.value.line == 2

    def test_utf8_bom_is_tolerated(self):
        document = parse_document("\ufeff@facts\nResearcher(mary).\n")
        assert [str(f) for f in document.facts] == ["Researcher(mary)"]

    def test_bom_only_in_first_position_everything_else_unchanged(self):
        # A BOM mid-document is still a syntax error, with its position.
        with pytest.raises(DlgpError, match="unexpected character"):
            parse_document("@facts\n\ufeffResearcher(mary).\n")

    def test_bom_file_loads_through_the_path_frontend(self, tmp_path):
        path = tmp_path / "rules.dlgp"
        path.write_bytes("@rules\nOffice(Y) :- HasOffice(X, Y).\n".encode("utf-8-sig"))
        ontology = load_ontology(path)
        assert len(ontology) == 1

    def test_comment_only_document_is_empty(self):
        document = parse_document("% nothing here\n% still nothing\n")
        assert (document.rules, document.facts, document.queries) == ([], [], [])

    def test_comment_only_file_yields_empty_scenario_parts(self, tmp_path):
        path = tmp_path / "empty.dlgp"
        path.write_text("% header comment only\n")
        assert list(load_queries(path)) == []

    def test_crlf_comment_only_document_is_empty(self):
        document = parse_document("% one\r\n% two\r\n")
        assert (document.rules, document.facts, document.queries) == ([], [], [])

    def test_query_variables_colliding_with_null_decode_names(self):
        """Variables named like interned-null decode labels (``N1``, ``_:n…``
        prints) and constants spelled ``n1`` must not confuse evaluation:
        decode happens only at answer emission and never round-trips
        through names."""
        from repro.data import use_interning

        document = parse_document(
            "@rules\nR(X, N1) :- A(X).\n"
            "@facts\nA(n1). R(n1, n2).\n"
            "@queries\n[q] ?(N1, N2) :- R(N1, N2).\n"
        )
        ontology = document.ontology()
        query = document.queries[0]
        answers = {}
        for interned in (True, False):
            with use_interning(interned):
                database = Database(document.facts)
                engine = QueryEngine(ontology, database)
                answers[interned] = engine.execute(query)
        assert answers[True] == answers[False]
        assert ("n1", "n2") in answers[True]
        # Certain answers are null-free: the existential office from the
        # rule must not leak a null decoded as a constant-looking name.
        assert all(
            isinstance(value, str) for answer in answers[True] for value in answer
        )


class TestDlgpErrors:
    @pytest.mark.parametrize(
        "text, fragment, line",
        [
            ("@rules\np(X) :- q(X)", "expected '.'", 2),
            ("@rules\np(X) q(X).", "expected ':-' or '->'", 2),
            ("@facts\np(X).", "facts must be ground", 2),
            ("@facts\n[f] p(a).", "facts may not carry labels", 2),
            ("@facts\np(\"abc).", "unterminated string", 2),
            ("@facts\np(a,).", "expected a term", 2),
            ("@unknown\np(a).", "unknown directive", 1),
            ("@constraints\nq(X) :- p(X).", "not supported", 2),
            ("@queries\n?(a) :- p(a).", "not a variable", 2),
            ("@queries\n?(X) :- .", "expected a relation symbol", 2),
            ("@rules\n:- p(X).", "expected a relation symbol", 2),
            ("@facts\n$(a).", "unexpected character", 2),
        ],
    )
    def test_malformed_documents_report_positions(self, text, fragment, line):
        with pytest.raises(ValueError) as excinfo:
            parse_document(text)
        message = str(excinfo.value)
        assert fragment in message
        assert f"line {line}" in message

    def test_semantic_errors_carry_positions_too(self):
        # Constants in rules and non-body answer variables are rejected by
        # the TGD/CQ constructors; the parser re-raises with the position.
        with pytest.raises(ValueError, match=r"line 2.*constants"):
            parse_document("@rules\nOffice(mary) :- Researcher(X).")
        with pytest.raises(ValueError, match=r"line 2.*does not occur"):
            parse_document("@queries\n?(X, Y) :- Researcher(X).")

    def test_dlgp_error_is_a_value_error_with_positions(self):
        assert issubclass(DlgpError, ValueError)
        with pytest.raises(DlgpError) as excinfo:
            parse_document("@rules\np(X) :- q(X)")
        assert excinfo.value.line == 2
        assert excinfo.value.column is not None

    def test_load_errors_name_the_file(self, tmp_path):
        bad = tmp_path / "bad.dlgp"
        bad.write_text("@rules\np(X) :- q(X)", encoding="utf-8")
        with pytest.raises(ValueError, match="bad.dlgp.*line 2"):
            load_ontology(bad)
        with pytest.raises(ValueError, match="missing.dlgp"):
            load_ontology(tmp_path / "missing.dlgp")


# -- DLGP serialization ------------------------------------------------------


class TestDlgpDump:
    def test_ontology_dump_is_reparse_stable(self):
        ontology = parse_ontology(
            """
            Researcher(x) -> HasOffice(x, y)
            Prof(x), HasOffice(x, y) -> LargeOffice(y)
            true -> Seed(x)
            """,
            name="o",
        )
        text = dump_ontology(ontology)
        reloaded = parse_document(text).ontology(name="o")
        assert dump_ontology(reloaded) == text
        assert len(reloaded) == len(ontology)

    def test_query_dump_preserves_name_and_answer_order(self):
        query = ConjunctiveQuery(
            (Variable("b"), Variable("a")),
            [Atom("R", (Variable("a"), Variable("b")))],
            name="swap",
        )
        text = dump_queries([query])
        reloaded = parse_document(text).queries[0]
        assert reloaded.name == "swap"
        assert reloaded.answer_variables == (Variable("b"), Variable("a"))

    def test_nulls_are_rejected(self):
        from repro.data.terms import fresh_null

        with pytest.raises(ValueError, match="null"):
            dump_facts([Fact("R", (fresh_null(),))])


# -- CSV / TSV ---------------------------------------------------------------


class TestTabular:
    def test_relation_defaults_to_stem_and_types_infer(self, tmp_path):
        path = tmp_path / "M1.csv"
        path.write_text("1,2\n3,-4\nx,y\n", encoding="utf-8")
        facts = list(load_facts_csv(path))
        assert facts == [
            Fact("M1", (1, 2)),
            Fact("M1", (3, -4)),
            Fact("M1", ("x", "y")),
        ]

    def test_tsv_delimiter_from_suffix(self, tmp_path):
        path = tmp_path / "E.tsv"
        path.write_text("a\tb\n", encoding="utf-8")
        assert list(load_facts_csv(path)) == [Fact("E", ("a", "b"))]

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "E.parquet"
        path.write_text("a,b\n", encoding="utf-8")
        with pytest.raises(ValueError, match="unknown tabular suffix"):
            list(load_facts_csv(path))

    def test_arity_mismatch_reports_file_and_line(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("a,b\nc,d\ne\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"R\.csv, line 3: R row has 1 fields"):
            list(load_facts_csv(path))

    def test_cross_file_arity_conflict_detected(self, tmp_path):
        (tmp_path / "R.csv").write_text("a,b\n", encoding="utf-8")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "R.csv").write_text("a,b,c\n", encoding="utf-8")
        with pytest.raises(ValueError, match="arity"):
            load_database_csv([tmp_path / "R.csv", sub / "R.csv"])

    def test_bulk_load_is_one_batch_per_file(self, tmp_path):
        (tmp_path / "R.csv").write_text("a,b\nc,d\n", encoding="utf-8")
        (tmp_path / "S.csv").write_text("e\n", encoding="utf-8")
        database = load_database_csv([tmp_path / "R.csv", tmp_path / "S.csv"])
        assert len(database) == 3
        # one coalesced version bump per file, not per fact
        assert database.version == 2

    def test_dump_database_one_file_per_relation(self, tmp_path):
        database = Database([Fact("B", (1,)), Fact("A", ("x", "y"))])
        written = dump_database_csv(database, tmp_path)
        assert [path.name for path in written] == ["A.csv", "B.csv"]
        assert (tmp_path / "A.csv").read_text() == "x,y\n"

    def test_dump_rejects_foreign_relation_and_exotic_constants(self, tmp_path):
        with pytest.raises(ValueError, match="does not belong"):
            dump_facts_csv([Fact("S", ("a",))], tmp_path / "R.csv")
        with pytest.raises(ValueError, match="cannot serialize"):
            dump_facts_csv([Fact("R", ((1, 2),))], tmp_path / "R.csv")

    def test_dump_refuses_lossy_int_shaped_strings(self, tmp_path):
        # "5" would be reloaded as the int 5; the writer must fail loudly
        # instead of silently changing answers (DLGP quotes these instead).
        with pytest.raises(ValueError, match="integer-shaped"):
            dump_facts_csv([Fact("R", ("5",))], tmp_path / "R.csv")
        dump_facts_csv([Fact("R", (5,))], tmp_path / "R.csv")
        assert list(load_facts_csv(tmp_path / "R.csv")) == [Fact("R", (5,))]

    def test_iter_facts_csv_streams(self):
        rows = iter(["a,b", "c,d"])
        facts = iter_facts_csv(rows, "R")
        assert next(facts) == Fact("R", ("a", "b"))
        assert next(facts) == Fact("R", ("c", "d"))


# -- mixed loading and scenarios ---------------------------------------------


class TestLoadDatabase:
    def test_mixes_dlgp_and_csv(self, tmp_path):
        (tmp_path / "facts.dlgp").write_text("@facts\nR(a, b).\n", encoding="utf-8")
        (tmp_path / "S.csv").write_text("c\n", encoding="utf-8")
        database = load_database([tmp_path / "facts.dlgp", tmp_path / "S.csv"])
        assert set(database.facts()) == {Fact("R", ("a", "b")), Fact("S", ("c",))}

    def test_rules_in_data_files_rejected(self, tmp_path):
        (tmp_path / "facts.dlgp").write_text(
            "@rules\nS(Y) :- R(X, Y).\n@facts\nR(a, b).\n", encoding="utf-8"
        )
        with pytest.raises(ValueError, match="only contain facts"):
            load_database([tmp_path / "facts.dlgp"])

    def test_unknown_suffix_rejected(self, tmp_path):
        (tmp_path / "facts.json").write_text("{}", encoding="utf-8")
        with pytest.raises(ValueError, match="unknown data suffix"):
            load_database([tmp_path / "facts.json"])

    def test_scenario_needs_some_input(self):
        with pytest.raises(ValueError, match="at least one"):
            load_scenario()

    def test_load_queries_reads_dlgp_documents(self, tmp_path):
        path = tmp_path / "q.dlgp"
        path.write_text("@queries\n[a] ?(X) :- R(X).\n[b] ?(Y) :- S(Y).\n", encoding="utf-8")
        assert [query.name for query in load_queries(path)] == ["a", "b"]


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_builtins_present(self):
        names = set(list_workloads())
        assert {"office", "university", "lubm", "graph", "matrix"} <= names

    def test_unknown_name_lists_candidates(self):
        with pytest.raises(ValueError) as excinfo:
            get_workload("no-such-workload")
        message = str(excinfo.value)
        assert "no-such-workload" in message
        assert "university" in message and "office" in message

    def test_scenarios_scale_and_are_seeded(self):
        workload = get_workload("university")
        small = workload.scenario(size=20, seed=1)
        large = workload.scenario(size=200, seed=1)
        again = workload.scenario(size=20, seed=1)
        assert len(small.database) < len(large.database)
        assert set(small.database.facts()) == set(again.database.facts())

    def test_path_workload_from_directory_and_file(self, tmp_path):
        (tmp_path / "scenario.dlgp").write_text(
            "@rules\nOffice(Y) :- HasOffice(X, Y).\n"
            "@facts\nHasOffice(mary, room1).\n"
            "@queries\n[q] ?(X, Y) :- HasOffice(X, Y).\n",
            encoding="utf-8",
        )
        for target in (tmp_path, tmp_path / "scenario.dlgp"):
            workload = get_workload(str(target))
            assert not workload.scalable
            scenario = workload.scenario()
            assert scenario.queries[0].name == "q"
            assert len(scenario.database) == 1

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no .dlgp or tabular"):
            get_workload(str(tmp_path))

    def test_demo_workload_is_registered_in_checkout(self):
        assert DATA_DIR.is_dir(), "examples/data must ship with the repo"
        workload = get_workload("demo")
        scenario = workload.scenario()
        engine = QueryEngine(scenario.ontology, scenario.database)
        answers = engine.execute(scenario.queries[0])
        assert answers and all(len(answer) == 3 for answer in answers)

    def test_register_workload_rejects_duplicates(self):
        workload = get_workload("office")
        with pytest.raises(ValueError, match="already registered"):
            register_workload(
                Workload(
                    name="office",
                    description="dup",
                    builder=workload.builder,
                )
            )

    def test_workload_omq_uses_first_query(self):
        omq = get_workload("office").omq(size=5)
        assert omq.query.arity == 3
        assert omq.is_free_connex_acyclic()


# -- round-trip acceptance ---------------------------------------------------

ROUND_TRIP_WORKLOADS = ("office", "university", "graph")


def _dump_and_reload(name: str, directory: Path, data_format: str):
    scenario = get_workload(name).scenario(size=40, seed=11)
    dump_scenario(scenario, directory, data_format=data_format)
    rules = [directory / "rules.dlgp"]
    queries = [directory / "queries.dlgp"]
    data = sorted(
        path
        for suffix in (".csv", ".tsv", ".dlgp")
        for path in directory.glob(f"*{suffix}")
        if path.name not in ("rules.dlgp", "queries.dlgp")
    )
    reloaded = load_scenario(rules=rules, data=data, queries=queries)
    return scenario, reloaded


class TestRoundTrip:
    @pytest.mark.parametrize("name", ROUND_TRIP_WORKLOADS)
    @pytest.mark.parametrize("data_format", ("csv", "dlgp"))
    def test_dump_reload_identical_answers_through_engine(self, name, data_format, tmp_path):
        scenario, reloaded = _dump_and_reload(name, tmp_path, data_format)
        assert set(reloaded.database.facts()) == set(scenario.database.facts())
        original_engine = QueryEngine(scenario.ontology, scenario.database)
        reloaded_engine = QueryEngine(reloaded.ontology, reloaded.database)
        assert len(reloaded.queries) == len(scenario.queries)
        for original, recovered in zip(scenario.queries, reloaded.queries):
            assert original.name == recovered.name
            assert original_engine.execute(original) == reloaded_engine.execute(recovered)

    @pytest.mark.parametrize("name", ROUND_TRIP_WORKLOADS)
    def test_dump_reload_identical_answers_through_cli(self, name, tmp_path, capsys):
        dump_dir = tmp_path / "dump"
        convert_args = ["convert", "--workload", name, "--size", "40", "--seed", "11"]
        assert cli_main([*convert_args, "--out", str(dump_dir)]) == 0
        capsys.readouterr()

        run_args = ["run", "--workload", name, "--size", "40", "--seed", "11"]
        assert cli_main([*run_args, "--json", "--show", "1000000"]) == 0
        direct = json.loads(capsys.readouterr().out)

        file_args = [
            "run",
            "--rules",
            str(dump_dir / "rules.dlgp"),
            "--queries",
            str(dump_dir / "queries.dlgp"),
            "--json",
            "--show",
            "1000000",
        ]
        data_files = sorted(str(path) for path in dump_dir.glob("*.csv"))
        if data_files:
            file_args.extend(["--data", *data_files])
        assert cli_main(file_args) == 0
        from_files = json.loads(capsys.readouterr().out)

        direct_answers = [
            (entry["query"].split(":")[-1], entry["answers"], entry["sample"])
            for entry in direct["results"]
        ]
        file_answers = [
            (entry["query"].split(":")[-1], entry["answers"], entry["sample"])
            for entry in from_files["results"]
        ]
        assert direct_answers == file_answers


# -- CLI ---------------------------------------------------------------------


class TestCli:
    def test_run_with_explicit_files(self, capsys):
        rules = sorted(str(path) for path in DATA_DIR.glob("*.dlgp"))
        data = sorted(str(path) for path in DATA_DIR.glob("*.csv"))
        code = cli_main(["run", "--rules", *rules, "--data", *data, "--json"])
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        assert out["workload"] == "files"
        assert [entry["query"] for entry in out["results"]] == ["q", "offices"]
        assert all(entry["answers"] > 0 for entry in out["results"])

    def test_run_workload_path(self, capsys):
        code = cli_main(["run", "--workload", str(DATA_DIR), "--json"])
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        assert out["queries"] == 2
        assert out["size"] is None  # file-backed: no scale factor

    def test_run_reports_effective_default_size(self, capsys):
        code = cli_main(["run", "--workload", "office", "--json"])
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        assert out["size"] == 300

    def test_degenerate_sizes_do_not_crash(self, capsys):
        for workload in ("graph", "office", "university", "lubm", "matrix"):
            assert cli_main(["run", "--workload", workload, "--size", "1", "--json"]) == 0
            capsys.readouterr()

    def test_run_rejects_workload_plus_files(self, capsys):
        code = cli_main(["run", "--workload", "office", "--rules", "x.dlgp"])
        captured = capsys.readouterr()
        assert code == 2
        assert "not both" in captured.err

    def test_run_unknown_workload_fails_cleanly(self, capsys):
        code = cli_main(["run", "--workload", "no-such"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown workload" in captured.err

    def test_run_scenario_without_queries_needs_flags(self, tmp_path, capsys):
        (tmp_path / "R.csv").write_text("a,b\n", encoding="utf-8")
        code = cli_main(["run", "--data", str(tmp_path / "R.csv")])
        captured = capsys.readouterr()
        assert code == 2
        assert "declares no queries" in captured.err

        code = cli_main(
            [
                "run",
                "--data",
                str(tmp_path / "R.csv"),
                "--inline",
                "q(x, y) :- R(x, y)",
                "--json",
            ]
        )
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        assert out["results"][0]["answers"] == 1

    def test_convert_writes_dlgp_data(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        code = cli_main(
            [
                "convert",
                "--workload",
                "office",
                "--size",
                "10",
                "--out",
                str(out_dir),
                "--data-format",
                "dlgp",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        names = {Path(line).name for line in captured.out.splitlines()}
        assert names == {"rules.dlgp", "queries.dlgp", "facts.dlgp"}
        reloaded = load_scenario(
            rules=[out_dir / "rules.dlgp"],
            data=[out_dir / "facts.dlgp"],
            queries=[out_dir / "queries.dlgp"],
        )
        assert len(reloaded.queries) == 1
        assert len(reloaded.database) > 0

    def test_queries_flag_accepts_dlgp_documents(self, tmp_path, capsys):
        queries = tmp_path / "queries.dlgp"
        queries.write_text(
            "@queries\n[a] ?(S, A) :- HasAdvisor(S, A).\n"
            "[b] ?(F) :- Faculty(F).\n",
            encoding="utf-8",
        )
        run_args = ["run", "--workload", "university", "--size", "30"]
        code = cli_main([*run_args, "--queries", str(queries), "--json"])
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        assert [entry["query"] for entry in out["results"]] == [
            "queries.dlgp:a",
            "queries.dlgp:b",
        ]


# -- engine integration ------------------------------------------------------


class TestEngineFromFiles:
    def test_from_files_warms_embedded_queries(self):
        engine = QueryEngine.from_files(
            rules=sorted(DATA_DIR.glob("*.dlgp")),
            data=sorted(DATA_DIR.glob("*.csv")),
        )
        stats = engine.stats
        assert stats.plans_cached == 2
        answers = engine.execute(
            "q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)"
        )
        assert answers and all(len(answer) == 3 for answer in answers)

    def test_from_scenario_unwarmed(self):
        scenario = get_workload("office").scenario(size=10)
        engine = QueryEngine.from_scenario(scenario, warm=False)
        assert engine.stats.plans_cached == 0
        assert engine.execute(scenario.queries[0])
