"""The multi-tenant query service: routing, interleavings, transport.

The interesting tests here are the *interleavings*: a cursor paginating
across a mutation batch must finish over the pre-batch snapshot, admission
must reject exactly at the in-flight bound, a timed-out query must leave no
running thread and no leaked cursor, and shutdown must drain.  They drive
:meth:`QueryService.handle` directly (the handler layer is transport-free
by design) and pin the blocking stages with events where determinism
requires it; the wire-level tests at the bottom go through real sockets.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.engine import QueryEngine
from repro.server import (
    HttpServer,
    QueryService,
    Request,
    ServiceConfig,
    serve,
)
from repro.server.service import _Cancelled
from repro.workloads import get_workload

WORKLOAD = "university"
SIZE = 60
SEED = 3
QUERY = "q(s, a) :- HasAdvisor(s, a)"
JOIN_QUERY = "q(s, a, d) :- HasAdvisor(s, a), WorksFor(a, d)"


def _request(method: str, path: str, payload=None, params=None) -> Request:
    body = json.dumps(payload).encode("utf-8") if payload is not None else b""
    return Request(
        method=method, path=path, params=params or {}, headers={}, body=body
    )


def _service(**overrides) -> QueryService:
    config = ServiceConfig(port=0, **overrides)
    service = QueryService(config)
    service.create_tenant("t", WORKLOAD, size=SIZE, seed=SEED)
    return service


def _direct_answers(query: str, mutate=None) -> list[list[str]]:
    scenario = get_workload(WORKLOAD).scenario(size=SIZE, seed=SEED)
    if mutate is not None:
        mutate(scenario.database)
    engine = QueryEngine(scenario.ontology, scenario.database)
    return sorted([str(t) for t in row] for row in engine.execute(query))


def _body(response) -> dict:
    return json.loads(response.body)


class TestRoutingAndQueries:
    def test_query_matches_direct_engine(self):
        service = _service()

        async def scenario():
            return await service.handle(
                _request("POST", "/tenants/t/query", {"query": QUERY})
            )

        response = asyncio.run(scenario())
        assert response.status == 200
        body = _body(response)
        assert body["answers"] == _direct_answers(QUERY)
        assert body["count"] == len(body["answers"])

    def test_bad_query_is_a_400(self):
        service = _service()

        async def scenario():
            return await service.handle(
                _request("POST", "/tenants/t/query", {"query": "q(x :- broken"})
            )

        assert asyncio.run(scenario()).status == 400

    def test_unknown_tenant_and_route_are_404(self):
        service = _service()

        async def scenario():
            return (
                await service.handle(
                    _request("POST", "/tenants/nope/query", {"query": QUERY})
                ),
                await service.handle(_request("GET", "/no/such/route")),
            )

        missing_tenant, missing_route = asyncio.run(scenario())
        assert missing_tenant.status == 404
        assert missing_route.status == 404

    def test_tenant_lifecycle_over_http(self):
        service = _service()

        async def scenario():
            created = await service.handle(
                _request(
                    "PUT",
                    "/tenants/u",
                    {"workload": WORKLOAD, "size": 40, "seed": 9},
                )
            )
            duplicate = await service.handle(
                _request("PUT", "/tenants/u", {"workload": WORKLOAD})
            )
            listing = await service.handle(_request("GET", "/tenants"))
            dropped = await service.handle(_request("DELETE", "/tenants/u"))
            return created, duplicate, listing, dropped

        created, duplicate, listing, dropped = asyncio.run(scenario())
        assert created.status == 201
        assert duplicate.status == 409
        assert [t["name"] for t in _body(listing)["tenants"]] == ["t", "u"]
        assert dropped.status == 200
        assert "u" not in service.tenants

    def test_tenants_with_shared_ontology_share_plans(self):
        service = _service()
        service.create_tenant("t2", WORKLOAD, size=40, seed=4)

        async def scenario():
            await service.handle(
                _request("POST", "/tenants/t/query", {"query": JOIN_QUERY})
            )
            await service.handle(
                _request("POST", "/tenants/t2/query", {"query": JOIN_QUERY})
            )
            return await service.handle(_request("GET", "/metrics"))

        metrics = _body(asyncio.run(scenario()))
        # One engine serves both tenants and compiled the plan exactly once.
        assert len(metrics["engines"]) == 1
        assert metrics["engine"]["plan_misses"] == 1
        assert metrics["engine"]["plan_hits"] == 1


class TestCursorAcrossMutation:
    def test_cursor_finishes_over_pre_batch_snapshot(self):
        service = _service()
        pre = _direct_answers(QUERY)

        def mutate(database):
            from repro.incremental.delta import Delta, apply_delta

            apply_delta(
                database,
                Delta.from_wire({"add": [["HasAdvisor", ["newbie", "prof0"]]]}),
            )

        post = _direct_answers(QUERY, mutate=mutate)
        assert post != pre

        async def scenario():
            opened = await service.handle(
                _request("POST", "/tenants/t/cursors", {"query": QUERY})
            )
            assert opened.status == 201
            cursor = _body(opened)["cursor"]

            first = await service.handle(
                _request(
                    "GET", f"/tenants/t/cursors/{cursor}", params={"count": "3"}
                )
            )
            assert first.status == 200 and not _body(first)["done"]
            rows = _body(first)["answers"]

            mutated = await service.handle(
                _request(
                    "POST",
                    "/tenants/t/facts",
                    {"add": [["HasAdvisor", ["newbie", "prof0"]]]},
                )
            )
            assert mutated.status == 200 and _body(mutated)["added"] == 1

            while True:
                page = await service.handle(
                    _request(
                        "GET",
                        f"/tenants/t/cursors/{cursor}",
                        params={"count": "7"},
                    )
                )
                body = _body(page)
                rows.extend(body["answers"])
                if body["done"]:
                    break

            fresh = await service.handle(
                _request("POST", "/tenants/t/query", {"query": QUERY})
            )
            return rows, _body(fresh)["answers"]

        streamed, fresh = asyncio.run(scenario())
        # The cursor was opened before the batch: pre-batch answers, exactly.
        assert sorted(streamed) == pre
        # A query issued after the batch sees the maintained database.
        assert fresh == post

    def test_exhausted_cursor_deregisters_and_404s(self):
        service = _service()

        async def scenario():
            opened = await service.handle(
                _request("POST", "/tenants/t/cursors", {"query": QUERY})
            )
            cursor = _body(opened)["cursor"]
            page = await service.handle(
                _request(
                    "GET", f"/tenants/t/cursors/{cursor}", params={"count": "10000"}
                )
            )
            assert _body(page)["done"]
            after = await service.handle(
                _request("GET", f"/tenants/t/cursors/{cursor}")
            )
            return after

        assert asyncio.run(scenario()).status == 404
        assert service.tenants["t"].cursors == {}

    def test_explicit_close_via_delete(self):
        service = _service()

        async def scenario():
            opened = await service.handle(
                _request("POST", "/tenants/t/cursors", {"query": QUERY})
            )
            cursor = _body(opened)["cursor"]
            closed = await service.handle(
                _request("DELETE", f"/tenants/t/cursors/{cursor}")
            )
            return closed

        assert asyncio.run(scenario()).status == 200
        assert service.open_cursor_count() == 0


class TestAdmissionControl:
    def test_rejects_exactly_at_the_inflight_bound(self):
        service = _service(max_inflight=1)
        started = threading.Event()
        release = threading.Event()

        def slow_execute(cancel, tenant, query):
            started.set()
            assert release.wait(10), "test never released the worker"
            return []

        service._execute_blocking = slow_execute

        async def scenario():
            first = asyncio.create_task(
                service.handle(_request("POST", "/tenants/t/query", {"query": QUERY}))
            )
            await asyncio.to_thread(started.wait, 10)
            rejected = await service.handle(
                _request("POST", "/tenants/t/query", {"query": QUERY})
            )
            release.set()
            return await first, rejected

        first, rejected = asyncio.run(scenario())
        assert first.status == 200
        assert rejected.status == 429
        assert rejected.headers.get("Retry-After") == "1"
        tenant = service.tenants["t"]
        assert tenant.inflight == 0
        assert tenant.counters.get("rejected") == 1
        assert tenant.counters.get("queries") == 1

    def test_cursor_open_bound(self):
        service = _service(max_cursors=1)

        async def scenario():
            first = await service.handle(
                _request("POST", "/tenants/t/cursors", {"query": QUERY})
            )
            second = await service.handle(
                _request("POST", "/tenants/t/cursors", {"query": QUERY})
            )
            return first, second

        first, second = asyncio.run(scenario())
        assert first.status == 201
        assert second.status == 429


class TestTimeoutCancellation:
    def test_timed_out_query_leaves_no_running_thread(self):
        service = _service(query_timeout=0.1)
        thread_finished = threading.Event()

        def hanging_execute(cancel, tenant, query):
            try:
                while not cancel.is_set():
                    time.sleep(0.005)
                raise _Cancelled()
            finally:
                thread_finished.set()

        service._execute_blocking = hanging_execute

        response = asyncio.run(
            service.handle(_request("POST", "/tenants/t/query", {"query": QUERY}))
        )
        assert response.status == 504
        # _in_thread awaited the worker after setting the flag: by the time
        # the 504 exists, the thread has provably exited.
        assert thread_finished.is_set()
        tenant = service.tenants["t"]
        assert tenant.inflight == 0
        assert tenant.counters.get("timeouts") == 1

    def test_timed_out_page_closes_the_cursor(self):
        service = _service(query_timeout=0.1)

        def hanging_page(cancel, session, count):
            while not cancel.is_set():
                time.sleep(0.005)
            raise _Cancelled()

        async def scenario():
            opened = await service.handle(
                _request("POST", "/tenants/t/cursors", {"query": QUERY})
            )
            cursor_id = _body(opened)["cursor"]
            session = service.tenants["t"].cursors[cursor_id]
            service._page_blocking = hanging_page
            page = await service.handle(
                _request("GET", f"/tenants/t/cursors/{cursor_id}")
            )
            return page, session

        page, session = asyncio.run(scenario())
        assert page.status == 504
        assert session.cursor.closed
        # The close hook deregistered the session; nothing leaked.
        assert service.open_cursor_count() == 0
        assert service.tenants["t"].inflight == 0


class TestGracefulShutdown:
    def test_drain_waits_for_inflight_and_closes_cursors(self):
        service = _service()
        started = threading.Event()
        release = threading.Event()

        def slow_execute(cancel, tenant, query):
            started.set()
            assert release.wait(10)
            return []

        service._execute_blocking = slow_execute

        async def scenario():
            opened = await service.handle(
                _request("POST", "/tenants/t/cursors", {"query": QUERY})
            )
            session = service.tenants["t"].cursors[_body(opened)["cursor"]]

            inflight = asyncio.create_task(
                service.handle(_request("POST", "/tenants/t/query", {"query": QUERY}))
            )
            await asyncio.to_thread(started.wait, 10)

            shutdown = asyncio.create_task(service.shutdown())
            await asyncio.sleep(0)  # let shutdown() flip the draining flag
            refused = await service.handle(
                _request("POST", "/tenants/t/query", {"query": QUERY})
            )
            release.set()
            report = await shutdown
            return await inflight, refused, report, session

        inflight, refused, report, session = asyncio.run(scenario())
        assert inflight.status == 200
        assert refused.status == 503
        assert report == {"drained": True, "cursors_closed": 1}
        assert session.cursor.closed

    def test_drain_timeout_reports_undrained(self):
        service = _service(drain_timeout=0.05)
        service.tenants["t"].inflight = 1  # a stuck request that never returns

        report = asyncio.run(service.shutdown())
        assert report["drained"] is False


class TestMetrics:
    def test_metrics_reflect_traffic(self):
        service = _service()

        async def scenario():
            for _ in range(3):
                await service.handle(
                    _request("POST", "/tenants/t/query", {"query": QUERY})
                )
            await service.handle(
                _request(
                    "POST",
                    "/tenants/t/facts",
                    {"add": [["HasAdvisor", ["m1", "prof0"]]]},
                )
            )
            return await service.handle(_request("GET", "/metrics"))

        metrics = _body(asyncio.run(scenario()))
        tenant = metrics["tenants"]["t"]
        assert tenant["counters"]["queries"] == 3
        assert tenant["counters"]["mutations"] == 1
        assert tenant["latency"]["count"] == 3
        assert tenant["latency"]["p50_ms"] <= tenant["latency"]["p99_ms"]
        assert metrics["service"]["counters"]["queries"] == 3
        assert metrics["engine"]["chase_increments"] >= 1
        assert metrics["engine"]["cursors_open"] == 0


async def _raw_exchange(port: int, payload: bytes, exchanges: int = 1) -> list[bytes]:
    """Write raw bytes to the server, read one response per exchange."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    responses = []
    try:
        writer.write(payload)
        await writer.drain()
        for _ in range(exchanges):
            head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), 10)
            length = 0
            for line in head.split(b"\r\n"):
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            body = await asyncio.wait_for(reader.readexactly(length), 10)
            responses.append(head + body)
    finally:
        writer.close()
        await writer.wait_closed()
    return responses


class TestWireLevel:
    def test_healthz_and_keepalive_over_a_real_socket(self):
        service = _service()

        async def scenario():
            server = HttpServer(service.handle, port=0)
            await server.start()
            try:
                probe = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
                responses = await _raw_exchange(server.port, probe * 2, exchanges=2)
            finally:
                await server.stop()
            return responses

        responses = asyncio.run(scenario())
        assert len(responses) == 2
        for response in responses:
            assert response.startswith(b"HTTP/1.1 200 OK")
            assert b'"status": "ok"' in response

    def test_malformed_request_line_is_a_400(self):
        service = _service()

        async def scenario():
            server = HttpServer(service.handle, port=0)
            await server.start()
            try:
                [response] = await _raw_exchange(
                    server.port, b"NONSENSE\r\n\r\n", exchanges=1
                )
            finally:
                await server.stop()
            return response

        assert asyncio.run(scenario()).startswith(b"HTTP/1.1 400 Bad Request")

    def test_oversized_header_block_is_a_431(self):
        service = _service()

        async def scenario():
            server = HttpServer(service.handle, port=0)
            await server.start()
            try:
                huge = (
                    b"GET /healthz HTTP/1.1\r\nX-Pad: "
                    + b"a" * (64 * 1024)
                    + b"\r\n\r\n"
                )
                [response] = await _raw_exchange(server.port, huge, exchanges=1)
            finally:
                await server.stop()
            return response

        assert asyncio.run(scenario()).startswith(b"HTTP/1.1 431 ")

    def test_serve_announces_and_drains(self):
        service = _service()

        async def scenario():
            ready, stop = asyncio.Event(), asyncio.Event()
            addresses: list[str] = []
            task = asyncio.create_task(
                serve(
                    service,
                    announce=addresses.append,
                    ready=ready,
                    stop=stop,
                    install_signal_handlers=False,
                )
            )
            await ready.wait()
            port = int(addresses[0].rsplit(":", 1)[1])
            probe = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
            [response] = await _raw_exchange(port, probe, exchanges=1)
            stop.set()
            report = await task
            return response, report

        response, report = asyncio.run(scenario())
        assert response.startswith(b"HTTP/1.1 200 OK")
        assert report == {"drained": True, "cursors_closed": 0}


class TestCliWiring:
    def test_serve_subcommand_builds_config_and_tenants(self, monkeypatch):
        import repro.server.runner as runner
        from repro import cli

        captured = {}

        def fake_run(config, tenants):
            captured["config"] = config
            captured["tenants"] = tenants
            return 0

        monkeypatch.setattr(runner, "run", fake_run)
        exit_code = cli.main(
            [
                "serve",
                "--port",
                "0",
                "--tenant",
                "a=university",
                "--tenant",
                "b=university",
                "--size",
                "50",
                "--seed",
                "2",
                "--max-inflight",
                "3",
                "--timeout",
                "1.5",
            ]
        )
        assert exit_code == 0
        assert captured["config"].max_inflight == 3
        assert captured["config"].query_timeout == pytest.approx(1.5)
        assert captured["tenants"] == [
            ("a", "university", 50, 2),
            ("b", "university", 50, 2),
        ]


class TestWireEdgeCases:
    def test_oversized_body_is_a_413(self):
        service = _service()

        async def scenario():
            server = HttpServer(service.handle, port=0)
            await server.start()
            try:
                head = (
                    b"POST /tenants/t/query HTTP/1.1\r\n"
                    b"Content-Length: 9000000\r\n\r\n"
                )
                [response] = await _raw_exchange(server.port, head, exchanges=1)
            finally:
                await server.stop()
            return response

        assert asyncio.run(scenario()).startswith(b"HTTP/1.1 413 ")

    def test_invalid_content_length_is_a_400(self):
        service = _service()

        async def scenario():
            server = HttpServer(service.handle, port=0)
            await server.start()
            try:
                head = (
                    b"POST /tenants/t/query HTTP/1.1\r\n"
                    b"Content-Length: banana\r\n\r\n"
                )
                [response] = await _raw_exchange(server.port, head, exchanges=1)
            finally:
                await server.stop()
            return response

        assert asyncio.run(scenario()).startswith(b"HTTP/1.1 400 ")

    def test_http_10_closes_unless_keepalive_requested(self):
        service = _service()

        async def scenario():
            server = HttpServer(service.handle, port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"GET /healthz HTTP/1.0\r\n\r\n")
                await writer.drain()
                payload = await asyncio.wait_for(reader.read(), 10)
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()
            return payload

        payload = asyncio.run(scenario())
        # The server answered and then closed the connection (EOF reached).
        assert payload.startswith(b"HTTP/1.1 200 OK")
        assert b"Connection: close" in payload

    def test_handler_exception_is_a_500(self):
        async def exploding_handler(request):
            raise RuntimeError("boom")

        async def scenario():
            server = HttpServer(exploding_handler, port=0)
            await server.start()
            try:
                probe = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
                [response] = await _raw_exchange(server.port, probe, exchanges=1)
            finally:
                await server.stop()
            return response

        response = asyncio.run(scenario())
        assert response.startswith(b"HTTP/1.1 500 ")
        assert b"boom" in response


class TestRunnerEntry:
    def test_run_provisions_tenants_then_serves(self, monkeypatch, capsys):
        import repro.server.runner as runner

        seen = {}

        async def fake_serve(service, **kwargs):
            seen["tenants"] = sorted(service.tenants)
            return {"drained": True, "cursors_closed": 0}

        monkeypatch.setattr(runner, "serve", fake_serve)
        exit_code = runner.run(
            ServiceConfig(port=0),
            [("a", WORKLOAD, 40, 1), ("b", WORKLOAD, 40, 2)],
        )
        assert exit_code == 0
        assert seen["tenants"] == ["a", "b"]
        err = capsys.readouterr().err
        assert "tenant 'a'" in err and "drained=True" in err
