"""Tests for the plain-CQ reduction, CD∘Lin enumeration and all-testing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq import parse_query
from repro.cq.homomorphism import evaluate
from repro.data import Fact, Instance
from repro.data.terms import Null, is_null
from repro.enumeration import (
    CDLinEnumerator,
    FreeConnexAllTester,
    build_reduced_query,
    enumerate_answers,
)
from repro.enumeration.cdlin import answers_as_set
from repro.yannakakis.evaluation import NotAcyclicError


def sample_instance() -> Instance:
    return Instance(
        [
            Fact("R", ("a", "b")),
            Fact("R", ("a", "c")),
            Fact("R", ("d", "e")),
            Fact("S", ("b", "x")),
            Fact("S", ("c", "y")),
            Fact("A", ("a",)),
            Fact("A", ("d",)),
        ]
    )


class TestReducedQuery:
    def test_reduction_preserves_answers(self):
        query = parse_query("q(x, y, z) :- R(x, y), S(y, z), A(x)")
        instance = sample_instance()
        reduced = build_reduced_query(query, instance)
        assert not reduced.is_empty
        expected = evaluate(query, instance)
        assert answers_as_set(query, instance) == expected

    def test_reduction_detects_empty(self):
        query = parse_query("q(x) :- R(x, y), Missing(y)")
        reduced = build_reduced_query(query, sample_instance())
        assert reduced.is_empty

    def test_reduction_blocks_are_globally_consistent(self):
        query = parse_query("q(x, y) :- R(x, y), S(y, z), A(x)")
        instance = sample_instance()
        reduced = build_reduced_query(query, instance)
        answers = evaluate(query, instance)
        for block in reduced.blocks:
            relation = reduced.relations[block.atom]
            for row in relation.tuples:
                assignment = dict(zip(relation.variables, row))
                assert any(
                    all(
                        answer[query.answer_variables.index(v)] == value
                        for v, value in assignment.items()
                        if v in query.answer_variables
                    )
                    for answer in answers
                ), "every block row must extend to a full answer"

    def test_reduction_rejects_repeated_head(self):
        query = parse_query("q(x, x) :- R(x, y)")
        with pytest.raises(Exception):
            build_reduced_query(query, sample_instance())

    def test_reduction_rejects_cyclic_query(self):
        query = parse_query("q(x) :- R(x, y), S(y, z), T(z, x)")
        with pytest.raises(NotAcyclicError):
            build_reduced_query(query, sample_instance())

    def test_keep_nulls_mode(self):
        null = Null(100)
        instance = Instance([Fact("R", ("a", null)), Fact("S", (null, "z"))])
        query = parse_query("q(x, y, z) :- R(x, y), S(y, z)")
        with_nulls = build_reduced_query(query, instance, keep_nulls=True)
        without = build_reduced_query(query, instance, keep_nulls=False)
        assert not with_nulls.is_empty
        assert without.is_empty
        assert any(
            any(is_null(v) for v in row)
            for block in with_nulls.blocks
            for row in with_nulls.relations[block.atom].tuples
        )


class TestCDLinEnumerator:
    def test_matches_reference_evaluation(self):
        query = parse_query("q(x, y, z) :- R(x, y), S(y, z)")
        instance = sample_instance()
        expected = evaluate(query, instance)
        assert set(enumerate_answers(query, instance)) == expected

    def test_no_duplicates(self):
        query = parse_query("q(x) :- R(x, y)")
        answers = list(enumerate_answers(query, sample_instance()))
        assert len(answers) == len(set(answers))

    def test_boolean_query(self):
        query = parse_query("q() :- R(x, y), S(y, z)")
        assert set(enumerate_answers(query, sample_instance())) == {()}
        empty_query = parse_query("q() :- Missing(x)")
        assert set(enumerate_answers(empty_query, sample_instance())) == set()

    def test_repeated_head_variables(self):
        query = parse_query("q(x, x) :- A(x)")
        assert set(enumerate_answers(query, sample_instance())) == {
            ("a", "a"),
            ("d", "d"),
        }

    def test_disconnected_query_is_cross_product(self):
        query = parse_query("q(x, u) :- A(x), S(u, w)")
        expected = evaluate(query, sample_instance())
        assert set(enumerate_answers(query, sample_instance())) == expected
        assert len(expected) == 4

    def test_count_and_is_empty(self):
        query = parse_query("q(x) :- A(x)")
        enumerator = CDLinEnumerator(query, sample_instance())
        assert not enumerator.is_empty()
        assert enumerator.count() == 2

    def test_constants_in_query(self):
        query = parse_query('q(y) :- R("a", y)')
        assert set(enumerate_answers(query, sample_instance())) == {("b",), ("c",)}

    def test_null_answers_are_excluded_by_default(self):
        null = Null(200)
        instance = Instance([Fact("R", ("a", null)), Fact("R", ("a", "b"))])
        query = parse_query("q(x, y) :- R(x, y)")
        assert set(enumerate_answers(query, instance)) == {("a", "b")}
        assert set(enumerate_answers(query, instance, keep_nulls=True)) == {
            ("a", "b"),
            ("a", null),
        }


class TestFreeConnexAllTester:
    def test_agrees_with_evaluation(self):
        query = parse_query("q(x, y) :- R(x, y), S(y, z)")
        instance = sample_instance()
        tester = FreeConnexAllTester(query, instance)
        answers = evaluate(query, instance)
        domain = sorted(instance.adom(), key=repr)
        for left in domain:
            for right in domain:
                assert tester.test((left, right)) == ((left, right) in answers)

    def test_non_acyclic_but_free_connex_query(self):
        # Full triangle: not acyclic, but free-connex acyclic, so all-testing
        # is still available (Proposition 4.2).
        instance = Instance(
            [
                Fact("R", ("a", "b")),
                Fact("S", ("b", "c")),
                Fact("T", ("c", "a")),
                Fact("T", ("c", "d")),
            ]
        )
        query = parse_query("q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
        tester = FreeConnexAllTester(query, instance)
        assert tester.test(("a", "b", "c"))
        assert not tester.test(("d", "b", "c"))

    def test_empty_query_result(self):
        query = parse_query("q(x) :- Missing(x)")
        tester = FreeConnexAllTester(query, sample_instance())
        assert tester.is_empty()
        assert not tester.test(("a",))

    def test_repeated_head_variables(self):
        query = parse_query("q(x, x) :- A(x)")
        tester = FreeConnexAllTester(query, sample_instance())
        assert tester.test(("a", "a"))
        assert not tester.test(("a", "d"))

    def test_wrong_arity_raises(self):
        query = parse_query("q(x) :- A(x)")
        tester = FreeConnexAllTester(query, sample_instance())
        with pytest.raises(Exception):
            tester.test(("a", "b"))


def _random_instance(rng: random.Random) -> Instance:
    constants = ["a", "b", "c", "d", "e"]
    facts = []
    for _ in range(rng.randint(1, 15)):
        facts.append(Fact("R", (rng.choice(constants), rng.choice(constants))))
    for _ in range(rng.randint(1, 15)):
        facts.append(Fact("S", (rng.choice(constants), rng.choice(constants))))
    for _ in range(rng.randint(0, 5)):
        facts.append(Fact("A", (rng.choice(constants),)))
    return Instance(facts)


_QUERIES = [
    "q(x, y, z) :- R(x, y), S(y, z)",
    "q(x, y) :- R(x, y), A(x)",
    "q(x) :- R(x, y), S(y, z)",
    "q(x, u) :- A(x), S(u, w)",
    "q(x, y) :- R(x, y), S(y, z), A(x)",
]


@pytest.mark.slow
@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_cdlin_enumeration_matches_reference_on_random_instances(seed):
    """Property: CD∘Lin enumeration equals the reference evaluator."""
    rng = random.Random(seed)
    instance = _random_instance(rng)
    for text in _QUERIES:
        query = parse_query(text)
        assert set(enumerate_answers(query, instance)) == evaluate(query, instance)


@pytest.mark.slow
@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_all_tester_matches_reference_on_random_instances(seed):
    """Property: the all-tester agrees with the reference evaluator."""
    rng = random.Random(seed)
    instance = _random_instance(rng)
    query = parse_query("q(x, y) :- R(x, y), S(y, z)")
    tester = FreeConnexAllTester(query, instance)
    answers = evaluate(query, instance)
    domain = sorted(instance.adom(), key=repr)
    for left in domain:
        for right in domain:
            assert tester.test((left, right)) == ((left, right) in answers)
