"""Shared fixtures: the paper's running examples and small random generators."""

from __future__ import annotations

import random

import pytest

from repro import Database, Fact, parse_ontology, parse_query
from repro.core import OMQ


@pytest.fixture
def office_ontology_text() -> str:
    return """
    Researcher(x) -> HasOffice(x, y)
    HasOffice(x, y) -> Office(y)
    Office(x) -> InBuilding(x, y)
    """


@pytest.fixture
def office_omq(office_ontology_text) -> OMQ:
    """The OMQ of Example 1.1."""
    ontology = parse_ontology(office_ontology_text, name="office")
    query = parse_query("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
    return OMQ.from_parts(ontology, query, name="Q_office")


@pytest.fixture
def office_database() -> Database:
    """The database of Example 1.1."""
    return Database(
        [
            Fact("Researcher", ("mary",)),
            Fact("Researcher", ("john",)),
            Fact("Researcher", ("mike",)),
            Fact("HasOffice", ("mary", "room1")),
            Fact("HasOffice", ("john", "room4")),
            Fact("InBuilding", ("room1", "main1")),
        ]
    )


@pytest.fixture
def largeoffice_omq(office_ontology_text) -> OMQ:
    """The OMQ Q' of Example 2.2 (LargeOffice variant)."""
    ontology = parse_ontology(
        office_ontology_text + "\nProf(x), HasOffice(x, y) -> LargeOffice(y)",
        name="office_large",
    )
    query = parse_query(
        "q(x1, x2, x3, x4) :- HasOffice(x1, x2), LargeOffice(x2), "
        "HasOffice(x1, x3), InBuilding(x3, x4)"
    )
    return OMQ.from_parts(ontology, query, name="Q_office_large")


@pytest.fixture
def largeoffice_database(office_database) -> Database:
    database = office_database.copy()
    database.add(Fact("Prof", ("mike",)))
    return database


@pytest.fixture
def cone_example_omq() -> OMQ:
    """The OMQ of Example 6.2 (balls vs. cones)."""
    ontology = parse_ontology("A(x) -> R(x, y1), T(x, y1), S(x, y2)", name="cone")
    query = parse_query("q(x0, x1, x2, x3) :- R(x0, x1), S(x0, x2), T(x0, x3)")
    return OMQ.from_parts(ontology, query, name="Q_cone")


@pytest.fixture
def cone_example_database() -> Database:
    return Database([Fact("A", ("c",)), Fact("R", ("c", "cprime"))])


def random_office_database(rng: random.Random, people: int = 5) -> Database:
    """A small random office database used by the cross-check tests."""
    rooms = [f"r{i}" for i in range(max(1, people // 2))]
    buildings = [f"b{i}" for i in range(2)]
    facts = []
    for index in range(people):
        person = f"p{index}"
        if rng.random() < 0.7:
            facts.append(Fact("Researcher", (person,)))
        if rng.random() < 0.6:
            facts.append(Fact("HasOffice", (person, rng.choice(rooms))))
    for room in rooms:
        if rng.random() < 0.5:
            facts.append(Fact("InBuilding", (room, rng.choice(buildings))))
    if not facts:
        facts.append(Fact("Researcher", ("p0",)))
    return Database(facts)
