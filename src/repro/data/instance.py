"""Instances and databases: finite sets of facts with useful indexes.

An :class:`Instance` may contain labelled nulls (it is the object produced by
the chase); a :class:`Database` is an instance that is promised to be
null-free.  Both maintain per-relation indexes and per-constant adjacency so
that the algorithms in the rest of the library get the (amortised) constant
time lookups the paper's RAM model assumes.

Index API
---------

Beyond the classic accessors, an instance maintains *positional indexes*:

``index(relation, positions)``
    A hash map from key tuples ``tuple(fact.args[p] for p in positions)`` to
    the bucket of facts of ``relation`` with those values at those positions.
    Indexes are built lazily on first request and from then on maintained
    *incrementally* by :meth:`Instance.add` / :meth:`Instance.discard`, so a
    probe is amortised O(1) regardless of how often the instance mutates.
    Buckets are stored as lists (append is O(1)); callers must treat both the
    returned mapping and its buckets as read-only.

``probe(relation, positions, key)``
    The bucket for ``key`` in that index (or an empty tuple), without
    exposing the mapping itself.

The plain accessors :meth:`facts`, :meth:`relation` and :meth:`facts_with`
return zero-copy read-only *views* (:class:`FactSetView`) over the internal
sets instead of fresh copies; they support the full ``collections.abc.Set``
protocol (``in``, iteration, ``len``, ``==``, ``|``, ``&``, ``<=``, ...) and
stay in sync with the instance.  Snapshot with ``set(view)`` before mutating
the instance mid-iteration.

``version``
    A monotonically increasing mutation counter, bumped by every effective
    :meth:`Instance.add` / :meth:`Instance.discard` alongside the incremental
    index maintenance.  Derived structures (the prepared-query engine's
    materializations, external caches) snapshot it and compare later to
    detect that their inputs changed, instead of subscribing to callbacks.

Change log (databases)
----------------------

A :class:`Database` additionally keeps a bounded *mutation log* so that
derived state can be maintained **incrementally** instead of rebuilt:

``changes_since(version)``
    The net :class:`~repro.incremental.delta.Delta` (facts added, facts
    removed) between a previously snapshotted ``version`` and now, or
    ``None`` when the log no longer reaches back that far (the caller then
    falls back to a full rebuild).  Mutations that cancel out (add then
    discard of the same fact) net to nothing.

``batch()``
    A context manager coalescing many mutations into **one** version step
    and one delta: facts and indexes update immediately inside the batch
    (direct reads — ``in``, ``relation()``, ``probe()`` — see the latest
    state), but the version bump and the log entries are deferred to batch
    exit, so a consumer polling ``changes_since`` sees a single atomic
    delta.  Version-watching consumers (the engine's materializations)
    therefore keep serving the pre-batch snapshot until the batch commits —
    a batch is a transaction from their point of view.

``add_facts(facts)``
    Bulk insert: one batch, one version bump, one log flush — the loader
    path, instead of per-fact version churn.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from collections.abc import Mapping as AbstractMapping
from collections.abc import Set as AbstractSet
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping, Sequence

from repro.data.columns import ColumnarRelation
from repro.data.facts import Fact
from repro.data.interning import TERMS, interning_enabled
from repro.data.schema import Schema
from repro.data.terms import Null, NullFactory, is_null, shared_null_factory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.incremental.delta import Delta

_EMPTY: frozenset = frozenset()
_EMPTY_BUCKET: tuple = ()


class FactSetView(AbstractSet):
    """A zero-copy, read-only set view over one of an instance's fact sets.

    The view resolves its backing set on every operation, so it reflects
    later mutations of the instance — including buckets that are dropped
    when they empty and recreated by a later ``add``.  Set operations
    (``|``, ``&``, ``-``, ``^``) materialise plain ``set`` results, and the
    view compares equal to any set with the same elements.
    """

    __slots__ = ("_resolve",)

    def __init__(self, resolve: Callable[[], AbstractSet]):
        self._resolve = resolve

    def __contains__(self, item: object) -> bool:
        return item in self._resolve()

    def __iter__(self) -> Iterator:
        return iter(self._resolve())

    def __len__(self) -> int:
        return len(self._resolve())

    @classmethod
    def _from_iterable(cls, iterable: Iterable) -> set:
        return set(iterable)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FactSetView({set(self._resolve())!r})"


class _DecodedIndexView(AbstractMapping):
    """A term-keyed, read-only view over an id-keyed positional index.

    Interned instances key their positional indexes by dense term ids; this
    adapter keeps :meth:`Instance.index` presenting the historical term-tuple
    keys to external callers (the hot paths go through
    :meth:`Instance.probe`, which translates once and hits the raw dict).
    """

    __slots__ = ("_raw",)

    def __init__(self, raw: dict[tuple, list[Fact]]):
        self._raw = raw

    def __getitem__(self, key: tuple) -> Sequence[Fact]:
        ikey = TERMS.try_intern_tuple(key)
        if ikey is None:
            raise KeyError(key)
        return self._raw[ikey]

    def __contains__(self, key: object) -> bool:
        if not isinstance(key, tuple):
            return False
        ikey = TERMS.try_intern_tuple(key)
        return ikey is not None and ikey in self._raw

    def __iter__(self) -> Iterator[tuple]:
        return (TERMS.decode_tuple(key) for key in self._raw)

    def __len__(self) -> int:
        return len(self._raw)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_DecodedIndexView({len(self._raw)} keys)"


class Instance:
    """A finite set of facts over constants and labelled nulls."""

    #: Entries retained in the mutation log before the oldest half is dropped.
    change_log_limit = 65_536

    def __init__(self, facts: Iterable[Fact] = ()):
        self._facts: set[Fact] = set()
        self._by_relation: dict[str, set[Fact]] = defaultdict(set)
        self._by_constant: dict[object, set[Fact]] = defaultdict(set)
        # Interned backing mode, captured at construction so the index key
        # representation stays internally consistent for this instance's
        # whole lifetime (flipping the process default affects new
        # instances only).  Interned indexes key buckets by dense term ids
        # (Fact.iargs); the term-object path survives behind
        # REPRO_NO_INTERN for A/B comparison.
        self._interned = interning_enabled()
        # Positional indexes, keyed by (relation, positions); built lazily by
        # index() and maintained incrementally by add()/discard().
        self._indexes: dict[tuple[str, tuple[int, ...]], dict[tuple, list[Fact]]] = {}
        self._indexes_by_relation: dict[str, list[tuple[int, ...]]] = defaultdict(list)
        # Columnar per-(relation, arity) stores; built lazily, invalidated
        # per relation by _record() on every effective mutation.
        self._columnar: dict[tuple[str, int], ColumnarRelation] = {}
        # Fresh-null factory: draws from the process-global label counter, so
        # nulls created through different instances (or an instance and its
        # copies, which share the factory) never alias.
        self._null_factory: NullFactory = shared_null_factory()
        self._version = 0
        # Mutation log: (version-after, is_add, fact) triples, enabled for
        # Database (None on plain chase instances, which nobody diffs).
        self._change_log: list[tuple[int, bool, Fact]] | None = None
        self._change_floor = 0
        self._batch_depth = 0
        self._batch_pending: list[tuple[bool, Fact]] = []
        for fact in facts:
            self.add(fact)

    @property
    def version(self) -> int:
        """Mutation counter: increases on every effective add/discard."""
        return self._version

    @property
    def interned(self) -> bool:
        """True when this instance keys its indexes by dense term ids."""
        return self._interned

    @property
    def null_factory(self) -> NullFactory:
        """This instance's fresh-null factory (process-globally unique labels).

        Copies share the factory object, so a copy *continues* the original's
        label sequence instead of restarting it — two chase runs, even over
        an instance and its copy, can never hand out the same label.
        """
        return self._null_factory

    def fresh_null(self) -> Null:
        """A labelled null no other factory in this process ever produced."""
        return self._null_factory()

    # -- construction ----------------------------------------------------

    def _record(self, is_add: bool, fact: Fact) -> None:
        """Bump the version (or defer to batch exit) and log the mutation."""
        if self._columnar:
            # Eager, per-relation invalidation (version bumps may be
            # deferred inside a batch): only the mutated relation's column
            # stores drop; untouched relations keep theirs across deltas.
            relation = fact.relation
            for key in [k for k in self._columnar if k[0] == relation]:
                del self._columnar[key]
        if self._batch_depth:
            self._batch_pending.append((is_add, fact))
            return
        self._version += 1
        if self._change_log is not None:
            self._change_log.append((self._version, is_add, fact))
            self._trim_change_log()

    def _trim_change_log(self) -> None:
        log = self._change_log
        if log is not None and len(log) > self.change_log_limit:
            drop = len(log) // 2
            self._change_floor = log[drop - 1][0]
            del log[:drop]

    def add(self, fact: Fact) -> bool:
        """Add ``fact``; return True if it was not already present."""
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._by_relation[fact.relation].add(fact)
        for arg in set(fact.args):
            self._by_constant[arg].add(fact)
        for positions in self._indexes_by_relation.get(fact.relation, ()):
            self._index_insert(self._indexes[(fact.relation, positions)], positions, fact)
        self._record(True, fact)
        return True

    def update(self, facts: Iterable[Fact]) -> int:
        """Add many facts; return how many were new."""
        added = 0
        for fact in facts:
            if self.add(fact):
                added += 1
        return added

    def add_facts(self, facts: Iterable[Fact]) -> int:
        """Bulk insert: add many facts in one :meth:`batch`.

        Indexes are maintained in a single pass and the version bumps once
        for the whole load instead of once per fact, so derived-state
        consumers (materializations, caches) observe one coalesced delta
        rather than per-fact churn.  Returns how many facts were new.
        """
        with self.batch():
            return sum(1 for fact in facts if self.add(fact))

    def discard(self, fact: Fact) -> bool:
        """Remove ``fact`` if present; return True if it was removed."""
        if fact not in self._facts:
            return False
        self._facts.discard(fact)
        relation_bucket = self._by_relation[fact.relation]
        relation_bucket.discard(fact)
        if not relation_bucket:
            del self._by_relation[fact.relation]
        for arg in set(fact.args):
            bucket = self._by_constant[arg]
            bucket.discard(fact)
            if not bucket:
                del self._by_constant[arg]
        for positions in self._indexes_by_relation.get(fact.relation, ()):
            self._index_remove(self._indexes[(fact.relation, positions)], positions, fact)
        self._record(False, fact)
        return True

    @contextmanager
    def batch(self) -> Iterator["Instance"]:
        """Coalesce the mutations inside the ``with`` block into one delta.

        Facts and indexes change immediately (direct reads inside the batch
        see the latest state), but the version bump and the change-log
        entries are deferred until the outermost batch exits, so the whole
        block appears to derived-state consumers as a single atomic
        mutation.  The flip side: consumers that watch ``version`` — the
        engine's materializations — treat the database as unchanged until
        the batch commits, so querying an engine *inside* the block serves
        the pre-batch snapshot.  Nested batches merge into the outermost
        one.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._batch_pending:
                self._version += 1
                if self._change_log is not None:
                    version = self._version
                    self._change_log.extend(
                        (version, is_add, fact) for is_add, fact in self._batch_pending
                    )
                    self._trim_change_log()
                self._batch_pending.clear()

    def changes_since(self, version: int) -> "Delta | None":
        """The net fact delta between ``version`` and now, or ``None``.

        ``None`` means the delta cannot be reconstructed — this instance
        keeps no change log, the log has been trimmed past ``version``, or
        ``version`` is from the future — and the caller must fall back to a
        full rebuild.  Mutations that cancel out net to nothing, so an empty
        delta is possible even when the version moved.
        """
        from repro.incremental.delta import Delta

        log = self._change_log
        if log is None or version < self._change_floor or version > self._version:
            return None
        added: set[Fact] = set()
        removed: set[Fact] = set()
        start = bisect_right(log, version, key=lambda entry: entry[0])
        for _, is_add, fact in log[start:]:
            if is_add:
                if fact in removed:
                    removed.discard(fact)
                else:
                    added.add(fact)
            elif fact in added:
                added.discard(fact)
            else:
                removed.add(fact)
        return Delta(added=frozenset(added), removed=frozenset(removed))

    def _index_key(self, positions: tuple[int, ...], fact: Fact) -> tuple | None:
        """The fact's key in a positional index, or None if its arity is short.

        Interned instances key by dense term ids (``Fact.iargs``), which hash
        and compare as machine ints; the term-object keys remain behind
        ``REPRO_NO_INTERN``.
        """
        args = fact.iargs if self._interned else fact.args
        if all(p < len(args) for p in positions):
            return tuple(args[p] for p in positions)
        return None

    def _index_insert(
        self, index: dict[tuple, list[Fact]], positions: tuple[int, ...], fact: Fact
    ) -> None:
        key = self._index_key(positions, fact)
        if key is None:
            return
        bucket = index.get(key)
        if bucket is None:
            index[key] = [fact]
        else:
            bucket.append(fact)

    def _index_remove(
        self, index: dict[tuple, list[Fact]], positions: tuple[int, ...], fact: Fact
    ) -> None:
        key = self._index_key(positions, fact)
        if key is None:
            return
        entries = index.get(key)
        if entries is not None:
            try:
                entries.remove(fact)
            except ValueError:
                pass
            if not entries:
                del index[key]

    def copy(self) -> "Instance":
        duplicate = type(self)(self._facts)
        # A copy clones the original's storage mode, not the (possibly
        # flipped) process default — safe to set here because positional
        # indexes are built lazily, so none exist yet on the duplicate.
        duplicate._interned = self._interned
        # Continuation, not a restart: the copy draws fresh-null labels from
        # the same factory, so chase runs over original and copy never alias.
        duplicate._null_factory = self._null_factory
        return duplicate

    # -- basic queries ---------------------------------------------------

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Instance):
            return self._facts == other._facts
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = type(self).__name__
        return f"{kind}({len(self._facts)} facts)"

    def facts(self) -> FactSetView:
        """A read-only view of the fact set (zero-copy)."""
        return FactSetView(lambda: self._facts)

    def relation(self, name: str) -> FactSetView:
        """All facts over relation symbol ``name`` (a read-only view)."""
        return FactSetView(lambda: self._by_relation.get(name, _EMPTY))

    def relation_size(self, name: str) -> int:
        """How many facts use relation symbol ``name`` (O(1))."""
        return len(self._by_relation.get(name, _EMPTY))

    def relations(self) -> set[str]:
        """The relation symbols that actually occur in the instance."""
        return {name for name, bucket in self._by_relation.items() if bucket}

    def facts_with(self, element: object) -> FactSetView:
        """All facts mentioning the domain element ``element`` (a view)."""
        return FactSetView(lambda: self._by_constant.get(element, _EMPTY))

    # -- positional indexes ----------------------------------------------

    def _raw_index(
        self, relation: str, positions: tuple[int, ...]
    ) -> dict[tuple, list[Fact]]:
        """The backing index dict (id-keyed when interned), built lazily."""
        key = (relation, positions)
        index = self._indexes.get(key)
        if index is None:
            index = {}
            for fact in self._by_relation.get(relation, _EMPTY):
                self._index_insert(index, positions, fact)
            self._indexes[key] = index
            self._indexes_by_relation[relation].append(positions)
        return index

    def index(
        self, relation: str, positions: Iterable[int]
    ) -> Mapping[tuple, Sequence[Fact]]:
        """The positional index of ``relation`` on ``positions``.

        Maps each key tuple ``tuple(fact.args[p] for p in positions)`` to the
        bucket of matching facts.  Built lazily on first request, then kept
        up to date incrementally by :meth:`add` / :meth:`discard`.  Facts
        whose arity does not cover every requested position are omitted (they
        cannot match an atom that binds those positions).  Treat the mapping
        and its buckets as read-only.

        On an interned instance the storage is id-keyed; this accessor wraps
        it in a term-keyed read-only view so callers are unaffected.  Hot
        paths should use :meth:`probe`, which skips the per-key decoding.
        """
        raw = self._raw_index(relation, tuple(positions))
        if self._interned:
            return _DecodedIndexView(raw)
        return raw

    def probe(
        self, relation: str, positions: Iterable[int], key: tuple
    ) -> Sequence[Fact]:
        """The facts of ``relation`` whose ``positions`` carry ``key`` values.

        Amortised O(1) plus the size of the returned bucket.  The bucket is
        live (read-only): snapshot it before mutating the instance while
        iterating.  ``key`` always holds term objects; interned instances
        translate it to ids once (a key containing a never-seen term cannot
        match and short-circuits to the empty bucket).
        """
        index = self._raw_index(relation, tuple(positions))
        if self._interned:
            ikey = TERMS.try_intern_tuple(key)
            if ikey is None:
                return _EMPTY_BUCKET
            return index.get(ikey, _EMPTY_BUCKET)
        return index.get(key, _EMPTY_BUCKET)

    def columnar(self, relation: str, arity: int) -> ColumnarRelation:
        """The facts of ``relation`` with ``arity``, as interned columns.

        One ``array('q')`` column per position, rows aligned with
        ``Fact.iargs``.  Built lazily and cached until the next mutation
        *of this relation* (other relations' mutations leave it alive);
        the reduction pipeline reads it after the chase has stabilised, so
        rebuilds are rare in practice.
        """
        key = (relation, arity)
        store = self._columnar.get(key)
        if store is None:
            store = ColumnarRelation(
                arity,
                (
                    fact.iargs
                    for fact in self._by_relation.get(relation, _EMPTY)
                    if len(fact.args) == arity
                ),
            )
            self._columnar[key] = store
        return store

    def adom(self) -> set:
        """The active domain: every constant or null used in some fact."""
        return {element for element, bucket in self._by_constant.items() if bucket}

    def nulls(self) -> set:
        """All labelled nulls occurring in the instance."""
        return {element for element in self.adom() if is_null(element)}

    def constants(self) -> set:
        """All non-null domain elements occurring in the instance."""
        return {element for element in self.adom() if not is_null(element)}

    def schema(self) -> Schema:
        """The schema induced by the facts of the instance."""
        return Schema.from_facts(self._facts)

    def size(self) -> int:
        """``||I||``: total number of symbols needed to write the instance."""
        return sum(1 + fact.arity for fact in self._facts)

    # -- structural operations -------------------------------------------

    def restrict(self, elements: Iterable[object]) -> "Instance":
        """``I|_S``: the facts mentioning only elements of ``S``."""
        keep = set(elements)
        facts = {f for f in self._facts if all(a in keep for a in f.args)}
        return Instance(facts)

    def restrict_relations(self, relations: Iterable[str]) -> "Instance":
        """The facts whose relation symbol is among ``relations``."""
        keep = set(relations)
        return Instance(f for f in self._facts if f.relation in keep)

    def guarded_sets(self) -> set[frozenset]:
        """All maximal guarded sets: the element sets of individual facts."""
        return {frozenset(f.args) for f in self._facts}

    def is_guarded_set(self, elements: Iterable[object]) -> bool:
        """True if some fact mentions every element of ``elements``."""
        wanted = set(elements)
        if not wanted:
            return True
        anchor = next(iter(wanted))
        return any(wanted <= set(f.args) for f in self._by_constant.get(anchor, _EMPTY))

    def gaifman_graph(self) -> dict[object, set]:
        """The Gaifman graph as an adjacency dictionary."""
        graph: dict[object, set] = {element: set() for element in self.adom()}
        for fact in self._facts:
            distinct = set(fact.args)
            for a in distinct:
                graph[a].update(distinct - {a})
        return graph

    def union(self, other: "Instance") -> "Instance":
        merged = Instance(self._facts)
        merged.update(other)
        return merged


class Database(Instance):
    """A finite instance using only constants (no labelled nulls).

    Databases keep a mutation log (see the module docstring) so that the
    incremental-maintenance subsystem can reconstruct the exact fact delta
    between two version snapshots; the construction-time facts are below the
    log floor (nothing existed to diff against before them).
    """

    def __init__(self, facts: Iterable[Fact] = ()):
        super().__init__(facts)
        self._change_log = []
        self._change_floor = self._version

    def add(self, fact: Fact) -> bool:
        if fact.has_null():
            raise ValueError(f"databases may not contain nulls: {fact}")
        return super().add(fact)
