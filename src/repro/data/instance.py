"""Instances and databases: finite sets of facts with useful indexes.

An :class:`Instance` may contain labelled nulls (it is the object produced by
the chase); a :class:`Database` is an instance that is promised to be
null-free.  Both maintain per-relation indexes and per-constant adjacency so
that the algorithms in the rest of the library get the (amortised) constant
time lookups the paper's RAM model assumes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.data.facts import Fact
from repro.data.schema import Schema
from repro.data.terms import is_null


class Instance:
    """A finite set of facts over constants and labelled nulls."""

    def __init__(self, facts: Iterable[Fact] = ()):
        self._facts: set[Fact] = set()
        self._by_relation: dict[str, set[Fact]] = defaultdict(set)
        self._by_constant: dict[object, set[Fact]] = defaultdict(set)
        for fact in facts:
            self.add(fact)

    # -- construction ----------------------------------------------------

    def add(self, fact: Fact) -> bool:
        """Add ``fact``; return True if it was not already present."""
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._by_relation[fact.relation].add(fact)
        for arg in set(fact.args):
            self._by_constant[arg].add(fact)
        return True

    def update(self, facts: Iterable[Fact]) -> int:
        """Add many facts; return how many were new."""
        added = 0
        for fact in facts:
            if self.add(fact):
                added += 1
        return added

    def discard(self, fact: Fact) -> bool:
        """Remove ``fact`` if present; return True if it was removed."""
        if fact not in self._facts:
            return False
        self._facts.discard(fact)
        self._by_relation[fact.relation].discard(fact)
        for arg in set(fact.args):
            bucket = self._by_constant[arg]
            bucket.discard(fact)
            if not bucket:
                del self._by_constant[arg]
        return True

    def copy(self) -> "Instance":
        return type(self)(self._facts)

    # -- basic queries ---------------------------------------------------

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Instance):
            return self._facts == other._facts
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = type(self).__name__
        return f"{kind}({len(self._facts)} facts)"

    def facts(self) -> set[Fact]:
        """A copy of the fact set."""
        return set(self._facts)

    def relation(self, name: str) -> set[Fact]:
        """All facts over relation symbol ``name`` (a copy)."""
        return set(self._by_relation.get(name, ()))

    def relations(self) -> set[str]:
        """The relation symbols that actually occur in the instance."""
        return {name for name, bucket in self._by_relation.items() if bucket}

    def facts_with(self, element: object) -> set[Fact]:
        """All facts mentioning the domain element ``element``."""
        return set(self._by_constant.get(element, ()))

    def adom(self) -> set:
        """The active domain: every constant or null used in some fact."""
        return {element for element, bucket in self._by_constant.items() if bucket}

    def nulls(self) -> set:
        """All labelled nulls occurring in the instance."""
        return {element for element in self.adom() if is_null(element)}

    def constants(self) -> set:
        """All non-null domain elements occurring in the instance."""
        return {element for element in self.adom() if not is_null(element)}

    def schema(self) -> Schema:
        """The schema induced by the facts of the instance."""
        return Schema.from_facts(self._facts)

    def size(self) -> int:
        """``||I||``: total number of symbols needed to write the instance."""
        return sum(1 + fact.arity for fact in self._facts)

    # -- structural operations -------------------------------------------

    def restrict(self, elements: Iterable[object]) -> "Instance":
        """``I|_S``: the facts mentioning only elements of ``S``."""
        keep = set(elements)
        facts = {f for f in self._facts if all(a in keep for a in f.args)}
        return Instance(facts)

    def restrict_relations(self, relations: Iterable[str]) -> "Instance":
        """The facts whose relation symbol is among ``relations``."""
        keep = set(relations)
        return Instance(f for f in self._facts if f.relation in keep)

    def guarded_sets(self) -> set[frozenset]:
        """All maximal guarded sets: the element sets of individual facts."""
        return {frozenset(f.args) for f in self._facts}

    def is_guarded_set(self, elements: Iterable[object]) -> bool:
        """True if some fact mentions every element of ``elements``."""
        wanted = set(elements)
        if not wanted:
            return True
        anchor = next(iter(wanted))
        return any(wanted <= set(f.args) for f in self._by_constant.get(anchor, ()))

    def gaifman_graph(self) -> dict[object, set]:
        """The Gaifman graph as an adjacency dictionary."""
        graph: dict[object, set] = {element: set() for element in self.adom()}
        for fact in self._facts:
            distinct = set(fact.args)
            for a in distinct:
                graph[a].update(distinct - {a})
        return graph

    def union(self, other: "Instance") -> "Instance":
        merged = Instance(self._facts)
        merged.update(other)
        return merged


class Database(Instance):
    """A finite instance using only constants (no labelled nulls)."""

    def add(self, fact: Fact) -> bool:
        if fact.has_null():
            raise ValueError(f"databases may not contain nulls: {fact}")
        return super().add(fact)

    def copy(self) -> "Database":
        return Database(self._facts)
