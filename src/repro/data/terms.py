"""Domain elements: constants and labelled nulls.

Constants are ordinary hashable Python values (strings, integers, tuples).
Nulls are the labelled nulls introduced by existential quantifiers during the
chase (the set ``N`` of the paper).  They are represented by a dedicated
class so that "is this a null?" is a type check rather than a naming
convention.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Null:
    """A labelled null, identified by an integer label.

    Two nulls are equal exactly when their labels are equal.  Nulls sort
    after all constants used in the test-suite workloads, which keeps
    deterministic orderings simple; ordering between a null and an arbitrary
    constant falls back to comparing string representations.
    """

    label: int

    def __hash__(self) -> int:
        # One int hash instead of the generated ``hash((label,))`` — nulls
        # are hashed on every set/index operation the chase performs.
        return hash(self.label)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"_:n{self.label}"

    def __lt__(self, other: object) -> bool:
        if isinstance(other, Null):
            return self.label < other.label
        return NotImplemented


#: The single process-wide label counter.  Every factory constructed
#: without an explicit counter draws from it, so nulls created by
#: *independent* chase runs (or by an instance and its copies) can never
#: alias: each label is used at most once per process.
_GLOBAL_COUNTER = itertools.count(1)


@dataclass
class NullFactory:
    """Produces fresh nulls with process-globally unique labels.

    A factory is attached to a chase run so that the nulls it introduces are
    distinct from the nulls of every other run in the same process.  The
    default (and the right choice almost always) is to draw from the shared
    process-wide counter; pass an explicit ``itertools.count`` only when a
    deliberately isolated label sequence is wanted (e.g. deterministic
    fixtures).
    """

    _counter: itertools.count = field(default_factory=lambda: _GLOBAL_COUNTER)

    def __call__(self) -> Null:
        return Null(next(self._counter))


_GLOBAL_FACTORY = NullFactory(_GLOBAL_COUNTER)


def fresh_null() -> Null:
    """Return a process-wide fresh labelled null."""
    return _GLOBAL_FACTORY()


def shared_null_factory() -> NullFactory:
    """A factory that draws labels from the process-wide counter.

    Distinct factories returned by this function interleave on the same
    counter instead of restarting — the continuation semantics
    :class:`~repro.data.instance.Instance` and the chase rely on so two
    runs never hand out the same label twice.  (Equivalent to a plain
    ``NullFactory()``; kept as the intention-revealing spelling.)
    """
    return NullFactory(_GLOBAL_COUNTER)


def is_null(value: object) -> bool:
    """True if ``value`` is a labelled null (an element of ``N``)."""
    return isinstance(value, Null)
