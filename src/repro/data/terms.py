"""Domain elements: constants and labelled nulls.

Constants are ordinary hashable Python values (strings, integers, tuples).
Nulls are the labelled nulls introduced by existential quantifiers during the
chase (the set ``N`` of the paper).  They are represented by a dedicated
class so that "is this a null?" is a type check rather than a naming
convention.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Null:
    """A labelled null, identified by an integer label.

    Two nulls are equal exactly when their labels are equal.  Nulls sort
    after all constants used in the test-suite workloads, which keeps
    deterministic orderings simple; ordering between a null and an arbitrary
    constant falls back to comparing string representations.
    """

    label: int

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"_:n{self.label}"

    def __lt__(self, other: object) -> bool:
        if isinstance(other, Null):
            return self.label < other.label
        return NotImplemented


@dataclass
class NullFactory:
    """Produces fresh nulls with globally increasing labels.

    A factory is attached to a chase run so that the nulls it introduces are
    distinct from the nulls of every other run in the same process.
    """

    _counter: itertools.count = field(default_factory=itertools.count)

    def __call__(self) -> Null:
        return Null(next(self._counter))


_GLOBAL_FACTORY = NullFactory(itertools.count(1))


def fresh_null() -> Null:
    """Return a process-wide fresh labelled null."""
    return _GLOBAL_FACTORY()


def is_null(value: object) -> bool:
    """True if ``value`` is a labelled null (an element of ``N``)."""
    return isinstance(value, Null)
