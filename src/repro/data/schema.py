"""Schemas: finite maps from relation symbols to arities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.data.facts import Fact


class SchemaError(ValueError):
    """Raised when facts or atoms disagree with a schema."""


@dataclass(frozen=True)
class Schema:
    """A schema ``S``: a set of relation symbols with associated arities."""

    relations: Mapping[str, int] = field(default_factory=dict)

    def __init__(self, relations: Mapping[str, int] | Iterable[tuple[str, int]] = ()):
        object.__setattr__(self, "relations", dict(relations))

    def arity(self, relation: str) -> int:
        try:
            return self.relations[relation]
        except KeyError as exc:
            raise SchemaError(f"unknown relation symbol {relation!r}") from exc

    def __contains__(self, relation: str) -> bool:
        return relation in self.relations

    def __iter__(self) -> Iterator[str]:
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self.relations)

    def symbols(self) -> set[str]:
        return set(self.relations)

    def validate_fact(self, fact: Fact) -> None:
        """Raise :class:`SchemaError` if ``fact`` does not conform."""
        if fact.relation not in self.relations:
            raise SchemaError(f"fact {fact} uses unknown relation {fact.relation!r}")
        expected = self.relations[fact.relation]
        if fact.arity != expected:
            raise SchemaError(
                f"fact {fact} has arity {fact.arity}, expected {expected}"
            )

    def union(self, other: "Schema") -> "Schema":
        """The union of two schemas; shared symbols must agree on arity."""
        merged = dict(self.relations)
        for name, arity in other.relations.items():
            if name in merged and merged[name] != arity:
                raise SchemaError(
                    f"relation {name!r} has conflicting arities "
                    f"{merged[name]} and {arity}"
                )
            merged[name] = arity
        return Schema(merged)

    def restrict(self, symbols: Iterable[str]) -> "Schema":
        """The sub-schema containing only ``symbols``."""
        keep = set(symbols)
        return Schema({r: a for r, a in self.relations.items() if r in keep})

    @classmethod
    def from_facts(cls, facts: Iterable[Fact]) -> "Schema":
        """Infer a schema from a collection of facts."""
        relations: dict[str, int] = {}
        for fact in facts:
            previous = relations.setdefault(fact.relation, fact.arity)
            if previous != fact.arity:
                raise SchemaError(
                    f"relation {fact.relation!r} used with arities "
                    f"{previous} and {fact.arity}"
                )
        return cls(relations)
