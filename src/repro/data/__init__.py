"""Relational substrate: constants, nulls, facts, schemas and instances.

This package implements the data model of Section 2 of the paper: databases
are finite sets of facts over constants, instances may additionally use
labelled nulls (introduced by the chase), and ``adom`` / guarded sets /
Gaifman graphs are the derived notions the algorithms rely on.

The storage layer is *interned* by default: every constant and null is
dictionary-encoded to a dense int id by the process-wide
:data:`~repro.data.interning.TERMS` dictionary, positional indexes key
their buckets by id tuples, and :mod:`repro.data.columns` provides the
columnar kernels the reduction/enumeration pipeline runs over.  Set
``REPRO_NO_INTERN=1`` (or :func:`~repro.data.interning.set_interning`) to
fall back to the historical term-object path for A/B comparison.
"""

from repro.config import interning_enabled, set_interning, use_interning
from repro.data.columns import ColumnarRelation
from repro.data.facts import Fact
from repro.data.instance import Database, Instance
from repro.data.interning import TERMS, TermDictionary
from repro.data.schema import Schema
from repro.data.terms import Null, fresh_null, is_null, shared_null_factory

__all__ = [
    "Null",
    "fresh_null",
    "shared_null_factory",
    "is_null",
    "Fact",
    "Schema",
    "Instance",
    "Database",
    "ColumnarRelation",
    "TERMS",
    "TermDictionary",
    "interning_enabled",
    "set_interning",
    "use_interning",
]
