"""Relational substrate: constants, nulls, facts, schemas and instances.

This package implements the data model of Section 2 of the paper: databases
are finite sets of facts over constants, instances may additionally use
labelled nulls (introduced by the chase), and ``adom`` / guarded sets /
Gaifman graphs are the derived notions the algorithms rely on.
"""

from repro.data.terms import Null, fresh_null, is_null
from repro.data.facts import Fact
from repro.data.schema import Schema
from repro.data.instance import Database, Instance

__all__ = [
    "Null",
    "fresh_null",
    "is_null",
    "Fact",
    "Schema",
    "Instance",
    "Database",
]
