"""Facts: relation symbols applied to tuples of domain elements."""

from __future__ import annotations

from typing import Iterator

from repro.data.interning import TERMS
from repro.data.terms import is_null


class Fact:
    """A fact ``R(c1, ..., ck)`` over constants and/or nulls.

    ``relation`` is the relation symbol (a string), ``args`` the argument
    tuple.  Facts are immutable and hashable so they can live in sets, which
    is how instances store them.  Two derived values are cached per object
    because the hot paths recompute them constantly:

    * the hash (facts are hashed on every set membership test the chase and
      the homomorphism search perform), and
    * :attr:`iargs`, the argument tuple dictionary-encoded to dense ids by
      the process-wide :data:`repro.data.interning.TERMS` — the key the
      interned positional indexes and columnar relations use.  Ids are
      stable for the process lifetime, so the cache never goes stale.
    """

    __slots__ = ("relation", "args", "_hash", "_iargs")

    def __init__(self, relation: str, args) -> None:
        # _hash and _iargs slots stay unset until first use (facts are
        # created in bulk on the chase hot path; two setattrs, not four).
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", tuple(args))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"Fact is immutable (cannot set {name!r})")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"Fact is immutable (cannot delete {name!r})")

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Fact:
            return self.relation == other.relation and self.args == other.args
        return NotImplemented

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            cached = hash((self.relation, self.args))
            object.__setattr__(self, "_hash", cached)
            return cached

    def __reduce__(self):
        return (Fact, (self.relation, self.args))

    @property
    def iargs(self) -> tuple[int, ...]:
        """The argument tuple as dense term ids (interned once, then cached)."""
        try:
            return self._iargs
        except AttributeError:
            cached = TERMS.intern_tuple(self.args)
            object.__setattr__(self, "_iargs", cached)
            return cached

    @property
    def arity(self) -> int:
        return len(self.args)

    def constants(self) -> Iterator[object]:
        """All domain elements occurring in the fact (with repetitions)."""
        return iter(self.args)

    def has_null(self) -> bool:
        """True if at least one argument is a labelled null."""
        return any(is_null(a) for a in self.args)

    def nulls(self) -> set:
        """The set of labelled nulls occurring in the fact."""
        return {a for a in self.args if is_null(a)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(a) if not isinstance(a, str) else a for a in self.args)
        return f"{self.relation}({inner})"
