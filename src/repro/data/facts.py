"""Facts: relation symbols applied to tuples of domain elements."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.data.terms import is_null


@dataclass(frozen=True, slots=True)
class Fact:
    """A fact ``R(c1, ..., ck)`` over constants and/or nulls.

    ``relation`` is the relation symbol (a string), ``args`` the argument
    tuple.  Facts are immutable and hashable so they can live in sets, which
    is how instances store them.
    """

    relation: str
    args: tuple

    def __init__(self, relation: str, args) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", tuple(args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def constants(self) -> Iterator[object]:
        """All domain elements occurring in the fact (with repetitions)."""
        return iter(self.args)

    def has_null(self) -> bool:
        """True if at least one argument is a labelled null."""
        return any(is_null(a) for a in self.args)

    def nulls(self) -> set:
        """The set of labelled nulls occurring in the fact."""
        return {a for a in self.args if is_null(a)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(a) if not isinstance(a, str) else a for a in self.args)
        return f"{self.relation}({inner})"
