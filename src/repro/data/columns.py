"""Columnar storage and kernels for interned (dense-int) relations.

A :class:`ColumnarRelation` stores one relation as parallel ``array('q')``
columns of term ids — the layout the litmus-style engines use to make the
paper's O(1) tuple operations cheap in practice.  The kernels below are the
building blocks of the hot paths:

* :meth:`ColumnarRelation.project` / :meth:`ColumnarRelation.index_on` —
  the key-projection sets and positional row indexes the full reducer and
  the enumeration phase consume;
* :meth:`ColumnarRelation.filter_by_keys` — the hash semi-join kernel
  (keep the rows whose key projection hits a key set);
* :meth:`ColumnarRelation.sorted_column` / :func:`merge_intersect` /
  :meth:`ColumnarRelation.semijoin_sorted` — sorted-run kernels for
  single-column joins.  The reducer currently favours the hash kernels
  (their key sets are cached per relation and reused across passes); the
  sorted-run forms are for callers joining large, uncached key columns.

Rows are plain ``tuple``\\ s of ids at the API boundary (they interoperate
with the set-based :class:`~repro.yannakakis.relations.AtomRelation`
machinery); the columns are the storage of record, and every kernel walks
them with ``zip``'s C-level iteration instead of per-row Python objects.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence

from repro.config import codegen_enabled

__all__ = ["ColumnarRelation", "merge_intersect"]

#: Resolved lazily: :mod:`repro.engine.codegen` sits in a higher layer, so
#: importing it at module load would invert the package layering.
_key_kernels = None


def _kernels(arity: int):
    """The arity-specialised kernel family, or ``None`` (generic path)."""
    global _key_kernels
    if _key_kernels is None:
        from repro.engine.codegen import key_kernels

        _key_kernels = key_kernels
    return _key_kernels(arity)


class ColumnarRelation:
    """A relation of ``arity`` columns of interned ids (``array('q')``)."""

    __slots__ = ("arity", "columns", "_length")

    def __init__(self, arity: int, rows: Iterable[Sequence[int]] | None = None):
        self.arity = arity
        self.columns: list[array] = [array("q") for _ in range(arity)]
        self._length = 0
        if rows is not None:
            self.extend(rows)

    @classmethod
    def from_rows(cls, arity: int, rows: Iterable[Sequence[int]]) -> "ColumnarRelation":
        return cls(arity, rows)

    # -- construction ------------------------------------------------------

    def append(self, row: Sequence[int]) -> None:
        for column, value in zip(self.columns, row):
            column.append(value)
        self._length += 1

    def extend(self, rows: Iterable[Sequence[int]]) -> None:
        if self.arity == 0:
            self._length += sum(1 for _ in rows)
            return
        columns = self.columns
        count = 0
        for row in rows:
            for column, value in zip(columns, row):
                column.append(value)
            count += 1
        self._length += count

    # -- row access --------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[tuple]:
        if self.arity == 0:
            return iter([()] * self._length)
        return zip(*self.columns)

    def row(self, index: int) -> tuple:
        return tuple(column[index] for column in self.columns)

    def column(self, position: int) -> array:
        return self.columns[position]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnarRelation(arity={self.arity}, {self._length} rows)"

    # -- kernels -----------------------------------------------------------

    def _key_iter(self, positions: tuple[int, ...]) -> Iterator[tuple]:
        """Iterate the key tuples at ``positions`` (one zip, no row objects)."""
        return zip(*(self.columns[p] for p in positions))

    def project(self, positions: Sequence[int]) -> set[tuple]:
        """The set of key tuples at ``positions`` (set semantics)."""
        positions = tuple(positions)
        if not positions:
            return {()} if self._length else set()
        return set(self._key_iter(positions))

    def project_with_equalities(
        self,
        positions: Sequence[int],
        equal_groups: Sequence[Sequence[int]] = (),
    ) -> set[tuple]:
        """Project onto ``positions`` keeping only rows whose ``equal_groups``
        positions carry pairwise equal values (repeated-variable filters)."""
        groups = [tuple(group) for group in equal_groups if len(group) > 1]
        if not groups:
            return self.project(positions)
        positions = tuple(positions)
        columns = self.columns
        out: set[tuple] = set()
        group_columns = [[columns[p] for p in group] for group in groups]
        key_columns = [columns[p] for p in positions]
        for index in range(self._length):
            consistent = True
            for cols in group_columns:
                first = cols[0][index]
                if any(col[index] != first for col in cols[1:]):
                    consistent = False
                    break
            if consistent:
                out.add(tuple(col[index] for col in key_columns))
        return out

    def index_on(self, positions: Sequence[int]) -> dict[tuple, list[tuple]]:
        """Group full rows by their key tuple at ``positions``."""
        positions = tuple(positions)
        index: dict[tuple, list[tuple]] = {}
        if not positions:
            if self._length:
                index[()] = list(self)
            return index
        if codegen_enabled():
            kernels = _kernels(len(positions))
            if kernels is not None:
                columns = self.columns
                return kernels.index_rows([columns[p] for p in positions], self)
        for key, row in zip(self._key_iter(positions), self):
            bucket = index.get(key)
            if bucket is None:
                index[key] = [row]
            else:
                bucket.append(row)
        return index

    def filter_by_keys(
        self, positions: Sequence[int], keys: set[tuple]
    ) -> list[tuple]:
        """Hash semi-join kernel: the rows whose key projection is in ``keys``."""
        positions = tuple(positions)
        if not positions:
            return list(self) if keys else []
        if codegen_enabled():
            kernels = _kernels(len(positions))
            if kernels is not None:
                columns = self.columns
                return kernels.filter_rows([columns[p] for p in positions], self, keys)
        return [
            row
            for key, row in zip(self._key_iter(positions), self)
            if key in keys
        ]

    def sorted_column(self, position: int) -> array:
        """A sorted copy of one key column (the input to sorted-run kernels)."""
        return array("q", sorted(self.columns[position]))

    def filter_by_keys_sorted(self, position: int, keys: set[tuple]) -> list[tuple]:
        """Sorted-merge semi-join kernel for a single key column.

        Set-identical to ``filter_by_keys((position,), keys)``; preferable
        when the key set dwarfs this relation — the sorted-run intersection
        first prunes ``keys`` down to the values actually present in the
        column, so the per-row membership test probes a set bounded by this
        relation's distinct values instead of the full key set.  The
        planner's per-edge kernel decision
        (:func:`repro.planner.cost.choose_semijoin_kernel`) is what routes
        semi-joins here.
        """
        if not keys:
            return []
        key_run = array("q", sorted(key for (key,) in keys))
        present = set(merge_intersect(self.sorted_column(position), key_run))
        column = self.columns[position]
        return [row for value, row in zip(column, self) if value in present]

    def semijoin_sorted(
        self, position: int, other: "ColumnarRelation", other_position: int
    ) -> list[tuple]:
        """Single-column semi-join via sorted runs: rows of ``self`` whose
        ``position`` value occurs in ``other``'s ``other_position`` column."""
        keys = merge_intersect(
            self.sorted_column(position), other.sorted_column(other_position)
        )
        key_set = set(keys)
        column = self.columns[position]
        return [row for value, row in zip(column, self) if value in key_set]


def merge_intersect(left: array, right: array) -> array:
    """Sorted-run intersection of two ``array('q')`` key runs (distinct keys)."""
    out = array("q")
    i, j = 0, 0
    last: int | None = None
    left_n, right_n = len(left), len(right)
    while i < left_n and j < right_n:
        a, b = left[i], right[j]
        if a < b:
            i += 1
        elif b < a:
            j += 1
        else:
            if a != last:
                out.append(a)
                last = a
            i += 1
            j += 1
    return out
