"""Dictionary encoding of domain elements to dense integer ids.

The paper's guarantees (linear preprocessing, constant-delay enumeration)
are stated for a RAM model where one tuple operation costs O(1).  Hashing
full Python term objects — strings, tuples, :class:`~repro.data.terms.Null`
instances — on every index probe makes that constant large; the standard
systems trick is *dictionary encoding*: map every constant and labelled
null to a dense ``int`` id once, run every hot-path comparison, hash and
join over the ids, and decode back to terms only when an answer is emitted.

:class:`TermDictionary` is that mapping.  A single process-wide instance
(:data:`TERMS`) backs every interned structure, so ids are stable for the
lifetime of the process and two instances/relations can exchange ids freely
(append-only: ids are never reused or remapped).  Nulls are flagged at
intern time so "is this id a null?" is one ``bytearray`` load instead of a
decode plus ``isinstance``.

Interned mode is **on by default** and controls how new
:class:`~repro.data.instance.Instance` objects key their positional indexes
and how the reduction/enumeration pipeline stores its rows.  Set the
environment variable ``REPRO_NO_INTERN=1`` (or call :func:`set_interning`)
to fall back to the historical term-object path — the A/B escape hatch the
differential test-suite exercises.
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.config import interning_enabled
from repro.config import set_interning as _set_interning
from repro.config import use_interning as _use_interning
from repro.data.terms import is_null

__all__ = [
    "TERMS",
    "TermDictionary",
    "interning_enabled",
    "set_interning",
    "use_interning",
]


class TermDictionary:
    """A bijective map between domain elements and dense ``int`` ids.

    Append-only: once a term receives an id, the pair is never removed or
    changed, so ids may be cached on facts, stored in columnar relations
    and compared across instances.  Thread-safe: lookups of already-interned
    terms are lock-free dict reads, and first-sight assignment runs under a
    lock with the term published to the decode tables *before* its id
    becomes visible, so concurrent interners (e.g. two engines preprocessing
    in different threads) can never hand two terms the same id or expose an
    id that does not decode.
    """

    __slots__ = ("_ids", "_terms", "_null_flags", "_lock")

    def __init__(self) -> None:
        self._ids: dict[object, int] = {}
        self._terms: list[object] = []
        self._null_flags = bytearray()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: object) -> bool:
        return term in self._ids

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TermDictionary({len(self._terms)} terms)"

    # -- encoding ---------------------------------------------------------

    def intern(self, term: object) -> int:
        """The id of ``term``, assigning the next dense id on first sight."""
        tid = self._ids.get(term)
        if tid is None:
            with self._lock:
                tid = self._ids.get(term)
                if tid is None:
                    tid = len(self._terms)
                    # Decode tables first, id last: a reader that sees the
                    # id can always decode it.
                    self._terms.append(term)
                    self._null_flags.append(1 if is_null(term) else 0)
                    self._ids[term] = tid
        return tid

    def intern_tuple(self, terms: Iterable[object]) -> tuple[int, ...]:
        """Intern every element; the id tuple aligned with ``terms``."""
        get = self._ids.get
        out = []
        for term in terms:
            tid = get(term)
            if tid is None:
                tid = self.intern(term)
            out.append(tid)
        return tuple(out)

    def try_intern(self, term: object) -> int | None:
        """The id of ``term`` if it was ever interned, else ``None``.

        The probe path: a term that no fact ever mentioned cannot match
        anything, so probes translate keys without growing the dictionary.
        """
        return self._ids.get(term)

    def try_intern_tuple(self, terms: Iterable[object]) -> tuple[int, ...] | None:
        """Id tuple for ``terms``, or ``None`` if any element is unseen."""
        get = self._ids.get
        out = []
        for term in terms:
            tid = get(term)
            if tid is None:
                return None
            out.append(tid)
        return tuple(out)

    # -- decoding ---------------------------------------------------------

    def decode(self, tid: int) -> object:
        """The term behind ``tid`` (raises ``IndexError`` on unknown ids)."""
        return self._terms[tid]

    def decode_tuple(self, ids: Iterable[int]) -> tuple:
        """Decode an id tuple back to the original terms."""
        terms = self._terms
        return tuple(terms[tid] for tid in ids)

    def is_null_id(self, tid: int) -> bool:
        """True if ``tid`` encodes a labelled null (one flag load)."""
        return bool(self._null_flags[tid])

    def decoder(self):
        """A positional decode callable — the table's C-level ``__getitem__``.

        The decode table is append-only and never replaced, so the bound
        method stays valid forever; generated enumeration walks call it once
        per emitted value instead of going through :meth:`decode`.
        """
        return self._terms.__getitem__

    def null_flags(self) -> bytearray:
        """The id-indexed null-flag table (append-only, never replaced).

        Exposed for the generated null filters, which index it directly
        instead of calling :meth:`is_null_id` per value.
        """
        return self._null_flags


#: The process-wide dictionary every interned structure shares.
TERMS = TermDictionary()


# -- deprecated switch entry points ---------------------------------------
#
# The interning toggle moved to :mod:`repro.config` (one module for every
# execution switch, with a documented precedence order).  These wrappers
# keep the historical import path working for one release; new code should
# use ``repro.config.set_interning`` / ``use_interning`` or pass an
# :class:`repro.config.ExecutionOptions` to the engine.


def set_interning(enabled: bool) -> bool:
    """Deprecated alias for :func:`repro.config.set_interning`."""
    warnings.warn(
        "repro.data.interning.set_interning is deprecated; "
        "use repro.config.set_interning",
        DeprecationWarning,
        stacklevel=2,
    )
    return _set_interning(enabled)


@contextmanager
def use_interning(enabled: bool) -> Iterator[None]:
    """Deprecated alias for :func:`repro.config.use_interning`."""
    warnings.warn(
        "repro.data.interning.use_interning is deprecated; "
        "use repro.config.use_interning",
        DeprecationWarning,
        stacklevel=3,
    )
    with _use_interning(enabled):
        yield
