"""The chase procedure and the query-directed chase of Section 3."""

from repro.chase.standard import ChaseResult, chase
from repro.chase.query_directed import QueryDirectedChase, query_directed_chase
from repro.chase.horn_chase import horn_saturation

__all__ = [
    "ChaseResult",
    "QueryDirectedChase",
    "chase",
    "horn_saturation",
    "query_directed_chase",
]
