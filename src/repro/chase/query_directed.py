"""The query-directed chase ``ch^q_O(D)`` (Section 3, Proposition 3.3).

For a guarded ontology the full chase may be infinite, but evaluating a fixed
CQ ``q`` only ever inspects a bounded-radius neighbourhood of the database
part: every homomorphic "excursion" of ``q`` into the null part uses at most
``|var(q)|`` variables and therefore stays within distance ``|var(q)|`` of
the guarded set at which it crosses the boundary.  The query-directed chase
is the restricted chase truncated at a null depth that covers every such
excursion plus the ontology's own head growth; by Lemma 3.2 it supports
complete answers, minimal partial answers and minimal partial answers with
multi-wildcards of the OMQ.

The resulting instance is *chase-like* (Lemma C.3): the database part plus
constant-size trees of nulls grafted onto guarded sets.  The
:class:`QueryDirectedChase` wrapper exposes that decomposition because the
enumeration algorithms of Sections 5 and 6 rely on it.

The underlying run delegates to :func:`repro.chase.standard.chase` and is
therefore semi-naive (delta-driven) over the instance's positional indexes:
after the first round, trigger candidates are only matched against facts
added in the previous round.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.instance import Database, Instance
from repro.data.terms import Null
from repro.chase.standard import ChaseRecorder, ChaseResult, chase
from repro.cq.query import ConjunctiveQuery
from repro.tgds.ontology import Ontology


def default_null_depth(ontology: Ontology, query: ConjunctiveQuery) -> int:
    """The default truncation depth for the query-directed chase.

    ``|var(q)|`` levels cover every excursion of the query into the null
    part; the additive ontology term covers chains of TGD firings that are
    needed to *derive* facts over database constants or to complete a tree
    pattern that a query excursion inspects.
    """
    query_radius = max(1, len(query.variables()))
    ontology_radius = len(ontology) * max(1, ontology.max_head_radius())
    return query_radius + ontology_radius + 1


@dataclass
class QueryDirectedChase:
    """The query-directed chase together with its decomposition.

    ``database_version`` snapshots ``database.version`` at chase time, so
    callers that cache a chase (notably :class:`repro.engine.QueryEngine`)
    can detect later database mutations and invalidate.
    """

    database: Database
    ontology: Ontology
    query: ConjunctiveQuery
    result: ChaseResult
    null_depth_bound: int
    database_version: int = -1

    @property
    def instance(self) -> Instance:
        return self.result.instance

    def is_current(self) -> bool:
        """True while the underlying database has not mutated since the run."""
        return self.database_version == self.database.version

    def supports(self, query: ConjunctiveQuery, ontology: Ontology | None = None) -> bool:
        """True if this chase is deep enough to evaluate ``query``.

        A run truncated at depth ``d`` is a superset of every shallower
        truncation and a subset of the full chase, so complete-answer
        evaluation of any query whose default depth is at most ``d`` is
        exact on it (answers are monotone in the instance and agree with
        certain answers at both ends of the sandwich).
        """
        target = ontology if ontology is not None else self.ontology
        return default_null_depth(target, query) <= self.null_depth_bound

    def database_constants(self) -> frozenset:
        return self.result.base_constants

    def nulls(self) -> set[Null]:
        return self.result.nulls()

    def blocks(self) -> list[tuple[set[Null], set]]:
        """The witnesses of the chase-like decomposition (Lemma C.3)."""
        return self.result.null_blocks()

    def size(self) -> int:
        return self.instance.size()


def query_directed_chase(
    database: Database,
    ontology: Ontology,
    query: ConjunctiveQuery,
    null_depth: int | None = None,
    max_facts: int = 5_000_000,
    reuse: QueryDirectedChase | None = None,
    recorder: ChaseRecorder | None = None,
    codegen: bool | None = None,
) -> QueryDirectedChase:
    """Compute ``ch^q_O(D)`` for the given database, ontology and query.

    When ``reuse`` holds a previous run over the *same* database and ontology
    that is still current and at least as deep as ``query`` requires, the
    chased instance is shared instead of recomputed — this is the
    preprocessing/enumeration split the engine relies on.  The returned
    wrapper still carries the new query.  ``recorder`` observes the
    underlying run for provenance capture (ignored on the reuse path, where
    no run happens).  ``codegen`` selects the generated single-atom-body
    matchers of the underlying run (``None`` → process default).
    """
    depth = null_depth if null_depth is not None else default_null_depth(ontology, query)
    if (
        reuse is not None
        and reuse.database is database
        and reuse.ontology == ontology
        and reuse.is_current()
        and reuse.null_depth_bound >= depth
    ):
        return QueryDirectedChase(
            database=database,
            ontology=ontology,
            query=query,
            result=reuse.result,
            null_depth_bound=reuse.null_depth_bound,
            database_version=reuse.database_version,
        )
    snapshot = database.version
    result = chase(
        database,
        ontology,
        max_null_depth=depth,
        max_facts=max_facts,
        recorder=recorder,
        codegen=codegen,
    )
    return QueryDirectedChase(
        database=database,
        ontology=ontology,
        query=query,
        result=result,
        null_depth_bound=depth,
        database_version=snapshot,
    )
