"""The (restricted) chase for sets of TGDs.

The chase makes the consequences of an ontology explicit in an instance by
repeatedly firing TGDs whose body matches but whose head is not yet
satisfied, inventing fresh labelled nulls for existential variables.  We
implement the *restricted* (standard) chase with round-based fairness; the
*oblivious* chase of the paper (fire every trigger regardless of head
satisfaction) is available behind a flag and is only useful for small inputs
because it rarely terminates on ontologies with existentials.

Guarded ontologies may still have an infinite chase, so callers can bound the
run by the *null depth*: a null created by a trigger whose frontier image has
depth ``d`` gets depth ``d + 1`` (database constants have depth 0), and
triggers that would create nulls beyond ``max_null_depth`` are skipped.  The
query-directed chase of :mod:`repro.chase.query_directed` chooses this bound
from the query so that the truncation is invisible to query evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.config import codegen_enabled
from repro.data.facts import Fact
from repro.data.instance import Instance
from repro.data.interning import TERMS
from repro.data.terms import Null, NullFactory, is_null
from repro.cq.atoms import Atom, Variable
from repro.cq.homomorphism import (
    _candidate_pool,
    all_homomorphisms,
    find_homomorphism,
    match_atom,
)
from repro.cq.query import ConjunctiveQuery
from repro.tgds.ontology import Ontology
from repro.tgds.tgd import TGD


class ChaseNotTerminating(RuntimeError):
    """Raised when a chase run exceeds its fact or round budget."""


@dataclass
class ChaseResult:
    """The outcome of a chase run."""

    instance: Instance
    base_constants: frozenset
    null_depth: dict[Null, int] = field(default_factory=dict)
    rounds: int = 0
    fired_triggers: int = 0
    truncated: bool = False

    def nulls(self) -> set[Null]:
        return set(self.null_depth)

    def database_part(self) -> Instance:
        """The facts that mention only original database constants."""
        return Instance(
            fact for fact in self.instance if not fact.has_null()
        )

    def null_blocks(self) -> list[tuple[set[Null], set]]:
        """Group the nulls into connected blocks.

        Two nulls belong to the same block when they co-occur in a fact
        (directly or transitively).  Each block is returned together with the
        set of database constants adjacent to it; block plus adjacent
        constants is one "witness" of the chase-like structure (Lemma C.3).
        """
        parent: dict[Null, Null] = {}

        def find(node: Null) -> Null:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        def union(a: Null, b: Null) -> None:
            parent[find(a)] = find(b)

        for null in self.null_depth:
            parent.setdefault(null, null)
        adjacency: dict[Null, set] = {null: set() for null in parent}
        for fact in self.instance:
            fact_nulls = [a for a in fact.args if is_null(a)]
            if not fact_nulls:
                continue
            for null in fact_nulls:
                parent.setdefault(null, null)
                adjacency.setdefault(null, set())
            first = fact_nulls[0]
            for other in fact_nulls[1:]:
                union(first, other)
            fact_constants = {a for a in fact.args if not is_null(a)}
            for null in fact_nulls:
                adjacency[null] |= fact_constants

        blocks: dict[Null, tuple[set[Null], set]] = {}
        for null in parent:
            root = find(null)
            block = blocks.setdefault(root, (set(), set()))
            block[0].add(null)
            block[1].update(adjacency[null])
        return list(blocks.values())


class ChaseRecorder:
    """Observer protocol for provenance-aware chase runs.

    :mod:`repro.incremental.provenance` implements it to capture, per fired
    trigger, the supporting body facts and the created facts/nulls — and,
    per *suppressed* trigger (body matched, head already satisfied), the
    facts witnessing the satisfaction.  Those records are exactly what the
    DRed-style delete/re-derive maintenance needs later.  The default
    implementation records nothing, so a plain chase pays no bookkeeping.
    """

    def bind(self, instance: Instance, fired: set[tuple], fresh: NullFactory) -> None:
        """Called once at the start of the run with the live structures."""

    def on_fire(
        self,
        tgd_index: int,
        key: tuple,
        frontier_map: dict[Variable, object],
        body_facts: tuple[Fact, ...],
        created_facts: tuple[Fact, ...],
        created_nulls: tuple[Null, ...],
    ) -> None:
        """A trigger fired: ``created_facts`` lists every head fact (new or
        pre-existing — both are justified by this firing)."""

    def on_suppress(
        self,
        tgd_index: int,
        key: tuple,
        frontier_map: dict[Variable, object],
        witness_facts: tuple[Fact, ...],
    ) -> None:
        """A trigger was skipped because ``witness_facts`` satisfy its head."""


@dataclass(frozen=True)
class CompiledOntology:
    """The per-TGD structures every chase round reuses.

    ``frontier_orders`` / ``body_orders`` fix, once per TGD, the
    sorted-by-name variable order that trigger keys are built in, so the
    per-trigger key is a plain value tuple in that order instead of a
    freshly sorted item list.
    """

    tgds: tuple[TGD, ...]
    body_queries: tuple[ConjunctiveQuery | None, ...]
    head_queries: tuple[ConjunctiveQuery, ...]
    frontiers: tuple[tuple[Variable, ...], ...]
    existentials: tuple[tuple[Variable, ...], ...]
    frontier_orders: tuple[tuple[Variable, ...], ...]
    body_orders: tuple[tuple[Variable, ...], ...]
    single_bodies: tuple["Atom | None", ...]


def compile_ontology(ontology: Ontology) -> CompiledOntology:
    """Precompile the body/head queries and variable partitions of ``ontology``."""
    tgds = tuple(ontology)
    return CompiledOntology(
        tgds=tgds,
        body_queries=tuple(
            ConjunctiveQuery([], tgd.body) if tgd.body else None for tgd in tgds
        ),
        head_queries=tuple(
            ConjunctiveQuery(
                sorted(tgd.frontier_variables(), key=lambda v: v.name), tgd.head
            )
            for tgd in tgds
        ),
        frontiers=tuple(tuple(tgd.frontier_variables()) for tgd in tgds),
        existentials=tuple(tuple(tgd.existential_variables()) for tgd in tgds),
        frontier_orders=tuple(
            tuple(sorted(tgd.frontier_variables(), key=lambda v: v.name))
            for tgd in tgds
        ),
        body_orders=tuple(
            tuple(sorted(tgd.body_variables(), key=lambda v: v.name))
            for tgd in tgds
        ),
        single_bodies=tuple(
            next(iter(tgd.body)) if len(tgd.body) == 1 else None for tgd in tgds
        ),
    )


def _head_witness(
    head_query: ConjunctiveQuery,
    frontier_map: dict[Variable, object],
    instance: Instance,
) -> dict[Variable, object] | None:
    """A homomorphism satisfying the TGD head at this trigger, or ``None``.

    Single-atom heads (the overwhelmingly common case in the guarded/ELI
    workloads) are answered with one index probe plus a match per candidate
    instead of spinning up the full backtracking search; multi-atom heads
    fall back to the generic homomorphism finder.
    """
    atoms = head_query.atoms
    if len(atoms) == 1:
        atom = next(iter(atoms))
        arity = atom.arity
        for fact in _candidate_pool(atom, frontier_map, instance):
            if fact.arity != arity:
                continue
            extension = match_atom(atom, fact, frontier_map)
            if extension is not None:
                witness = dict(frontier_map)
                witness.update(extension)
                return witness
        return None
    return find_homomorphism(head_query, instance, partial=frontier_map)


def _trigger_key(
    tgd_index: int,
    mapping: dict[Variable, object],
    order: Sequence[Variable],
    interned: bool = False,
) -> tuple:
    """The dedup key of a trigger: the mapped values in a fixed variable order.

    ``order`` is the precompiled sorted variable order of the TGD's frontier
    (restricted chase) or body (oblivious chase) from
    :class:`CompiledOntology` — callers must pass the same order for keys to
    compare across rounds and across the provenance-maintained delta chase.
    With ``interned`` the values are dictionary-encoded first, so the
    ``fired`` set hashes machine ints instead of term objects — the
    id-matching half of the chase loop.
    """
    values = tuple(mapping[v] for v in order)
    if interned:
        values = TERMS.intern_tuple(values)
    return (tgd_index, values)


def _single_body_matcher(atom: Atom, codegen: bool | None = None):
    """The generated per-fact matcher of ``atom``, or ``None`` (generic path).

    Lazy import: :mod:`repro.engine.codegen` sits in a higher layer.  The
    generated function is exactly ``match_atom(atom, fact, {})`` with the
    arity check, constant comparisons and repeated-variable checks unrolled.
    """
    from repro.engine.codegen import maybe_single_body_matcher

    return maybe_single_body_matcher(atom, codegen)


def _delta_body_maps(
    tgd: TGD,
    body_query: ConjunctiveQuery,
    instance: Instance,
    delta: Sequence[Fact],
    codegen: bool | None = None,
) -> list[dict[Variable, object]]:
    """Body homomorphisms of ``tgd`` that use at least one fact of ``delta``.

    The semi-naive evaluation step: any body match that is new since the
    previous round must send some body atom to a fact added in that round, so
    it suffices to seed the search with each (atom, delta-fact) pair and let
    the index-driven homomorphism search complete the rest against the full
    instance.  The result is materialised (and de-duplicated, since one match
    can touch the delta through several atoms) so the caller is free to
    mutate ``instance`` while firing triggers.  Single-atom bodies (the
    common case in guarded/ELI ontologies) skip the search entirely: the
    atom-fact match *is* the body homomorphism.
    """
    body = tuple(tgd.body)
    if len(body) == 1:
        atom = body[0]
        matcher = _single_body_matcher(atom, codegen)
        maps: list[dict[Variable, object]] = []
        seen_single: set[Fact] = set()
        for fact in delta:
            if (
                fact.relation != atom.relation
                or fact in seen_single
            ):
                continue
            seen_single.add(fact)
            partial = (
                matcher(fact) if matcher is not None else match_atom(atom, fact, {})
            )
            if partial is not None:
                maps.append(partial)
        return maps
    maps = []
    seen: set[frozenset] = set()
    for atom in body:
        for fact in delta:
            if fact.relation != atom.relation or fact.arity != atom.arity:
                continue
            partial = match_atom(atom, fact, {})
            if partial is None:
                continue
            for body_map in all_homomorphisms(body_query, instance, partial):
                key = frozenset(body_map.items())
                if key not in seen:
                    seen.add(key)
                    maps.append(body_map)
    return maps


def chase(
    database: Instance,
    ontology: Ontology,
    max_null_depth: int | None = None,
    max_facts: int = 1_000_000,
    max_rounds: int = 10_000,
    oblivious: bool = False,
    recorder: ChaseRecorder | None = None,
    codegen: bool | None = None,
) -> ChaseResult:
    """Run the chase of ``database`` with ``ontology``.

    Returns a :class:`ChaseResult` whose instance contains the original
    facts.  ``max_null_depth`` truncates the run as described in the module
    docstring (``truncated`` is set when at least one trigger was skipped for
    this reason); ``max_facts`` / ``max_rounds`` are hard safety budgets that
    raise :class:`ChaseNotTerminating` when exhausted.  ``recorder``, when
    given, observes every fired and suppressed trigger (see
    :class:`ChaseRecorder`); it is how the incremental-maintenance subsystem
    captures provenance without slowing down plain runs.  ``codegen``
    selects the generated single-atom-body matchers (``None`` → process
    default, see :mod:`repro.config`).
    """
    if codegen is None:
        codegen = codegen_enabled()
    instance = Instance(database)
    base_constants = frozenset(instance.constants())
    null_depth: dict[Null, int] = {}
    # Draw labels from the instance's factory (process-globally unique), so
    # two independent chase runs can never hand out aliasing null labels.
    fresh = instance.null_factory
    interned = instance.interned
    result = ChaseResult(instance, base_constants, null_depth)
    fired: set[tuple] = set()
    if recorder is not None:
        recorder.bind(instance, fired, fresh)

    def depth_of(element: object) -> int:
        if is_null(element):
            return null_depth.get(element, 0)
        return 0

    compiled = compile_ontology(ontology)
    tgds = compiled.tgds
    body_queries = compiled.body_queries
    head_queries = compiled.head_queries
    frontiers = compiled.frontiers
    existentials = compiled.existentials
    # Semi-naive (delta-driven) rounds: the first round matches bodies against
    # the whole database; every later round only seeds the body search with
    # facts added in the previous round.  Trigger lists are materialised
    # before firing, so the positional indexes stay consistent while new
    # facts are added.
    delta: list[Fact] | None = None
    while True:
        result.rounds += 1
        if result.rounds > max_rounds:
            raise ChaseNotTerminating(f"chase exceeded {max_rounds} rounds")
        new_facts: list[Fact] = []
        for tgd_index, tgd in enumerate(tgds):
            body_query = body_queries[tgd_index]
            if body_query is None:
                # An empty body can only trigger once, in the first round.
                if delta is not None:
                    continue
                body_maps: list[dict[Variable, object]] = [{}]
            elif delta is None:
                single = compiled.single_bodies[tgd_index]
                if single is not None:
                    # Single-atom body: every matching fact is a body map,
                    # no search machinery needed (the dominant TGD shape).
                    matcher = _single_body_matcher(single, codegen)
                    body_maps = []
                    if matcher is not None:
                        for fact in instance.relation(single.relation):
                            body_map = matcher(fact)
                            if body_map is not None:
                                body_maps.append(body_map)
                    else:
                        for fact in instance.relation(single.relation):
                            body_map = match_atom(single, fact, {})
                            if body_map is not None:
                                body_maps.append(body_map)
                else:
                    body_maps = list(all_homomorphisms(body_query, instance))
            else:
                body_maps = _delta_body_maps(
                    tgd, body_query, instance, delta, codegen
                )
            for body_map in body_maps:
                frontier_map = {v: body_map[v] for v in frontiers[tgd_index]}
                if oblivious:
                    key = _trigger_key(
                        tgd_index,
                        body_map,
                        compiled.body_orders[tgd_index],
                        interned,
                    )
                    if key in fired:
                        continue
                else:
                    key = _trigger_key(
                        tgd_index,
                        frontier_map,
                        compiled.frontier_orders[tgd_index],
                        interned,
                    )
                    if key in fired:
                        continue
                    witness = _head_witness(
                        head_queries[tgd_index], frontier_map, instance
                    )
                    if witness is not None:
                        if recorder is not None:
                            recorder.on_suppress(
                                tgd_index,
                                key,
                                dict(frontier_map),
                                tuple(
                                    atom.to_fact(witness) for atom in tgd.head
                                ),
                            )
                        continue
                trigger_depth = max(
                    (depth_of(v) for v in frontier_map.values()), default=0
                )
                if max_null_depth is not None and existentials[tgd_index]:
                    if trigger_depth + 1 > max_null_depth:
                        result.truncated = True
                        continue
                fired.add(key)
                head_map = dict(frontier_map)
                created_nulls: list[Null] = []
                for variable in existentials[tgd_index]:
                    null = fresh()
                    null_depth[null] = trigger_depth + 1
                    head_map[variable] = null
                    created_nulls.append(null)
                created_facts: list[Fact] = []
                for atom in tgd.head:
                    new_fact = atom.to_fact(head_map)
                    created_facts.append(new_fact)
                    if instance.add(new_fact):
                        new_facts.append(new_fact)
                result.fired_triggers += 1
                if recorder is not None:
                    recorder.on_fire(
                        tgd_index,
                        key,
                        dict(frontier_map),
                        tuple(atom.to_fact(body_map) for atom in tgd.body),
                        tuple(created_facts),
                        tuple(created_nulls),
                    )
                if len(instance) > max_facts:
                    raise ChaseNotTerminating(
                        f"chase exceeded {max_facts} facts"
                    )
        if not new_facts:
            break
        delta = new_facts
    return result


def certain_facts(result: ChaseResult) -> set[Fact]:
    """The facts of the chase that use only original database constants."""
    return {fact for fact in result.instance if not fact.has_null()}
