"""Horn-formula saturation of the database part (Proposition 3.3).

The paper computes the query-directed chase by deriving a satisfiable
propositional Horn formula from ``D`` and ``Q`` and reading the chase off its
minimal model, using the linear-time minimal-model algorithm of Dowling and
Gallier.  This module implements that route for the *database part* of the
chase: which atoms over ``adom(D)`` are entailed by ``D ∪ O``.

One propositional variable is introduced per candidate fact over a guarded
set of ``D``; rules are obtained by locally chasing each guarded set with
every subset of already-derivable facts replaced by its entailed atoms.  The
construction is exponential in the ontology (as in the paper, where the
constant is ``2^{2^{O(||Q||^2)}}``) but linear in the database.  It is used
in tests as an independent cross-check of the saturation performed by the
bounded-depth chase.
"""

from __future__ import annotations

from repro.data.facts import Fact
from repro.data.instance import Database, Instance
from repro.hornsat.horn import HornFormula, minimal_model
from repro.chase.standard import chase
from repro.tgds.ontology import Ontology


def _entailed_over(block: Instance, ontology: Ontology, depth: int) -> set[Fact]:
    """Atoms over the constants of ``block`` entailed by ``block ∪ O``."""
    constants = set(block.constants())
    result = chase(block, ontology, max_null_depth=depth, max_facts=200_000)
    return {
        fact
        for fact in result.instance
        if all(argument in constants for argument in fact.args)
    }


def horn_saturation(
    database: Database, ontology: Ontology, depth: int = 4, max_rounds: int = 50
) -> Instance:
    """All facts over ``adom(D)`` entailed by ``D ∪ O``.

    The computation iterates Horn-style rule derivation per guarded set
    until a global fixpoint is reached: in every round, each guarded set of
    the current instance is chased locally (with the given null-depth
    budget) and newly entailed facts over database constants are added as
    derived unit clauses.  The Horn formula built along the way is solved
    with the Dowling–Gallier minimal-model algorithm; its minimal model is
    exactly the set of derived facts.
    """
    current = Instance(database)
    formula = HornFormula()
    for fact in database:
        formula.add_fact(fact)

    for _ in range(max_rounds):
        new_facts: set[Fact] = set()
        for guarded_set in current.guarded_sets():
            block = current.restrict(guarded_set)
            entailed = _entailed_over(block, ontology, depth)
            for fact in entailed:
                if fact not in current:
                    formula.add_rule(sorted(block.facts(), key=repr), fact)
                    new_facts.add(fact)
        if not new_facts:
            break
        current.update(new_facts)

    derived = minimal_model(formula)
    saturated = Instance(fact for fact in derived if isinstance(fact, Fact))
    saturated.update(database)
    return saturated
