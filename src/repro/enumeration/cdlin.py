"""CD∘Lin enumeration of complete answers to acyclic, free-connex CQs.

The enumerator has the two phases of the paper's model: a *preprocessing*
phase (building the reduced query of :mod:`repro.enumeration.reduction` and
per-block indexes, in time linear in the data) and an *enumeration* phase
that walks the block join tree in preorder.  Global consistency of the block
relations guarantees that the walk never backtracks past an atom without
producing an answer, so the delay between consecutive answers depends only
on the query.
"""

from __future__ import annotations

from typing import Iterator

from repro.data.instance import Instance
from repro.cq.atoms import Atom, Variable
from repro.cq.query import ConjunctiveQuery
from repro.enumeration.reduction import ReducedQuery, build_reduced_query
from repro.yannakakis.decomposition import FreeConnexDecomposition


class CDLinEnumerator:
    """Linear preprocessing / constant delay enumerator for plain CQs.

    ``decomposition``, when given, must be the free-connex decomposition of
    the query *after head deduplication* (``query.deduplicated_head()[0]``);
    prepared-query plans precompute it once so only the data-dependent part
    of preprocessing runs per database.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        instance: Instance,
        keep_nulls: bool = False,
        decomposition: "FreeConnexDecomposition | None" = None,
    ) -> None:
        self.original_query = query
        self.deduplicated, self._head_positions = query.deduplicated_head()
        self.reduced: ReducedQuery = build_reduced_query(
            self.deduplicated,
            instance,
            keep_nulls=keep_nulls,
            decomposition=decomposition,
        )
        self._order: list[Atom] = []
        self._indexes: dict[Atom, dict[tuple, list[tuple]]] = {}
        self._shared: dict[Atom, tuple[Variable, ...]] = {}
        if not self.reduced.is_empty and self.reduced.join_tree is not None:
            self._prepare_indexes()

    # -- preprocessing ------------------------------------------------------

    def _prepare_indexes(self) -> None:
        tree = self.reduced.join_tree
        self._order = tree.preorder()
        for atom in self._order:
            parent = tree.parent(atom)
            relation = self.reduced.relations[atom]
            if parent is None:
                shared: tuple[Variable, ...] = ()
            else:
                shared = tuple(
                    v for v in relation.variables if v in parent.variables()
                )
            self._shared[atom] = shared
            self._indexes[atom] = relation.index_on(shared)

    # -- enumeration ---------------------------------------------------------

    def is_empty(self) -> bool:
        return self.reduced.is_empty

    def _emit(self, assignment: dict[Variable, object]) -> tuple:
        dedup_head = self.deduplicated.answer_variables
        reduced_tuple = tuple(assignment[v] for v in dedup_head)
        return tuple(reduced_tuple[p] for p in self._head_positions)

    def __iter__(self) -> Iterator[tuple]:
        return self.enumerate()

    def enumerate(self) -> Iterator[tuple]:
        """Enumerate ``q(D)`` without repetition."""
        if self.reduced.is_empty:
            return
        if not self._order:
            yield ()
            return

        order = self._order
        relations = self.reduced.relations

        def walk(position: int, assignment: dict[Variable, object]) -> Iterator[tuple]:
            if position == len(order):
                yield self._emit(assignment)
                return
            atom = order[position]
            shared = self._shared[atom]
            key = tuple(assignment[v] for v in shared)
            for row in self._indexes[atom].get(key, ()):
                extension = dict(assignment)
                extension.update(zip(relations[atom].variables, row))
                yield from walk(position + 1, extension)

        yield from walk(0, {})

    def count(self) -> int:
        """The number of answers (materialises the enumeration)."""
        return sum(1 for _ in self.enumerate())


def enumerate_answers(
    query: ConjunctiveQuery, instance: Instance, keep_nulls: bool = False
) -> Iterator[tuple]:
    """One-shot enumeration helper: preprocess then yield all answers."""
    enumerator = CDLinEnumerator(query, instance, keep_nulls=keep_nulls)
    yield from enumerator.enumerate()


def answers_as_set(
    query: ConjunctiveQuery, instance: Instance, keep_nulls: bool = False
) -> set[tuple]:
    """All answers as a set (convenience wrapper for tests)."""
    return set(enumerate_answers(query, instance, keep_nulls=keep_nulls))
