"""CD∘Lin enumeration of complete answers to acyclic, free-connex CQs.

This is the CQ half of Theorem 4.1(1): for acyclic, free-connex acyclic
queries, answers are enumerable with constant delay after linear-time
preprocessing (the class the paper writes ``CD∘Lin``).  The enumerator has
the two phases of that model: a *preprocessing* phase (building the reduced
query of :mod:`repro.enumeration.reduction` — the Section 5 conditions
(i)–(iv) — and per-block indexes, in time linear in the data) and an
*enumeration* phase that walks the block join tree in preorder.  Global
consistency of the block relations (condition (iv)) guarantees that the
walk never backtracks past an atom without producing an answer, so the
delay between consecutive answers depends only on the query.

Two engineering layers keep the constants close to the paper's RAM model:

* over an interned instance (the default, see :mod:`repro.data.interning`)
  the block relations hold dense term-id rows built by columnar kernels,
  and ids are decoded back to terms only when an answer tuple is emitted;
* the walk itself binds rows into a flat slot array computed at
  preprocessing time (one slot per variable, per-atom write plans), so the
  per-answer work is a few list writes instead of a dictionary copy per
  visited row.

:meth:`CDLinEnumerator.maintain` additionally keeps the reduced state valid
under fact deltas — the engineering extension described in
:mod:`repro.incremental`, not a construction from the paper.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.config import codegen_enabled
from repro.obs.trace import NULL_SPAN, current_trace, span, traced_answers
from repro.data.instance import Instance
from repro.data.interning import TERMS
from repro.cq.atoms import Atom, Variable
from repro.cq.query import ConjunctiveQuery
from repro.enumeration.reduction import (
    ReducedQuery,
    build_reduced_query,
    component_projection,
)
from repro.yannakakis.decomposition import (
    FreeConnexDecomposition,
    decompose_free_connex,
)
from repro.yannakakis.relations import AtomRelation
from repro.yannakakis.semijoin import reduce_and_diff


class CDLinEnumerator:
    """Linear preprocessing / constant delay enumerator for plain CQs.

    ``decomposition``, when given, must be the free-connex decomposition of
    the query *after head deduplication* (``query.deduplicated_head()[0]``);
    prepared-query plans precompute it once so only the data-dependent part
    of preprocessing runs per database.  ``projections`` may carry component
    projections a worker pool computed against the same instance (see
    :func:`repro.parallel.reduce.parallel_projections`); they are consumed
    by the initial reduce only.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        instance: Instance,
        keep_nulls: bool = False,
        decomposition: "FreeConnexDecomposition | None" = None,
        codegen: bool | None = None,
        codegen_cache: "object | None" = None,
        tracing: bool | None = None,
        projections: "dict[int, set | None] | None" = None,
    ) -> None:
        self.original_query = query
        self.deduplicated, self._head_positions = query.deduplicated_head()
        self._keep_nulls = keep_nulls
        self._decomposition = decomposition
        self._interned = instance.interned
        # Captured at construction, like the interning flag: the enumerator
        # must stay internally consistent even if the process default flips
        # while it is alive.  ``codegen_cache`` is the per-plan closure cache
        # (prepared queries pass theirs so closures die with the plan-cache
        # entry; standalone enumerators lazily create their own).
        self._codegen = codegen_enabled() if codegen is None else bool(codegen)
        self._codegen_cache = codegen_cache
        # ``False`` hard-disables the per-call ambient-trace check in
        # :meth:`enumerate`; ``None``/``True`` join whatever trace is active.
        self._tracing = tracing
        with (NULL_SPAN if tracing is False else span("reduce", query=query.name)) as sp:
            # ``projections`` ride along only for this initial build: they
            # are a snapshot of the instance the parallel reduce computed
            # them against, and maintenance recomputes locally anyway.
            self.reduced: ReducedQuery = build_reduced_query(
                self.deduplicated,
                instance,
                keep_nulls=keep_nulls,
                decomposition=decomposition,
                interned=self._interned,
                codegen=self._codegen,
                projections=projections,
            )
            self._order: list[Atom] = []
            self._indexes: dict[Atom, dict[tuple, list[tuple]]] = {}
            self._shared: dict[Atom, tuple[Variable, ...]] = {}
            self._plan: tuple | None = None
            if not self.reduced.is_empty and self.reduced.join_tree is not None:
                self._prepare_indexes()
            if sp is not None:
                sp.set("blocks", len(self._order))
                sp.set("empty", self.reduced.is_empty)
        self._publish()

    def _publish(self) -> None:
        """Expose the enumerable state as one atomically swapped snapshot.

        :meth:`enumerate` reads this single attribute once, so an in-flight
        enumeration keeps a fully consistent view even when :meth:`maintain`
        replaces several fields (maintenance always builds new containers
        and publishes them last, never mutating published ones).
        """
        self._snapshot = (self.reduced, self._order, self._indexes, self._plan)

    # -- preprocessing ------------------------------------------------------

    def _prepare_indexes(self) -> None:
        tree = self.reduced.join_tree
        self._order = tree.preorder()
        for atom in self._order:
            parent = tree.parent(atom)
            relation = self.reduced.relations[atom]
            if parent is None:
                shared: tuple[Variable, ...] = ()
            else:
                shared = tuple(
                    v for v in relation.variables if v in parent.variables()
                )
            self._shared[atom] = shared
            self._indexes[atom] = relation.index_on(shared)
        self._plan = self._build_plan()

    def _build_plan(self) -> tuple:
        """Precompute the slot layout of the enumeration walk.

        Every variable of the block join tree gets one slot in a flat value
        array; each atom gets the slot tuple of its parent-shared key and a
        ``(row position, slot)`` write plan for its own variables.  The walk
        then extends an assignment by a handful of list writes instead of
        copying a dictionary per row, and the emit step reads the answer
        slots directly (decoding ids exactly there when interned).
        """
        slot_of: dict[Variable, int] = {}
        for atom in self._order:
            for variable in self.reduced.relations[atom].variables:
                if variable not in slot_of:
                    slot_of[variable] = len(slot_of)
        key_slots: list[tuple[int, ...]] = []
        stores: list[tuple[tuple[int, int], ...]] = []
        for atom in self._order:
            key_slots.append(tuple(slot_of[v] for v in self._shared[atom]))
            stores.append(
                tuple(
                    (position, slot_of[v])
                    for position, v in enumerate(
                        self.reduced.relations[atom].variables
                    )
                )
            )
        dedup_head = self.deduplicated.answer_variables
        final_slots = tuple(
            slot_of[dedup_head[p]] for p in self._head_positions
        )
        return (tuple(key_slots), tuple(stores), final_slots, len(slot_of))

    # -- incremental maintenance --------------------------------------------

    def _rebuild(self, instance: Instance) -> bool:
        """Recompute the whole reduced state (reduction only, no chase)."""
        self.reduced = build_reduced_query(
            self.deduplicated,
            instance,
            keep_nulls=self._keep_nulls,
            decomposition=self._decomposition,
            interned=self._interned,
            codegen=self._codegen,
        )
        self._order, self._indexes, self._shared = [], {}, {}
        self._plan = None
        if not self.reduced.is_empty and self.reduced.join_tree is not None:
            self._prepare_indexes()
        self._publish()
        return True

    def _make_empty(self) -> bool:
        """Collapse to the empty result (some component became unsatisfiable)."""
        self.reduced = ReducedQuery(
            self.reduced.query, self.reduced.head, [], None, {}, True, self._keep_nulls
        )
        self._order, self._indexes, self._shared = [], {}, {}
        self._plan = None
        self._publish()
        return True

    def maintain(self, instance: Instance, touched_relations: Iterable[str]) -> bool:
        """Refresh the reduced state in place after ``instance`` mutated.

        ``touched_relations`` names the relation symbols of the facts that
        changed.  Only the components whose atoms mention a touched relation
        recompute their projection; every other block keeps its rows *and*
        its cached per-block indexes, and the cross-block full reducer is
        replayed over the cached unreduced projections so global consistency
        (the constant-delay progress condition) is restored exactly.
        Returns True when the enumerable state may have changed.
        """
        touched = set(touched_relations)
        if self._decomposition is None:
            self._decomposition = decompose_free_connex(self.deduplicated)
        if self.reduced.is_empty:
            # No per-block state survives emptiness; rebuild the reduction.
            return self._rebuild(instance)
        # Boolean components left no block behind: re-check satisfiability.
        for component in self._decomposition.components:
            if component.answer_variables:
                continue
            if not ({atom.relation for atom in component.atoms} & touched):
                continue
            if (
                component_projection(
                    component,
                    instance,
                    self._keep_nulls,
                    interned=self._interned,
                    codegen=self._codegen,
                )
                is None
            ):
                return self._make_empty()
        pending: dict[Atom, set] = {}
        for block in self.reduced.blocks:
            if not ({atom.relation for atom in block.component.atoms} & touched):
                continue
            projection = component_projection(
                block.component,
                instance,
                self._keep_nulls,
                interned=self._interned,
                codegen=self._codegen,
            )
            if projection is None:
                return self._make_empty()
            if projection != block.projection:
                block.projection = projection
                pending[block.atom] = projection
        if not pending:
            return False
        fresh = {
            block.atom: AtomRelation(
                block.atom,
                block.variables,
                block.projection,
                interned=self._interned,
            )
            for block in self.reduced.blocks
        }
        assert self.reduced.join_tree is not None
        changed = reduce_and_diff(self.reduced.join_tree, fresh, self.reduced.relations)
        if any(relation.is_empty() for relation in fresh.values()):
            # The full reducer clears everything when the join is empty.
            return self._make_empty()
        # Copy-on-write: never mutate the dicts a running enumeration may
        # have captured — build updated copies and swap the references, so
        # in-flight cursors finish over the consistent pre-delta snapshot.
        relations = dict(self.reduced.relations)
        indexes = dict(self._indexes)
        for atom in changed:
            relation = fresh[atom]
            relations[atom] = relation
            self.reduced.block_for(atom).relation = relation
            if self._order:
                indexes[atom] = relation.index_on(self._shared[atom])
        self.reduced.relations = relations
        self._indexes = indexes
        self._publish()
        return bool(changed)

    # -- enumeration ---------------------------------------------------------

    def _compiled_walk(self, plan: tuple):
        """The generated walk for ``plan`` (``None`` → interpreted path).

        The compiled function is a pure function of the (data-independent)
        slot plan, so it is looked up in the plan-level closure cache and
        shared across databases and maintenance epochs; per-enumeration
        state (the index list, the decoder) stays a call argument.
        """
        cache = self._codegen_cache
        if cache is None:
            # Standalone enumerator: own one cache object (the engine path
            # hands in the PreparedQuery's, so eviction drops the closures).
            from repro.engine.codegen import PlanCodegen

            cache = self._codegen_cache = PlanCodegen()
        return cache.walk_for(plan, self._interned)

    def is_empty(self) -> bool:
        return self.reduced.is_empty

    def __iter__(self) -> Iterator[tuple]:
        return self.enumerate()

    def enumerate(self) -> Iterator[tuple]:
        """Enumerate ``q(D)`` without repetition.

        The whole enumerable state is read through one snapshot attribute
        (a single atomic reference), so an in-flight enumeration keeps a
        consistent view even if :meth:`maintain` publishes updated state
        concurrently (maintenance replaces containers instead of mutating
        them).  Interned ids are decoded to terms here — and only here —
        so the emitted tuples are byte-identical to the term-object path.

        This is a plain dispatcher, not a generator: when a trace is
        ambient (and tracing was not hard-disabled at construction) the
        walk is wrapped in an ``enumerate`` span that samples per-answer
        delay; otherwise the walk generator is returned as-is, so the
        disabled path adds no frame to the per-answer hot loop.
        """
        if self._tracing is not False and current_trace() is not None:
            return traced_answers(
                self._enumerate_impl(), query=self.original_query.name
            )
        return self._enumerate_impl()

    def _enumerate_impl(self) -> Iterator[tuple]:
        reduced, order, indexes, plan = self._snapshot
        if reduced.is_empty:
            return
        if not order:
            yield ()
            return

        assert plan is not None
        index_list = [indexes[atom] for atom in order]
        if self._codegen:
            compiled = self._compiled_walk(plan)
            if compiled is not None:
                yield from compiled(
                    index_list, TERMS.decoder() if self._interned else None
                )
                return
        key_slots, stores, final_slots, slot_count = plan
        values: list = [None] * slot_count
        depth = len(order)
        decode = TERMS.decode if self._interned else None

        def walk(position: int) -> Iterator[tuple]:
            if position == depth:
                if decode is None:
                    yield tuple(values[s] for s in final_slots)
                else:
                    yield tuple(decode(values[s]) for s in final_slots)
                return
            key = tuple(values[s] for s in key_slots[position])
            store = stores[position]
            descend = position + 1
            for row in index_list[position].get(key, ()):
                for row_position, slot in store:
                    values[slot] = row[row_position]
                yield from walk(descend)

        yield from walk(0)

    def count(self) -> int:
        """The number of answers (materialises the enumeration)."""
        return sum(1 for _ in self.enumerate())


def enumerate_answers(
    query: ConjunctiveQuery, instance: Instance, keep_nulls: bool = False
) -> Iterator[tuple]:
    """One-shot enumeration helper: preprocess then yield all answers."""
    enumerator = CDLinEnumerator(query, instance, keep_nulls=keep_nulls)
    yield from enumerator.enumerate()


def answers_as_set(
    query: ConjunctiveQuery, instance: Instance, keep_nulls: bool = False
) -> set[tuple]:
    """All answers as a set (convenience wrapper for tests)."""
    return set(enumerate_answers(query, instance, keep_nulls=keep_nulls))
