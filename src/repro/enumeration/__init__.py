"""Constant-delay enumeration and all-testing for plain CQs (no ontology).

The CQ-level machinery behind the paper's Theorem 4.1:

* :mod:`repro.enumeration.reduction` — the Section 5 preprocessing
  (conditions (i)–(iv)): reduce an acyclic, free-connex CQ to a full,
  globally consistent join over block relations, in linear time;
* :mod:`repro.enumeration.cdlin` — the CD∘Lin constant-delay walk over the
  reduced query (Theorem 4.1(1));
* :mod:`repro.enumeration.alltesting` — all-testing for free-connex
  acyclic CQs (Proposition 4.2, behind Theorem 4.1(2)).

The OMQ lift — evaluating over the query-directed chase and restricting to
database constants (Lemma 3.2) — lives in :mod:`repro.core`.
"""

from repro.enumeration.reduction import Block, ReducedQuery, build_reduced_query
from repro.enumeration.cdlin import CDLinEnumerator, enumerate_answers
from repro.enumeration.alltesting import FreeConnexAllTester

__all__ = [
    "Block",
    "CDLinEnumerator",
    "FreeConnexAllTester",
    "ReducedQuery",
    "build_reduced_query",
    "enumerate_answers",
]
