"""Constant-delay enumeration and all-testing for plain CQs (no ontology)."""

from repro.enumeration.reduction import Block, ReducedQuery, build_reduced_query
from repro.enumeration.cdlin import CDLinEnumerator, enumerate_answers
from repro.enumeration.alltesting import FreeConnexAllTester

__all__ = [
    "Block",
    "CDLinEnumerator",
    "FreeConnexAllTester",
    "ReducedQuery",
    "build_reduced_query",
    "enumerate_answers",
]
