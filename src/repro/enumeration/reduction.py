"""The reduction of an acyclic, free-connex acyclic CQ to a full join.

Following the preprocessing phase of Section 5 (conditions (i)–(iv)), a CQ
``q0(x̄)`` that is acyclic and free-connex acyclic is turned, in time linear
in the data, into

* a *full*, self-join free, acyclic query ``q1(x̄)`` — one fresh "block" atom
  per component of the free-connex decomposition, over exactly that
  component's answer variables — together with a join tree ``T1``, and
* a database ``D1`` of block relations that is *globally consistent*
  (the progress condition (iv)): every row of every block relation extends
  to a full answer,

such that ``q1(D1) = q0(D0)`` projected to the answer variables.  Both the
CD∘Lin enumeration of complete answers (Theorem 4.1) and the minimal partial
answer enumeration (Algorithm 1 / Theorem 5.2) run on this reduced form; the
only difference is whether block rows containing labelled nulls are kept.

Why ``q1`` is acyclic: distinct components share only answer variables and
every component's answer variables are contained in its root atom.  A clique
of block variables is therefore a clique of ``q0``'s Gaifman graph, which by
conformality of the acyclic ``q0`` is covered by an atom and hence by that
atom's block; similarly a chordless cycle of block variables would be a
chordless cycle of ``q0``.  By the Beeri–Fagin–Maier–Yannakakis
characterisation (conformal + chordal) the block hypergraph is acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import codegen_enabled
from repro.data.instance import Instance
from repro.data.interning import TERMS
from repro.data.terms import is_null
from repro.cq.acyclicity import is_acyclic
from repro.cq.atoms import Atom, Variable
from repro.cq.jointree import JoinTree, build_join_tree
from repro.cq.query import ConjunctiveQuery, QueryError
from repro.yannakakis.decomposition import (
    Component,
    FreeConnexDecomposition,
    decompose_free_connex,
)
from repro.yannakakis.evaluation import NotAcyclicError
from repro.yannakakis.relations import AtomRelation, atom_relation
from repro.yannakakis.semijoin import bottom_up_pass, full_reducer


@dataclass
class Block:
    """One block atom ``B_i(ȳ_i)`` of the reduced query.

    ``projection`` caches the component's *unreduced* projection (before the
    cross-block full reducer ran); the incremental enumeration-state
    maintenance recomputes it only for components whose relations a delta
    touched and replays the reducer over the cached rest.
    """

    atom: Atom
    variables: tuple[Variable, ...]
    component: Component
    relation: AtomRelation = field(repr=False, default=None)
    projection: set = field(repr=False, default_factory=set)


@dataclass
class ReducedQuery:
    """The reduced full query ``q1`` with its consistent database ``D1``."""

    query: ConjunctiveQuery
    head: tuple[Variable, ...]
    blocks: list[Block]
    join_tree: JoinTree | None
    relations: dict[Atom, AtomRelation]
    is_empty: bool
    keeps_nulls: bool

    def block_for(self, atom: Atom) -> Block:
        for block in self.blocks:
            if block.atom == atom:
                return block
        raise KeyError(atom)

    def size(self) -> int:
        return sum(len(rel) for rel in self.relations.values())


def _nullfree_kernel(arity: int):
    """Arity-specialised null filter (lazy import, see ``data/columns.py``)."""
    from repro.engine.codegen import nullfree_kernel

    return nullfree_kernel(arity)


def component_projection(
    component: Component,
    instance: Instance,
    keep_nulls: bool,
    interned: bool = False,
    codegen: bool | None = None,
) -> set[tuple] | None:
    """Project a component's satisfying assignments onto its answer variables.

    Returns ``None`` when the component is unsatisfiable.  The projection is
    computed by a bottom-up semi-join pass towards the component root (all
    answer variables live in the root, so projecting the reduced root
    relation is exact).  With ``interned`` the atom relations hold dense
    term ids and the null filter tests id flags instead of term types —
    through a per-arity generated kernel when ``codegen`` resolves on
    (``None`` means the process default).
    """
    relations = {
        atom: atom_relation(atom, instance, interned=interned)
        for atom in component.atoms
    }
    if any(relation.is_empty() for relation in relations.values()):
        return None
    bottom_up_pass(component.tree, relations)
    root_relation = relations[component.root]
    if root_relation.is_empty():
        return None
    projection = root_relation.project(component.answer_variables)
    if not keep_nulls:
        if interned:
            if codegen is None:
                codegen = codegen_enabled()
            kernel = (
                _nullfree_kernel(len(component.answer_variables))
                if codegen
                else None
            )
            if kernel is not None:
                projection = kernel(projection, TERMS.null_flags())
            else:
                null_id = TERMS.is_null_id
                projection = {
                    row
                    for row in projection
                    if not any(null_id(value) for value in row)
                }
        else:
            projection = {
                row for row in projection if not any(is_null(value) for value in row)
            }
        if not projection and component.answer_variables:
            return None
    return projection


def build_reduced_query(
    query: ConjunctiveQuery,
    instance: Instance,
    keep_nulls: bool = False,
    require_acyclic: bool = True,
    decomposition: "FreeConnexDecomposition | None" = None,
    interned: bool = False,
    codegen: bool | None = None,
    projections: "dict[int, set | None] | None" = None,
) -> ReducedQuery:
    """Build ``q1`` and ``D1`` from ``q0`` and ``D0``.

    ``keep_nulls`` selects between complete-answer mode (drop block rows with
    nulls in answer positions) and partial-answer mode (keep them).  The
    query head must not repeat variables; callers deduplicate first.

    ``decomposition`` may carry the free-connex decomposition of ``query``
    computed ahead of time (it is data-independent), in which case the
    structural preprocessing — including the acyclicity check it implies —
    is skipped and only the data-dependent reduction runs.

    ``interned`` builds the block relations over dense term ids (columnar
    kernels in the reducer, id-hashing in the per-block indexes); callers
    then decode at answer emission.  Only valid for interned instances.

    ``projections`` may carry component projections computed elsewhere
    (the process-parallel reduce of :mod:`repro.parallel.reduce`), keyed
    by component index with the same ``set | None`` contract as
    :func:`component_projection`; components present in the map skip the
    local bottom-up pass.
    """
    if len(set(query.answer_variables)) != len(query.answer_variables):
        raise QueryError("reduce requires a head without repeated variables")
    if decomposition is None:
        if require_acyclic and not is_acyclic(query):
            raise NotAcyclicError(f"{query.name} is not acyclic")
        decomposition = decompose_free_connex(query)
    head = tuple(query.answer_variables)

    blocks: list[Block] = []
    relations: dict[Atom, AtomRelation] = {}
    is_empty = False
    for index, component in enumerate(decomposition.components):
        if projections is not None and index in projections:
            projection = projections[index]
        else:
            projection = component_projection(
                component, instance, keep_nulls, interned=interned, codegen=codegen
            )
        if projection is None:
            is_empty = True
            break
        if not component.answer_variables:
            # A purely Boolean component: satisfiable, so it adds no
            # constraint and no block.
            continue
        block_atom = Atom(f"__block{index}__", component.answer_variables)
        relation = AtomRelation(
            block_atom,
            tuple(component.answer_variables),
            set(projection),
            interned=interned,
        )
        block = Block(
            atom=block_atom,
            variables=tuple(component.answer_variables),
            component=component,
            relation=relation,
            projection=projection,
        )
        blocks.append(block)
        relations[block_atom] = relation

    if is_empty:
        return ReducedQuery(query, head, [], None, {}, True, keep_nulls)

    if not blocks:
        # Boolean query (or all components Boolean): a single empty answer.
        return ReducedQuery(query, head, [], None, {}, False, keep_nulls)

    join_tree = build_join_tree([block.atom for block in blocks])
    if join_tree is None:
        raise NotAcyclicError(
            "internal error: block hypergraph of an acyclic free-connex "
            "query is not acyclic"
        )
    full_reducer(join_tree, relations)
    if any(relation.is_empty() for relation in relations.values()):
        return ReducedQuery(query, head, blocks, join_tree, relations, True, keep_nulls)
    return ReducedQuery(query, head, blocks, join_tree, relations, False, keep_nulls)
