"""CD∘Lin all-testing for free-connex acyclic CQs (Proposition 4.2).

The query need not be acyclic: only ``q⁺`` must have a join tree.  The
preprocessing phase decomposes the query into components, materialises each
component's projection onto its answer variables (linear time via semi-join
reduction towards the component root) and stores it as a hash set.  A test
then checks, in time independent of the data, that the candidate tuple's
projection belongs to every component set.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.instance import Instance
from repro.data.terms import is_null
from repro.cq.query import ConjunctiveQuery, QueryError
from repro.yannakakis.decomposition import decompose_free_connex
from repro.enumeration.reduction import component_projection


class FreeConnexAllTester:
    """All-testing of complete answers after linear-time preprocessing."""

    def __init__(self, query: ConjunctiveQuery, instance: Instance) -> None:
        self.original_query = query
        self.deduplicated, self._head_positions = query.deduplicated_head()
        self._dedup_index = {
            variable: position
            for position, variable in enumerate(self.deduplicated.answer_variables)
        }
        decomposition = decompose_free_connex(self.deduplicated)
        self._empty = False
        self._component_sets: list[tuple[tuple[int, ...], set[tuple]]] = []
        for component in decomposition.components:
            projection = component_projection(component, instance, keep_nulls=False)
            if projection is None:
                self._empty = True
                self._component_sets = []
                return
            if not component.answer_variables:
                continue
            positions = tuple(
                self._dedup_index[v] for v in component.answer_variables
            )
            self._component_sets.append((positions, projection))

    def is_empty(self) -> bool:
        """True when the query has no answers at all on this instance."""
        return self._empty

    def test(self, answer: Sequence) -> bool:
        """Decide ``answer ∈ q(D)`` in time independent of the data."""
        if len(answer) != self.original_query.arity:
            raise QueryError(
                f"answer has length {len(answer)}, query arity is "
                f"{self.original_query.arity}"
            )
        if self._empty:
            return False
        if any(is_null(value) for value in answer):
            return False
        # Consistency of repeated head variables.
        reduced: list[object] = [None] * len(self.deduplicated.answer_variables)
        filled = [False] * len(reduced)
        for original_position, value in enumerate(answer):
            target = self._head_positions[original_position]
            if filled[target] and reduced[target] != value:
                return False
            reduced[target] = value
            filled[target] = True
        for positions, component_set in self._component_sets:
            projected = tuple(reduced[p] for p in positions)
            if projected not in component_set:
                return False
        return True

    def __call__(self, answer: Sequence) -> bool:
        return self.test(answer)
