"""Shared measurement and reporting helpers for the benchmark harness."""

from repro.bench.timing import DelayProfile, measure_enumeration, time_call
from repro.bench.tables import format_table, print_table
from repro.bench.fit import linear_fit, scaling_exponent

__all__ = [
    "DelayProfile",
    "format_table",
    "linear_fit",
    "measure_enumeration",
    "print_table",
    "scaling_exponent",
    "time_call",
]
