"""Timing helpers: preprocessing time and per-answer delay profiles.

The paper's claims separate a preprocessing phase (linear in the data) from
an enumeration phase whose delay must not depend on the data.  The helpers
here measure both for any enumerator that follows the library's two-phase
protocol (constructor = preprocessing, ``enumerate()`` = enumeration).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator


def time_call(function: Callable, *args, **kwargs) -> tuple[float, object]:
    """Run ``function`` once and return ``(elapsed_seconds, result)``."""
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return time.perf_counter() - start, result


@dataclass
class DelayProfile:
    """Preprocessing time and the distribution of inter-answer delays."""

    preprocessing_seconds: float
    answer_count: int
    total_enumeration_seconds: float
    delays: list[float] = field(default_factory=list, repr=False)

    @property
    def max_delay(self) -> float:
        return max(self.delays) if self.delays else 0.0

    @property
    def mean_delay(self) -> float:
        return sum(self.delays) / len(self.delays) if self.delays else 0.0

    def percentile_delay(self, fraction: float) -> float:
        if not self.delays:
            return 0.0
        ordered = sorted(self.delays)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]


def measure_enumeration(
    preprocess: Callable[[], object],
    enumerate_from: Callable[[object], Iterator] | None = None,
    max_answers: int | None = None,
) -> DelayProfile:
    """Measure a two-phase enumerator.

    ``preprocess`` builds the enumerator (its runtime is the preprocessing
    time); ``enumerate_from`` turns it into an iterator (defaults to calling
    ``.enumerate()``).  Delays are wall-clock gaps between consecutive
    answers; ``max_answers`` truncates very large enumerations.
    """
    preprocessing_seconds, enumerator = time_call(preprocess)
    if enumerate_from is None:
        iterator: Iterable = enumerator.enumerate()
    else:
        iterator = enumerate_from(enumerator)

    delays: list[float] = []
    answer_count = 0
    start = time.perf_counter()
    previous = start
    for _ in iterator:
        now = time.perf_counter()
        delays.append(now - previous)
        previous = now
        answer_count += 1
        if max_answers is not None and answer_count >= max_answers:
            break
    total = time.perf_counter() - start
    return DelayProfile(
        preprocessing_seconds=preprocessing_seconds,
        answer_count=answer_count,
        total_enumeration_seconds=total,
        delays=delays,
    )
