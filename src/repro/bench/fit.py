"""Tiny scaling diagnostics: least-squares fits on benchmark series.

Used to summarise whether a measured time series grows linearly (slope of a
straight-line fit, reported with its R²) or polynomially (exponent of a
log–log fit).  Pure Python, no numpy dependency, so the helpers work in any
environment the library runs in.
"""

from __future__ import annotations

import math
from typing import Sequence


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float, float]:
    """Least-squares fit ``y ≈ a·x + b``; returns ``(a, b, r_squared)``."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx if sxx else 0.0
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return slope, intercept, r_squared


def scaling_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """The exponent ``e`` of the best power-law fit ``y ≈ c·x^e``.

    Computed as the slope of the least-squares line in log–log space; points
    with non-positive coordinates are ignored.
    """
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        return 0.0
    log_x = [math.log(x) for x, _ in pairs]
    log_y = [math.log(y) for _, y in pairs]
    slope, _, _ = linear_fit(log_x, log_y)
    return slope
