"""Plain-text result tables shared by every benchmark script."""

from __future__ import annotations

from typing import Iterable, Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.1f}"
        if abs(value) >= 0.01:
            return f"{value:.4f}"
        return f"{value:.2e}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Render a fixed-width table as a string."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> None:
    """Print a fixed-width table (used by the ``benchmarks/`` scripts)."""
    print()
    print(format_table(headers, rows, title=title))
    print()
