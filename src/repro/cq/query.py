"""The conjunctive query data structure.

A CQ ``q(x̄) ← φ(x̄, ȳ)`` consists of a tuple of answer variables ``x̄`` and a
set of relational atoms.  This module provides the structural accessors the
rest of the library needs (Gaifman graph, canonical database, connected
components, variable classification) but delegates acyclicity tests to
:mod:`repro.cq.acyclicity` and evaluation to :mod:`repro.cq.homomorphism`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.data.facts import Fact
from repro.data.instance import Database, Instance
from repro.data.schema import Schema
from repro.cq.atoms import Atom, Variable, is_variable


class QueryError(ValueError):
    """Raised when a conjunctive query is malformed."""


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query with answer variables and a body of atoms."""

    answer_variables: tuple[Variable, ...]
    atoms: frozenset[Atom]
    name: str = "q"

    def __init__(
        self,
        answer_variables: Sequence[Variable],
        atoms: Iterable[Atom],
        name: str = "q",
    ) -> None:
        answer_variables = tuple(answer_variables)
        atoms = frozenset(atoms)
        body_vars = set()
        for atom in atoms:
            body_vars |= atom.variables()
        for var in answer_variables:
            if not isinstance(var, Variable):
                raise QueryError(f"answer position {var!r} is not a variable")
            if var not in body_vars:
                raise QueryError(f"answer variable {var} does not occur in the body")
        object.__setattr__(self, "answer_variables", answer_variables)
        object.__setattr__(self, "atoms", atoms)
        object.__setattr__(self, "name", name)

    # -- basic accessors --------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.answer_variables)

    def is_boolean(self) -> bool:
        return self.arity == 0

    def variables(self) -> set[Variable]:
        """``var(q)``: all variables occurring in the query."""
        result: set[Variable] = set()
        for atom in self.atoms:
            result |= atom.variables()
        return result

    def quantified_variables(self) -> set[Variable]:
        """The variables that are not answer variables."""
        return self.variables() - set(self.answer_variables)

    def constants(self) -> set:
        """``con(q)``: all constants occurring in the query."""
        result: set = set()
        for atom in self.atoms:
            result |= atom.constants()
        return result

    def relations(self) -> set[str]:
        return {atom.relation for atom in self.atoms}

    def schema(self) -> Schema:
        return Schema({atom.relation: atom.arity for atom in self.atoms})

    def size(self) -> int:
        """``||q||``: number of symbols needed to write the query."""
        return self.arity + sum(1 + atom.arity for atom in self.atoms)

    def is_full(self) -> bool:
        """True if the query has no quantified variables."""
        return not self.quantified_variables()

    def is_self_join_free(self) -> bool:
        """True if no relation symbol occurs in more than one atom."""
        seen: set[str] = set()
        for atom in self.atoms:
            if atom.relation in seen:
                return False
            seen.add(atom.relation)
        return True

    def atoms_with(self, variable: Variable) -> set[Atom]:
        return {atom for atom in self.atoms if variable in atom.variables()}

    # -- graphs -----------------------------------------------------------

    def gaifman_graph(self) -> dict[Variable, set[Variable]]:
        """The Gaifman graph restricted to variables (``G^var_q``).

        Constants do not serve as nodes, mirroring the definition used for
        ELI in the paper's appendix.
        """
        graph: dict[Variable, set[Variable]] = {v: set() for v in self.variables()}
        for atom in self.atoms:
            atom_vars = atom.variables()
            for v in atom_vars:
                graph[v].update(atom_vars - {v})
        return graph

    def is_connected(self) -> bool:
        """True if the query is connected.

        Two atoms are connected when they share a variable or a constant; a
        query with at most one atom is connected.
        """
        return len(self.connected_components()) <= 1

    def connected_components(self) -> list["ConjunctiveQuery"]:
        """The maximal connected components, each as a CQ.

        Atoms sharing a variable *or a constant* belong to the same
        component (connectivity "via a constant" in the paper).  Answer
        variables are distributed to the component in which they occur.
        """
        if not self.atoms:
            return []
        atoms = list(self.atoms)
        parent = list(range(len(atoms)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            parent[find(i)] = find(j)

        by_term: dict[object, list[int]] = defaultdict(list)
        for index, atom in enumerate(atoms):
            for term in set(atom.args):
                by_term[term].append(index)
        for indices in by_term.values():
            for other in indices[1:]:
                union(indices[0], other)

        groups: dict[int, list[Atom]] = defaultdict(list)
        for index, atom in enumerate(atoms):
            groups[find(index)].append(atom)

        components = []
        for number, group in enumerate(groups.values()):
            group_vars = set()
            for atom in group:
                group_vars |= atom.variables()
            head = tuple(v for v in self.answer_variables if v in group_vars)
            components.append(
                ConjunctiveQuery(head, group, name=f"{self.name}_c{number}")
            )
        return components

    # -- transformations ---------------------------------------------------

    def canonical_database(self) -> Database:
        """``D_q``: the canonical database obtained by freezing variables."""
        facts = []
        for atom in self.atoms:
            args = [
                ("var", t.name) if is_variable(t) else t for t in atom.args
            ]
            facts.append(Fact(atom.relation, args))
        return Database(facts)

    def canonical_instance(self) -> Instance:
        """Like :meth:`canonical_database` but as a general instance."""
        return Instance(self.canonical_database())

    def substitute(self, mapping: Mapping[Variable, object]) -> "ConjunctiveQuery":
        """Replace variables by terms/constants; substituted answer
        variables are dropped from the head."""
        new_atoms = [atom.substitute(mapping) for atom in self.atoms]
        new_head = [
            mapping.get(v, v)
            for v in self.answer_variables
            if is_variable(mapping.get(v, v))
        ]
        return ConjunctiveQuery(new_head, new_atoms, name=self.name)

    def with_answer_variables(
        self, answer_variables: Sequence[Variable]
    ) -> "ConjunctiveQuery":
        """The same body with a different tuple of answer variables."""
        return ConjunctiveQuery(answer_variables, self.atoms, name=self.name)

    def boolean_version(self) -> "ConjunctiveQuery":
        """The Boolean query obtained by quantifying all answer variables."""
        return self.with_answer_variables(())

    def drop_atoms(self, atoms: Iterable[Atom]) -> "ConjunctiveQuery":
        """The subquery obtained by dropping ``atoms`` from the body."""
        dropped = set(atoms)
        remaining = [a for a in self.atoms if a not in dropped]
        remaining_vars = set()
        for atom in remaining:
            remaining_vars |= atom.variables()
        head = tuple(v for v in self.answer_variables if v in remaining_vars)
        return ConjunctiveQuery(head, remaining, name=self.name)

    def deduplicated_head(self) -> tuple["ConjunctiveQuery", list[int]]:
        """Remove repeated answer variables.

        Returns the query whose head lists each answer variable once (first
        occurrence order) together with, for every original head position,
        the index into the reduced head it should be read from.
        """
        seen: dict[Variable, int] = {}
        positions: list[int] = []
        reduced: list[Variable] = []
        for var in self.answer_variables:
            if var not in seen:
                seen[var] = len(reduced)
                reduced.append(var)
            positions.append(seen[var])
        return self.with_answer_variables(reduced), positions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = ", ".join(v.name for v in self.answer_variables)
        body = " ∧ ".join(sorted(repr(a) for a in self.atoms))
        return f"{self.name}({head}) ← {body}"
