"""Terms and atoms of conjunctive queries.

A term is either a :class:`Variable` or a constant (any other hashable
value).  An :class:`Atom` is a relation symbol applied to a tuple of terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.data.facts import Fact


class Variable:
    """A query variable, identified by its name.

    Hand-written (not a dataclass) because variables are the dictionary
    keys of every assignment the homomorphism search touches: the hash is
    computed once at construction and equality/ordering compare names
    directly.  Immutable by convention — treat ``name`` as read-only.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str) -> None:
        self.name = name
        self._hash = hash(name)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Variable:
            return self.name == other.name
        return NotImplemented

    def __lt__(self, other: "Variable") -> bool:
        if other.__class__ is Variable:
            return self.name < other.name
        return NotImplemented

    def __le__(self, other: "Variable") -> bool:
        if other.__class__ is Variable:
            return self.name <= other.name
        return NotImplemented

    def __gt__(self, other: "Variable") -> bool:
        if other.__class__ is Variable:
            return self.name > other.name
        return NotImplemented

    def __ge__(self, other: "Variable") -> bool:
        if other.__class__ is Variable:
            return self.name >= other.name
        return NotImplemented

    def __reduce__(self):
        return (Variable, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"?{self.name}"


def is_variable(term: object) -> bool:
    """True if ``term`` is a query variable."""
    return isinstance(term, Variable)


@dataclass(frozen=True, slots=True)
class Atom:
    """A relational atom ``R(t1, ..., tk)`` over variables and constants.

    Structure that the matching hot paths would otherwise re-derive per call
    is precomputed once: the variable set, the hash, and ``term_plan`` — the
    ``(position, term, is_variable)`` triples the candidate-pool and
    ``to_fact`` loops walk without per-term ``isinstance`` checks.
    """

    relation: str
    args: tuple
    _variables: frozenset = field(default=frozenset(), compare=False, repr=False)
    _hash: int = field(default=0, compare=False, repr=False)
    term_plan: tuple = field(default=(), compare=False, repr=False)

    def __init__(self, relation: str, args: Iterable) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(
            self,
            "_variables",
            frozenset(t for t in self.args if isinstance(t, Variable)),
        )
        object.__setattr__(self, "_hash", hash((self.relation, self.args)))
        object.__setattr__(
            self,
            "term_plan",
            tuple(
                (position, term, isinstance(term, Variable))
                for position, term in enumerate(self.args)
            ),
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> frozenset[Variable]:
        """The set of variables occurring in the atom (precomputed)."""
        return self._variables

    def constants(self) -> set:
        """The set of constants occurring in the atom."""
        return {t for t in self.args if not is_variable(t)}

    def substitute(self, mapping: Mapping[Variable, object]) -> "Atom":
        """Apply a partial substitution to the atom's variables."""
        return Atom(
            self.relation,
            tuple(mapping.get(t, t) if is_variable(t) else t for t in self.args),
        )

    def to_fact(self, mapping: Mapping[Variable, object]) -> Fact:
        """Instantiate the atom into a fact; every variable must be mapped."""
        try:
            args = [
                mapping[term] if is_var else term
                for _, term, is_var in self.term_plan
            ]
        except KeyError as exc:
            raise KeyError(f"variable {exc.args[0]} is not mapped") from None
        return Fact(self.relation, args)

    def matches(self, fact: Fact) -> bool:
        """True if the atom could be mapped onto ``fact`` (same symbol/arity)."""
        return self.relation == fact.relation and self.arity == fact.arity

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            t.name if is_variable(t) else repr(t) if not isinstance(t, str) else t
            for t in self.args
        )
        return f"{self.relation}({inner})"


def variables_of(atoms: Iterable[Atom]) -> set[Variable]:
    """All variables of a collection of atoms."""
    result: set[Variable] = set()
    for atom in atoms:
        result |= atom.variables()
    return result


def constants_of(atoms: Iterable[Atom]) -> set:
    """All constants of a collection of atoms."""
    result: set = set()
    for atom in atoms:
        result |= atom.constants()
    return result
