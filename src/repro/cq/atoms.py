"""Terms and atoms of conjunctive queries.

A term is either a :class:`Variable` or a constant (any other hashable
value).  An :class:`Atom` is a relation symbol applied to a tuple of terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.data.facts import Fact


@dataclass(frozen=True, slots=True, order=True)
class Variable:
    """A query variable, identified by its name."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"?{self.name}"


def is_variable(term: object) -> bool:
    """True if ``term`` is a query variable."""
    return isinstance(term, Variable)


@dataclass(frozen=True, slots=True)
class Atom:
    """A relational atom ``R(t1, ..., tk)`` over variables and constants."""

    relation: str
    args: tuple
    _variables: frozenset = field(default=frozenset(), compare=False, repr=False)

    def __init__(self, relation: str, args: Iterable) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(
            self,
            "_variables",
            frozenset(t for t in self.args if isinstance(t, Variable)),
        )

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> frozenset[Variable]:
        """The set of variables occurring in the atom (precomputed)."""
        return self._variables

    def constants(self) -> set:
        """The set of constants occurring in the atom."""
        return {t for t in self.args if not is_variable(t)}

    def substitute(self, mapping: Mapping[Variable, object]) -> "Atom":
        """Apply a partial substitution to the atom's variables."""
        return Atom(
            self.relation,
            tuple(mapping.get(t, t) if is_variable(t) else t for t in self.args),
        )

    def to_fact(self, mapping: Mapping[Variable, object]) -> Fact:
        """Instantiate the atom into a fact; every variable must be mapped."""
        args = []
        for term in self.args:
            if is_variable(term):
                if term not in mapping:
                    raise KeyError(f"variable {term} is not mapped")
                args.append(mapping[term])
            else:
                args.append(term)
        return Fact(self.relation, args)

    def matches(self, fact: Fact) -> bool:
        """True if the atom could be mapped onto ``fact`` (same symbol/arity)."""
        return self.relation == fact.relation and self.arity == fact.arity

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            t.name if is_variable(t) else repr(t) if not isinstance(t, str) else t
            for t in self.args
        )
        return f"{self.relation}({inner})"


def variables_of(atoms: Iterable[Atom]) -> set[Variable]:
    """All variables of a collection of atoms."""
    result: set[Variable] = set()
    for atom in atoms:
        result |= atom.variables()
    return result


def constants_of(atoms: Iterable[Atom]) -> set:
    """All constants of a collection of atoms."""
    result: set = set()
    for atom in atoms:
        result |= atom.constants()
    return result
