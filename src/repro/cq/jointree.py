"""Join trees of acyclic conjunctive queries.

A join tree of a CQ is a tree over its atoms such that, for every variable,
the atoms containing that variable induce a connected subtree.  Join trees
are built with the classical maximal-weight spanning tree construction
(Bernstein & Goodman): take the intersection graph of the atoms weighted by
the number of shared variables, compute a maximum spanning tree, and verify
the running-intersection property.  The verification succeeds exactly when
the query is acyclic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.cq.atoms import Atom, Variable


@dataclass
class JoinTree:
    """A (rooted) join tree over a sequence of atoms.

    The tree is stored as an adjacency map between atoms.  Rooting the tree
    fixes parent/child relations, the preorder traversal and the predecessor
    variables used by the enumeration algorithms.
    """

    nodes: list[Atom]
    adjacency: dict[Atom, set[Atom]]
    root: Atom | None = None
    _parent: dict[Atom, Atom | None] = field(default_factory=dict, repr=False)
    _children: dict[Atom, list[Atom]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.root is None and self.nodes:
            self.root_at(self.nodes[0])
        elif self.root is not None:
            self.root_at(self.root)

    # -- structure ---------------------------------------------------------

    def neighbors(self, atom: Atom) -> set[Atom]:
        return set(self.adjacency.get(atom, ()))

    def root_at(self, root: Atom) -> None:
        """Root the tree at ``root`` and recompute parents/children."""
        if root not in self.adjacency:
            raise ValueError(f"{root} is not a node of the join tree")
        self.root = root
        self._parent = {root: None}
        self._children = {node: [] for node in self.nodes}
        queue = deque([root])
        visited = {root}
        while queue:
            node = queue.popleft()
            for neighbor in sorted(self.adjacency[node], key=repr):
                if neighbor not in visited:
                    visited.add(neighbor)
                    self._parent[neighbor] = node
                    self._children[node].append(neighbor)
                    queue.append(neighbor)
        if len(visited) != len(self.nodes):
            raise ValueError("join tree is not connected")

    def parent(self, atom: Atom) -> Atom | None:
        return self._parent[atom]

    def children(self, atom: Atom) -> list[Atom]:
        return list(self._children[atom])

    def preorder(self) -> list[Atom]:
        """The atoms in a preorder traversal from the root."""
        order: list[Atom] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(self._children[node]))
        return order

    def postorder(self) -> list[Atom]:
        return list(reversed(self.preorder()))

    def predecessor_variables(self, atom: Atom) -> set[Variable]:
        """The variables ``atom`` shares with its parent (empty at the root)."""
        parent = self._parent[atom]
        if parent is None:
            return set()
        return atom.variables() & parent.variables()

    def subtree_atoms(self, atom: Atom) -> list[Atom]:
        """All atoms in the subtree rooted at ``atom`` (preorder)."""
        order: list[Atom] = []
        stack = [atom]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(self._children[node]))
        return order

    def edges(self) -> Iterator[tuple[Atom, Atom]]:
        for node in self.nodes:
            parent = self._parent.get(node)
            if parent is not None:
                yield parent, node

    # -- validity ------------------------------------------------------------

    def is_valid(self) -> bool:
        """Check the running-intersection (connected subtree) property."""
        variables: set[Variable] = set()
        for atom in self.nodes:
            variables |= atom.variables()
        for variable in variables:
            holders = [a for a in self.nodes if variable in a.variables()]
            if len(holders) <= 1:
                continue
            # BFS restricted to holders must reach all of them.
            holder_set = set(holders)
            queue = deque([holders[0]])
            seen = {holders[0]}
            while queue:
                node = queue.popleft()
                for neighbor in self.adjacency[node]:
                    if neighbor in holder_set and neighbor not in seen:
                        seen.add(neighbor)
                        queue.append(neighbor)
            if seen != holder_set:
                return False
        return True


def build_join_tree(atoms: Iterable[Atom], root: Atom | None = None) -> JoinTree | None:
    """Build a join tree for ``atoms``, or return ``None`` if none exists.

    Uses the maximum-weight spanning tree of the intersection graph; the
    result is a join tree exactly when the atom set is acyclic.  When the
    atoms are disconnected, the components are linked by weight-zero edges so
    that a single tree is returned (constants are not required to satisfy the
    connectedness condition).
    """
    atom_list = list(dict.fromkeys(atoms))
    if not atom_list:
        return None
    if len(atom_list) == 1:
        tree = JoinTree(atom_list, {atom_list[0]: set()}, root=atom_list[0])
        return tree

    # Kruskal on pairwise shared-variable counts (including zero weights so
    # the result always spans all atoms).
    candidate_edges: list[tuple[int, int, int]] = []
    for i in range(len(atom_list)):
        vars_i = atom_list[i].variables()
        for j in range(i + 1, len(atom_list)):
            weight = len(vars_i & atom_list[j].variables())
            candidate_edges.append((weight, i, j))
    candidate_edges.sort(key=lambda item: -item[0])

    parent = list(range(len(atom_list)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    adjacency: dict[Atom, set[Atom]] = {atom: set() for atom in atom_list}
    accepted = 0
    for weight, i, j in candidate_edges:
        if find(i) != find(j):
            parent[find(i)] = find(j)
            adjacency[atom_list[i]].add(atom_list[j])
            adjacency[atom_list[j]].add(atom_list[i])
            accepted += 1
            if accepted == len(atom_list) - 1:
                break

    tree = JoinTree(atom_list, adjacency, root=root or atom_list[0])
    if not tree.is_valid():
        return None
    return tree


def _tree_from_edges(
    atom_list: list[Atom], edges: Iterable[frozenset[int]], root: Atom | None
) -> JoinTree | None:
    """A rooted :class:`JoinTree` over ``edges`` (index pairs), or ``None``.

    Returns ``None`` when the spanning tree violates the running-intersection
    property — a maximum-weight tie that is *not* a join tree.
    """
    adjacency: dict[Atom, set[Atom]] = {atom: set() for atom in atom_list}
    for edge in edges:
        i, j = sorted(edge)
        adjacency[atom_list[i]].add(atom_list[j])
        adjacency[atom_list[j]].add(atom_list[i])
    tree = JoinTree(atom_list, adjacency, root=root or atom_list[0])
    return tree if tree.is_valid() else None


def enumerate_join_trees(
    atoms: Iterable[Atom],
    root: Atom | None = None,
    limit: int = 8,
    alternative_roots: bool = False,
) -> list[JoinTree]:
    """Distinct join trees for ``atoms`` from the maximum-weight ties.

    All join trees produced by the Bernstein–Goodman construction are
    maximum-weight spanning trees of the intersection graph, and every
    maximum spanning tree is reachable from any other by swapping a
    non-tree edge for an equal-weight tree edge on the cycle it closes.
    Starting from the tree :func:`build_join_tree` returns, this explores
    that exchange neighbourhood breadth-first, keeps the candidates that
    satisfy the running-intersection property (ties that are not join
    trees are skipped), and stops at ``limit`` trees.  The first entry is
    always the default tree of :func:`build_join_tree`, so callers costing
    the candidates can fall back to index 0 to reproduce the unplanned
    behaviour exactly.

    With ``alternative_roots`` (and no explicit ``root``) every distinct
    edge set additionally contributes re-rooted variants — same tree, a
    different traversal order — until ``limit`` is reached.
    """
    atom_list = list(dict.fromkeys(atoms))
    if limit < 1 or not atom_list:
        return []
    base = build_join_tree(atom_list, root=root)
    if base is None:
        return []
    if len(atom_list) == 1:
        return [base]

    index_of = {atom: i for i, atom in enumerate(atom_list)}
    weights: dict[frozenset[int], int] = {}
    for i in range(len(atom_list)):
        vars_i = atom_list[i].variables()
        for j in range(i + 1, len(atom_list)):
            weights[frozenset((i, j))] = len(vars_i & atom_list[j].variables())

    def edge_key(tree_edges: frozenset[frozenset[int]]) -> frozenset[frozenset[int]]:
        return tree_edges

    base_edges = frozenset(
        frozenset((index_of[parent], index_of[child])) for parent, child in base.edges()
    )
    seen = {edge_key(base_edges)}
    queue: deque[frozenset[frozenset[int]]] = deque([base_edges])
    valid_edge_sets: list[frozenset[frozenset[int]]] = [base_edges]
    # The exchange frontier is bounded independently of ``limit`` so an
    # adversarial tie structure cannot make candidate enumeration explode.
    expansions_left = max(limit * 8, 32)
    while queue and len(valid_edge_sets) < limit and expansions_left > 0:
        edges = queue.popleft()
        adjacency: dict[int, set[int]] = {i: set() for i in range(len(atom_list))}
        for edge in edges:
            i, j = tuple(edge)
            adjacency[i].add(j)
            adjacency[j].add(i)
        for extra, weight in sorted(weights.items(), key=lambda item: sorted(item[0])):
            if extra in edges:
                continue
            start, goal = sorted(extra)
            # The unique tree path start → goal is the cycle ``extra`` closes.
            parents: dict[int, int] = {start: start}
            stack = [start]
            while stack and goal not in parents:
                node = stack.pop()
                for neighbor in adjacency[node]:
                    if neighbor not in parents:
                        parents[neighbor] = node
                        stack.append(neighbor)
            path: list[frozenset[int]] = []
            node = goal
            while node != start:
                path.append(frozenset((node, parents[node])))
                node = parents[node]
            for on_cycle in path:
                if weights[on_cycle] != weight:
                    continue
                swapped = frozenset(edges - {on_cycle} | {extra})
                if edge_key(swapped) in seen:
                    continue
                seen.add(edge_key(swapped))
                expansions_left -= 1
                if _tree_from_edges(atom_list, swapped, root) is not None:
                    valid_edge_sets.append(swapped)
                queue.append(swapped)
                if len(valid_edge_sets) >= limit or expansions_left <= 0:
                    break
            if len(valid_edge_sets) >= limit or expansions_left <= 0:
                break

    trees: list[JoinTree] = []
    for edges in valid_edge_sets:
        if len(trees) >= limit:
            break
        tree = _tree_from_edges(atom_list, edges, root)
        if tree is None:  # pragma: no cover - filtered above
            continue
        trees.append(tree)
        if alternative_roots and root is None:
            for candidate_root in atom_list[1:]:
                if len(trees) >= limit:
                    break
                rerooted = _tree_from_edges(atom_list, edges, candidate_root)
                if rerooted is not None:
                    trees.append(rerooted)
    return trees


def guard_atom(answer_variables: Sequence[Variable], name: str = "__guard__") -> Atom:
    """The fresh atom that guards the answer variables in ``q⁺``."""
    return Atom(name, tuple(answer_variables))
