"""Join trees of acyclic conjunctive queries.

A join tree of a CQ is a tree over its atoms such that, for every variable,
the atoms containing that variable induce a connected subtree.  Join trees
are built with the classical maximal-weight spanning tree construction
(Bernstein & Goodman): take the intersection graph of the atoms weighted by
the number of shared variables, compute a maximum spanning tree, and verify
the running-intersection property.  The verification succeeds exactly when
the query is acyclic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.cq.atoms import Atom, Variable


@dataclass
class JoinTree:
    """A (rooted) join tree over a sequence of atoms.

    The tree is stored as an adjacency map between atoms.  Rooting the tree
    fixes parent/child relations, the preorder traversal and the predecessor
    variables used by the enumeration algorithms.
    """

    nodes: list[Atom]
    adjacency: dict[Atom, set[Atom]]
    root: Atom | None = None
    _parent: dict[Atom, Atom | None] = field(default_factory=dict, repr=False)
    _children: dict[Atom, list[Atom]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.root is None and self.nodes:
            self.root_at(self.nodes[0])
        elif self.root is not None:
            self.root_at(self.root)

    # -- structure ---------------------------------------------------------

    def neighbors(self, atom: Atom) -> set[Atom]:
        return set(self.adjacency.get(atom, ()))

    def root_at(self, root: Atom) -> None:
        """Root the tree at ``root`` and recompute parents/children."""
        if root not in self.adjacency:
            raise ValueError(f"{root} is not a node of the join tree")
        self.root = root
        self._parent = {root: None}
        self._children = {node: [] for node in self.nodes}
        queue = deque([root])
        visited = {root}
        while queue:
            node = queue.popleft()
            for neighbor in sorted(self.adjacency[node], key=repr):
                if neighbor not in visited:
                    visited.add(neighbor)
                    self._parent[neighbor] = node
                    self._children[node].append(neighbor)
                    queue.append(neighbor)
        if len(visited) != len(self.nodes):
            raise ValueError("join tree is not connected")

    def parent(self, atom: Atom) -> Atom | None:
        return self._parent[atom]

    def children(self, atom: Atom) -> list[Atom]:
        return list(self._children[atom])

    def preorder(self) -> list[Atom]:
        """The atoms in a preorder traversal from the root."""
        order: list[Atom] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(self._children[node]))
        return order

    def postorder(self) -> list[Atom]:
        return list(reversed(self.preorder()))

    def predecessor_variables(self, atom: Atom) -> set[Variable]:
        """The variables ``atom`` shares with its parent (empty at the root)."""
        parent = self._parent[atom]
        if parent is None:
            return set()
        return atom.variables() & parent.variables()

    def subtree_atoms(self, atom: Atom) -> list[Atom]:
        """All atoms in the subtree rooted at ``atom`` (preorder)."""
        order: list[Atom] = []
        stack = [atom]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(self._children[node]))
        return order

    def edges(self) -> Iterator[tuple[Atom, Atom]]:
        for node in self.nodes:
            parent = self._parent.get(node)
            if parent is not None:
                yield parent, node

    # -- validity ------------------------------------------------------------

    def is_valid(self) -> bool:
        """Check the running-intersection (connected subtree) property."""
        variables: set[Variable] = set()
        for atom in self.nodes:
            variables |= atom.variables()
        for variable in variables:
            holders = [a for a in self.nodes if variable in a.variables()]
            if len(holders) <= 1:
                continue
            # BFS restricted to holders must reach all of them.
            holder_set = set(holders)
            queue = deque([holders[0]])
            seen = {holders[0]}
            while queue:
                node = queue.popleft()
                for neighbor in self.adjacency[node]:
                    if neighbor in holder_set and neighbor not in seen:
                        seen.add(neighbor)
                        queue.append(neighbor)
            if seen != holder_set:
                return False
        return True


def build_join_tree(atoms: Iterable[Atom], root: Atom | None = None) -> JoinTree | None:
    """Build a join tree for ``atoms``, or return ``None`` if none exists.

    Uses the maximum-weight spanning tree of the intersection graph; the
    result is a join tree exactly when the atom set is acyclic.  When the
    atoms are disconnected, the components are linked by weight-zero edges so
    that a single tree is returned (constants are not required to satisfy the
    connectedness condition).
    """
    atom_list = list(dict.fromkeys(atoms))
    if not atom_list:
        return None
    if len(atom_list) == 1:
        tree = JoinTree(atom_list, {atom_list[0]: set()}, root=atom_list[0])
        return tree

    # Kruskal on pairwise shared-variable counts (including zero weights so
    # the result always spans all atoms).
    candidate_edges: list[tuple[int, int, int]] = []
    for i in range(len(atom_list)):
        vars_i = atom_list[i].variables()
        for j in range(i + 1, len(atom_list)):
            weight = len(vars_i & atom_list[j].variables())
            candidate_edges.append((weight, i, j))
    candidate_edges.sort(key=lambda item: -item[0])

    parent = list(range(len(atom_list)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    adjacency: dict[Atom, set[Atom]] = {atom: set() for atom in atom_list}
    accepted = 0
    for weight, i, j in candidate_edges:
        if find(i) != find(j):
            parent[find(i)] = find(j)
            adjacency[atom_list[i]].add(atom_list[j])
            adjacency[atom_list[j]].add(atom_list[i])
            accepted += 1
            if accepted == len(atom_list) - 1:
                break

    tree = JoinTree(atom_list, adjacency, root=root or atom_list[0])
    if not tree.is_valid():
        return None
    return tree


def guard_atom(answer_variables: Sequence[Variable], name: str = "__guard__") -> Atom:
    """The fresh atom that guards the answer variables in ``q⁺``."""
    return Atom(name, tuple(answer_variables))
