"""A small text syntax for conjunctive queries and atoms.

Queries are written Datalog-style::

    q(x, y) :- R(x, z), S(z, y), Label(x, "report")

Identifiers starting with a lowercase letter are variables; identifiers
starting with an uppercase letter or digits are constants; quoted strings and
integers are constants as well.  The same atom syntax is reused by the TGD
parser in :mod:`repro.tgds.parser`.
"""

from __future__ import annotations

import re

from repro.cq.atoms import Atom, Variable
from repro.cq.query import ConjunctiveQuery, QueryError

_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(([^()]*)\)\s*")
_TOKEN_RE = re.compile(r'"[^"]*"|[^,]+')


def _parse_term(token: str):
    token = token.strip()
    if not token:
        raise QueryError("empty term in atom")
    if token.startswith('"') and token.endswith('"'):
        return token[1:-1]
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    if token[0].islower():
        return Variable(token)
    return token


def parse_atom(text: str) -> Atom:
    """Parse a single atom such as ``R(x, "a", 3)``."""
    match = _ATOM_RE.fullmatch(text)
    if not match:
        raise QueryError(f"cannot parse atom: {text!r}")
    relation, arg_text = match.group(1), match.group(2).strip()
    if not arg_text:
        return Atom(relation, ())
    terms = [_parse_term(tok.group(0)) for tok in _TOKEN_RE.finditer(arg_text)]
    return Atom(relation, terms)


def _split_atoms(body: str) -> list[str]:
    """Split a conjunction on commas that are not inside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [p for p in (part.strip() for part in parts) if p]


def parse_query(text: str, name: str | None = None) -> ConjunctiveQuery:
    """Parse a conjunctive query written in Datalog-style syntax."""
    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
    elif "<-" in text:
        head_text, body_text = text.split("<-", 1)
    else:
        raise QueryError(f"query {text!r} has no ':-' separator")

    head_match = _ATOM_RE.fullmatch(head_text)
    if not head_match:
        raise QueryError(f"cannot parse query head: {head_text!r}")
    query_name = name or head_match.group(1)
    head_args = head_match.group(2).strip()
    if head_args:
        answer_terms = [
            _parse_term(tok.group(0)) for tok in _TOKEN_RE.finditer(head_args)
        ]
    else:
        answer_terms = []
    for term in answer_terms:
        if not isinstance(term, Variable):
            raise QueryError(f"head term {term!r} is not a variable")

    atoms = [parse_atom(part) for part in _split_atoms(body_text)]
    if not atoms:
        raise QueryError("query has an empty body")
    return ConjunctiveQuery(answer_terms, atoms, name=query_name)
