"""Acyclicity notions for conjunctive queries (Figure 1 of the paper).

* *acyclic*: the query has a join tree;
* *weakly acyclic*: the query becomes acyclic after replacing the answer
  variables by fresh constants;
* *free-connex acyclic*: adding an atom that guards the answer variables
  yields an acyclic query.

Acyclicity and free-connex acyclicity are independent; each implies weak
acyclicity.  The module also provides *bad paths*, the characterisation of
acyclic queries that fail to be free-connex acyclic used by Theorem 4.4.
"""

from __future__ import annotations


from repro.cq.atoms import Atom, Variable
from repro.cq.hypergraph import atom_hypergraph, is_alpha_acyclic
from repro.cq.jointree import JoinTree, build_join_tree, guard_atom
from repro.cq.query import ConjunctiveQuery


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """True if the query has a join tree."""
    return is_alpha_acyclic(atom_hypergraph(list(query.atoms)))


def join_tree(query: ConjunctiveQuery) -> JoinTree | None:
    """A join tree of the query, or ``None`` if the query is cyclic."""
    return build_join_tree(query.atoms)


def is_weakly_acyclic(query: ConjunctiveQuery) -> bool:
    """True if the query is acyclic after freezing its answer variables."""
    freeze = {v: ("frozen", v.name) for v in query.answer_variables}
    return is_alpha_acyclic(atom_hypergraph(list(query.atoms), freeze=freeze))


def extended_query(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """``q⁺``: the query extended with a fresh atom guarding the head."""
    guard = guard_atom(query.answer_variables)
    return ConjunctiveQuery(
        query.answer_variables,
        set(query.atoms) | {guard},
        name=f"{query.name}_plus",
    )


def is_free_connex_acyclic(query: ConjunctiveQuery) -> bool:
    """True if ``q⁺`` (query plus answer-variable guard) is acyclic."""
    guard = guard_atom(query.answer_variables)
    return is_alpha_acyclic(atom_hypergraph(list(query.atoms) + [guard]))


def classify(query: ConjunctiveQuery) -> dict[str, bool]:
    """Classify a query by every notion used in the paper (Figure 1)."""
    return {
        "acyclic": is_acyclic(query),
        "free_connex_acyclic": is_free_connex_acyclic(query),
        "weakly_acyclic": is_weakly_acyclic(query),
        "self_join_free": query.is_self_join_free(),
        "connected": query.is_connected(),
        "full": query.is_full(),
    }


def bad_paths(query: ConjunctiveQuery) -> list[list[Variable]]:
    """All *bad paths* of the query.

    A bad path is a sequence of variables ``y1, ..., yn`` (n >= 3) such that
    ``y1`` and ``yn`` are distinct answer variables, the inner variables are
    quantified, consecutive variables are adjacent in the Gaifman graph, and
    ``{y1, yn}`` is not an edge of the Gaifman graph.  An acyclic CQ is
    free-connex acyclic iff it has no bad path (Bagan et al.).

    One shortest witness is reported per ordered pair of endpoint answer
    variables.
    """
    graph = query.gaifman_graph()
    answer = set(query.answer_variables)
    quantified = query.quantified_variables()
    found: list[list[Variable]] = []

    for start in sorted(answer, key=lambda v: v.name):
        # BFS from `start` where every intermediate vertex is quantified.
        parents: dict[Variable, Variable | None] = {start: None}
        frontier = [start]
        while frontier:
            next_frontier: list[Variable] = []
            for node in frontier:
                for neighbor in sorted(graph[node], key=lambda v: v.name):
                    if neighbor in parents:
                        continue
                    parents[neighbor] = node
                    if neighbor in quantified:
                        next_frontier.append(neighbor)
            frontier = next_frontier
        for end in sorted(answer, key=lambda v: v.name):
            if end == start or end not in parents or end in graph[start]:
                continue
            path = [end]
            current = parents[end]
            while current is not None:
                path.append(current)
                current = parents[current]
            path = list(reversed(path))
            if len(path) >= 3:
                found.append(path)
    return found


def has_bad_path(query: ConjunctiveQuery) -> bool:
    """True if the query has at least one bad path."""
    return bool(bad_paths(query))


def figure1_examples() -> list[tuple[str, ConjunctiveQuery, dict[str, bool]]]:
    """The five example CQs of Figure 1 together with their classification.

    The figure shows Gaifman graphs with hollow nodes for quantified
    variables; the concrete queries below realise those graphs with binary
    relations.  They exercise every combination of acyclic (ac), free-connex
    acyclic (fc) and weakly acyclic (wac) that the figure illustrates.
    """
    x, y, z, u = (Variable(n) for n in ("x", "y", "z", "u"))

    examples = []

    # 1. A path of answer variables: ac, fc and wac.
    q1 = ConjunctiveQuery((x, y, z), [Atom("R", (x, y)), Atom("S", (y, z))], name="path_free")
    examples.append(("free path", q1, classify(q1)))

    # 2. The matrix-multiplication pattern: ac and wac but not fc.
    q2 = ConjunctiveQuery((x, y), [Atom("R", (x, z)), Atom("S", (z, y))], name="mm")
    examples.append(("projected path", q2, classify(q2)))

    # 3. A triangle of answer variables: fc and wac but not ac.
    q3 = ConjunctiveQuery(
        (x, y, z),
        [Atom("R", (x, y)), Atom("S", (y, z)), Atom("T", (z, x))],
        name="free_triangle",
    )
    examples.append(("free triangle", q3, classify(q3)))

    # 4. A triangle with one quantified variable: wac only.
    q4 = ConjunctiveQuery(
        (x, y),
        [Atom("R", (x, y)), Atom("S", (y, u)), Atom("T", (u, x))],
        name="mixed_triangle",
    )
    examples.append(("triangle with quantified corner", q4, classify(q4)))

    # 5. A fully quantified triangle (Boolean): not even weakly acyclic.
    q5 = ConjunctiveQuery(
        (),
        [Atom("R", (x, y)), Atom("S", (y, z)), Atom("T", (z, x))],
        name="boolean_triangle",
    )
    examples.append(("Boolean triangle", q5, classify(q5)))

    return examples
