"""Conjunctive queries and their structural properties.

Provides the CQ data model (variables, atoms, queries), a small text parser,
the Gaifman graph and hypergraph views, the GYO reduction and join trees, and
the acyclicity notions of the paper: acyclic, weakly acyclic, free-connex
acyclic, self-join free, connected, full and bad paths.
"""

from repro.cq.atoms import Atom, Variable, constants_of, variables_of
from repro.cq.query import ConjunctiveQuery
from repro.cq.parser import parse_atom, parse_query
from repro.cq.hypergraph import Hypergraph, gyo_reduction, is_alpha_acyclic
from repro.cq.jointree import JoinTree, build_join_tree
from repro.cq.acyclicity import (
    bad_paths,
    is_acyclic,
    is_free_connex_acyclic,
    is_weakly_acyclic,
)
from repro.cq.homomorphism import (
    all_homomorphisms,
    evaluate,
    find_homomorphism,
    is_homomorphism,
)

__all__ = [
    "Atom",
    "Variable",
    "ConjunctiveQuery",
    "Hypergraph",
    "JoinTree",
    "all_homomorphisms",
    "bad_paths",
    "build_join_tree",
    "constants_of",
    "evaluate",
    "find_homomorphism",
    "gyo_reduction",
    "is_acyclic",
    "is_alpha_acyclic",
    "is_free_connex_acyclic",
    "is_homomorphism",
    "is_weakly_acyclic",
    "parse_atom",
    "parse_query",
    "variables_of",
]
