"""Homomorphisms from conjunctive queries into instances.

A homomorphism maps the query's variables to domain elements of the instance
(constants in the query map to themselves) such that every atom becomes a
fact of the instance.  The functions here implement backtracking search with
simple index-based candidate selection; they are the reference evaluator the
optimised algorithms are tested against, and the workhorse for the small
fixed-size subproblems (progress trees, excursions) where data complexity is
not a concern.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.data.facts import Fact
from repro.data.instance import Instance
from repro.cq.atoms import Atom, Variable, is_variable
from repro.cq.query import ConjunctiveQuery


def is_homomorphism(
    mapping: Mapping[Variable, object],
    query: ConjunctiveQuery,
    instance: Instance,
) -> bool:
    """Check whether ``mapping`` is a homomorphism from ``query`` to ``instance``."""
    for atom in query.atoms:
        try:
            fact = atom.to_fact(mapping)
        except KeyError:
            return False
        if fact not in instance:
            return False
    return True


def _atom_order(query: ConjunctiveQuery, bound: set[Variable]) -> list[Atom]:
    """Order atoms so that each one shares as many variables as possible with
    previously placed atoms (a greedy connectivity order for backtracking)."""
    remaining = list(query.atoms)
    order: list[Atom] = []
    seen_vars = set(bound)
    while remaining:
        remaining.sort(
            key=lambda atom: (-len(atom.variables() & seen_vars), repr(atom))
        )
        atom = remaining.pop(0)
        order.append(atom)
        seen_vars |= atom.variables()
    return order


def _candidate_facts(
    atom: Atom, assignment: dict[Variable, object], instance: Instance
) -> Iterator[Fact]:
    """Facts of ``instance`` that could match ``atom`` under ``assignment``."""
    bound_value = None
    for term in atom.args:
        if is_variable(term):
            if term in assignment:
                bound_value = assignment[term]
                break
        else:
            bound_value = term
            break
    if bound_value is not None:
        pool = instance.facts_with(bound_value)
    else:
        pool = instance.relation(atom.relation)
    for fact in pool:
        if fact.relation == atom.relation and fact.arity == atom.arity:
            yield fact


def _match_atom(
    atom: Atom, fact: Fact, assignment: dict[Variable, object]
) -> dict[Variable, object] | None:
    """Try to extend ``assignment`` so that ``atom`` maps onto ``fact``."""
    extension: dict[Variable, object] = {}
    for term, value in zip(atom.args, fact.args):
        if is_variable(term):
            bound = assignment.get(term, extension.get(term))
            if bound is None:
                extension[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extension


def all_homomorphisms(
    query: ConjunctiveQuery,
    instance: Instance,
    partial: Mapping[Variable, object] | None = None,
) -> Iterator[dict[Variable, object]]:
    """Generate every homomorphism from ``query`` to ``instance``.

    ``partial`` optionally pre-binds some variables (used for single-testing
    where the answer variables are fixed).  Each yielded dictionary maps all
    of ``var(q)`` to domain elements.
    """
    assignment: dict[Variable, object] = dict(partial or {})
    order = _atom_order(query, set(assignment))

    def search(index: int) -> Iterator[dict[Variable, object]]:
        if index == len(order):
            yield dict(assignment)
            return
        atom = order[index]
        for fact in _candidate_facts(atom, assignment, instance):
            extension = _match_atom(atom, fact, assignment)
            if extension is None:
                continue
            assignment.update(extension)
            yield from search(index + 1)
            for variable in extension:
                del assignment[variable]

    # Variables of the query that occur in no atom cannot happen (queries are
    # safe), so the search covers every variable.
    yield from search(0)


def find_homomorphism(
    query: ConjunctiveQuery,
    instance: Instance,
    partial: Mapping[Variable, object] | None = None,
) -> dict[Variable, object] | None:
    """Return one homomorphism, or ``None`` if there is none."""
    for homomorphism in all_homomorphisms(query, instance, partial):
        return homomorphism
    return None


def evaluate(query: ConjunctiveQuery, instance: Instance) -> set[tuple]:
    """``q(I)``: the set of answers of the query on the instance.

    Answers are tuples over the active domain of ``instance`` (they may
    contain labelled nulls when the instance does); the answer for a Boolean
    query is the empty tuple.
    """
    answers: set[tuple] = set()
    for homomorphism in all_homomorphisms(query, instance):
        answers.add(tuple(homomorphism[v] for v in query.answer_variables))
    return answers


def satisfies(query: ConjunctiveQuery, instance: Instance) -> bool:
    """True if the Boolean version of ``query`` holds in ``instance``."""
    return find_homomorphism(query.boolean_version(), instance) is not None
