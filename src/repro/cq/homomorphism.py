"""Homomorphisms from conjunctive queries into instances.

A homomorphism maps the query's variables to domain elements of the instance
(constants in the query map to themselves) such that every atom becomes a
fact of the instance.  The functions here implement backtracking search over
the instance's positional indexes: at every step the *most constrained*
remaining atom (the one with the smallest candidate bucket under the current
partial assignment) is matched next, and its candidates are fetched with one
``(relation, bound-positions)`` index probe instead of scanning and filtering
whole relation or adjacency buckets.  Over an interned instance (the
default) those probes are id-keyed: :meth:`~repro.data.instance.Instance.probe`
translates the term key to dense ids once and the bucket lookup hashes
machine ints, which is what makes the per-probe constant match the paper's
RAM-model accounting.  They are the reference evaluator the
optimised algorithms are tested against, and the workhorse for the small
fixed-size subproblems (progress trees, excursions) where data complexity is
not a concern.

The candidate buckets returned by ``Instance.probe`` are live views; the
search never mutates the instance, but callers that interleave consumption of
:func:`all_homomorphisms` with instance mutation must materialise the results
first (the chase does exactly this).
"""

from __future__ import annotations

from typing import Collection, Iterator, Mapping

from repro.data.facts import Fact
from repro.data.instance import Instance
from repro.cq.atoms import Atom, Variable, is_variable
from repro.cq.query import ConjunctiveQuery


def is_homomorphism(
    mapping: Mapping[Variable, object],
    query: ConjunctiveQuery,
    instance: Instance,
) -> bool:
    """Check whether ``mapping`` is a homomorphism from ``query`` to ``instance``."""
    for atom in query.atoms:
        try:
            fact = atom.to_fact(mapping)
        except KeyError:
            return False
        if fact not in instance:
            return False
    return True


_MISSING = object()


def _candidate_pool(
    atom: Atom, assignment: Mapping[Variable, object], instance: Instance
) -> Collection[Fact]:
    """The facts that could match ``atom`` under the current ``assignment``.

    Probes the instance's positional index on every position that is bound —
    by a constant of the atom or an already-assigned variable — so the pool
    already agrees with the assignment on all bound positions.  Arity and
    repeated-variable consistency are checked later by :func:`match_atom`.
    """
    positions: list[int] = []
    key: list[object] = []
    get = assignment.get
    for position, term, is_var in atom.term_plan:
        if is_var:
            value = get(term, _MISSING)
            if value is not _MISSING:
                positions.append(position)
                key.append(value)
        else:
            positions.append(position)
            key.append(term)
    if positions:
        return instance.probe(atom.relation, tuple(positions), tuple(key))
    return instance.relation(atom.relation)


def match_atom(
    atom: Atom, fact: Fact, assignment: dict[Variable, object]
) -> dict[Variable, object] | None:
    """Try to extend ``assignment`` so that ``atom`` maps onto ``fact``."""
    extension: dict[Variable, object] = {}
    args = fact.args
    if len(args) != len(atom.term_plan):
        return None
    for position, term, is_var in atom.term_plan:
        value = args[position]
        if is_var:
            bound = assignment.get(term, extension.get(term))
            if bound is None:
                extension[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extension


def all_homomorphisms(
    query: ConjunctiveQuery,
    instance: Instance,
    partial: Mapping[Variable, object] | None = None,
) -> Iterator[dict[Variable, object]]:
    """Generate every homomorphism from ``query`` to ``instance``.

    ``partial`` optionally pre-binds some variables (used for single-testing
    where the answer variables are fixed).  Each yielded dictionary maps all
    of ``var(q)`` to domain elements.

    The backtracking search picks, at every depth, the remaining atom with
    the fewest index candidates under the current assignment (dynamic
    most-constrained-atom ordering), which both fails fast on dead branches
    and keeps the branching factor minimal.
    """
    assignment: dict[Variable, object] = dict(partial or {})

    def search(remaining: list[Atom]) -> Iterator[dict[Variable, object]]:
        if not remaining:
            yield dict(assignment)
            return
        if len(remaining) == 1:
            # One atom left: no ordering decision to make, probe directly.
            atom = remaining[0]
            best_pool: Collection[Fact] | None = _candidate_pool(
                atom, assignment, instance
            )
            rest: list[Atom] = []
        else:
            best_index = 0
            best_pool = None
            for i, atom in enumerate(remaining):
                pool = _candidate_pool(atom, assignment, instance)
                if best_pool is None or len(pool) < len(best_pool):
                    best_index, best_pool = i, pool
                    if not pool:
                        return
            atom = remaining[best_index]
            rest = remaining[:best_index] + remaining[best_index + 1 :]
        assert best_pool is not None
        for fact in best_pool:
            if fact.arity != atom.arity:
                continue
            extension = match_atom(atom, fact, assignment)
            if extension is None:
                continue
            assignment.update(extension)
            yield from search(rest)
            for variable in extension:
                del assignment[variable]

    # Variables of the query that occur in no atom cannot happen (queries are
    # safe), so the search covers every variable.
    yield from search(list(query.atoms))


def find_homomorphism(
    query: ConjunctiveQuery,
    instance: Instance,
    partial: Mapping[Variable, object] | None = None,
) -> dict[Variable, object] | None:
    """Return one homomorphism, or ``None`` if there is none."""
    for homomorphism in all_homomorphisms(query, instance, partial):
        return homomorphism
    return None


def evaluate(query: ConjunctiveQuery, instance: Instance) -> set[tuple]:
    """``q(I)``: the set of answers of the query on the instance.

    Answers are tuples over the active domain of ``instance`` (they may
    contain labelled nulls when the instance does); the answer for a Boolean
    query is the empty tuple.
    """
    answers: set[tuple] = set()
    for homomorphism in all_homomorphisms(query, instance):
        answers.add(tuple(homomorphism[v] for v in query.answer_variables))
    return answers


def satisfies(query: ConjunctiveQuery, instance: Instance) -> bool:
    """True if the Boolean version of ``query`` holds in ``instance``."""
    return find_homomorphism(query.boolean_version(), instance) is not None
