"""Hypergraphs of conjunctive queries and the GYO reduction.

The hypergraph of a CQ has the query's variables as vertices and one
hyperedge per atom (the atom's variable set).  α-acyclicity is decided with
the classical GYO (Graham / Yu–Özsoyoğlu) reduction: repeatedly remove
vertices contained in a single hyperedge and hyperedges contained in another
hyperedge; the hypergraph is acyclic exactly when everything disappears.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Sequence


@dataclass
class Hypergraph:
    """A hypergraph with named hyperedges.

    ``edges`` maps an edge name (for CQs: the atom) to its set of vertices.
    Names keep distinct atoms with identical variable sets apart.
    """

    edges: dict[Hashable, frozenset] = field(default_factory=dict)

    @classmethod
    def from_edge_sets(cls, edge_sets: Iterable[Iterable]) -> "Hypergraph":
        """Build a hypergraph from anonymous edge sets (auto-named)."""
        edges = {index: frozenset(edge) for index, edge in enumerate(edge_sets)}
        return cls(edges)

    @classmethod
    def from_named_edges(cls, named: Mapping[Hashable, Iterable]) -> "Hypergraph":
        return cls({name: frozenset(edge) for name, edge in named.items()})

    def vertices(self) -> set:
        result: set = set()
        for edge in self.edges.values():
            result |= edge
        return result

    def __len__(self) -> int:
        return len(self.edges)


def gyo_reduction(hypergraph: Hypergraph) -> tuple[bool, list[tuple[Hashable, Hashable | None]]]:
    """Run the GYO reduction.

    Returns ``(acyclic, ear_order)`` where ``ear_order`` lists, for every
    removed hyperedge, the pair ``(removed_edge_name, witness_edge_name)``;
    the witness is a remaining hyperedge containing the removed edge's
    surviving vertices, or ``None`` for the final edge.  When the hypergraph
    is acyclic the ear order induces a join tree (each removed edge attaches
    to its witness).
    """
    remaining: dict[Hashable, set] = {
        name: set(edge) for name, edge in hypergraph.edges.items()
    }
    ear_order: list[tuple[Hashable, Hashable | None]] = []

    changed = True
    while changed and remaining:
        changed = False

        # Rule 1: drop vertices occurring in exactly one hyperedge.
        occurrence: dict[Hashable, int] = {}
        for edge in remaining.values():
            for vertex in edge:
                occurrence[vertex] = occurrence.get(vertex, 0) + 1
        for edge in remaining.values():
            lonely = {v for v in edge if occurrence[v] == 1}
            if lonely:
                edge -= lonely
                changed = True

        # Rule 2: remove a hyperedge contained in another hyperedge.
        names = list(remaining)
        for name in names:
            edge = remaining[name]
            witness = None
            for other_name, other_edge in remaining.items():
                if other_name == name:
                    continue
                if edge <= other_edge:
                    witness = other_name
                    break
            if witness is not None or not edge:
                if witness is None:
                    # An emptied edge with no witness attaches nowhere (it
                    # becomes a root of its connected component).
                    ear_order.append((name, None))
                else:
                    ear_order.append((name, witness))
                del remaining[name]
                changed = True
                break

    if len(remaining) <= 1:
        for name in remaining:
            ear_order.append((name, None))
        return True, ear_order
    return False, ear_order


def is_alpha_acyclic(hypergraph: Hypergraph) -> bool:
    """True if the hypergraph is α-acyclic (GYO reduction succeeds)."""
    acyclic, _ = gyo_reduction(hypergraph)
    return acyclic


def atom_hypergraph(atoms: Sequence, freeze: Mapping | None = None) -> Hypergraph:
    """The hypergraph of a set of atoms.

    ``freeze`` optionally maps variables to constants first (used for weak
    acyclicity, where answer variables are replaced by fresh constants and
    therefore stop being vertices).
    """
    freeze = freeze or {}
    named = {}
    for atom in atoms:
        variables = {v for v in atom.variables() if v not in freeze}
        named[atom] = frozenset(variables)
    return Hypergraph.from_named_edges(named)
