"""Brute-force reference implementations used by tests and benchmarks."""

from repro.baselines.naive import (
    naive_certain_answers,
    naive_minimal_partial_answers,
    naive_minimal_partial_answers_multi,
    naive_partial_answers,
    naive_single_test,
)

__all__ = [
    "naive_certain_answers",
    "naive_minimal_partial_answers",
    "naive_minimal_partial_answers_multi",
    "naive_partial_answers",
    "naive_single_test",
]
