"""Naive (materialise-everything) baselines.

These implementations follow the definitions directly: chase the database,
enumerate every homomorphism of the query, collapse nulls to wildcards, and
take ``≺``-minimal elements.  They are deliberately simple — they serve as
the ground truth for the test-suite and as the comparison point ("what a
non-constant-delay system would do") in the benchmarks.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.instance import Database
from repro.data.terms import is_null
from repro.cq.homomorphism import evaluate
from repro.core.omq import OMQ
from repro.core.wildcards import (
    collapse_nulls,
    collapse_nulls_multi,
    minimal_multi_tuples,
    minimal_partial_tuples,
)


def _chased_answers(omq: OMQ, database: Database) -> set[tuple]:
    """All answers of the CQ over the query-directed chase (nulls included)."""
    chased = omq.chase(database)
    return evaluate(omq.query, chased.instance)


def naive_certain_answers(omq: OMQ, database: Database) -> set[tuple]:
    """``Q(D)`` by materialising every homomorphism over the chase."""
    return {
        answer
        for answer in _chased_answers(omq, database)
        if not any(is_null(value) for value in answer)
    }


def naive_partial_answers(omq: OMQ, database: Database) -> set[tuple]:
    """All (not necessarily minimal) wildcard collapses of chase answers."""
    return {collapse_nulls(answer) for answer in _chased_answers(omq, database)}


def naive_minimal_partial_answers(omq: OMQ, database: Database) -> set[tuple]:
    """``Q(D)*``: minimal partial answers with a single wildcard."""
    return minimal_partial_tuples(naive_partial_answers(omq, database))


def naive_minimal_partial_answers_multi(omq: OMQ, database: Database) -> set[tuple]:
    """``Q(D)^W``: minimal partial answers with multi-wildcards."""
    collapsed = {
        collapse_nulls_multi(answer) for answer in _chased_answers(omq, database)
    }
    return minimal_multi_tuples(collapsed)


def naive_single_test(omq: OMQ, database: Database, candidate: Sequence) -> bool:
    """Membership test by materialising ``Q(D)`` first."""
    return tuple(candidate) in naive_certain_answers(omq, database)
