"""Incremental maintenance: keep engine materializations valid under updates.

The subsystem has three layers, threaded through the rest of the stack:

* :mod:`repro.incremental.delta` — net fact deltas, produced by the
  database mutation log (``Database.changes_since`` / ``Database.batch``);
* :mod:`repro.incremental.provenance` — the provenance-tracking delta
  chase: semi-naive insertion seeded with only the new facts, DRed-style
  over-delete + re-derive for deletions;
* the reduction maintenance in :meth:`repro.enumeration.cdlin.
  CDLinEnumerator.maintain` (with :func:`repro.yannakakis.semijoin.
  reduce_and_diff`), which replays the Yannakakis passes over cached
  unreduced block projections and rebuilds only the touched blocks.

:class:`repro.engine.materialization.Materialization` wires them together:
on revalidation it asks the database for the delta since its chase
snapshot and, when the delta is small enough (``fallback_ratio``), applies
it in place instead of dropping the chase and every query state.

What is maintained is exactly the paper's preprocessing output: the
query-directed chase ``ch^q_O(D)`` of Section 3 (Lemma 3.2) and the
Section 5 reduced block relations behind Theorem 4.1 — so the constant
delay guarantee of the enumeration phase is preserved across updates; the
paper itself treats ``D`` as static.
"""

from repro.incremental.delta import Delta, apply_delta
from repro.incremental.provenance import ChaseMaintainer, Firing, Suppressed

__all__ = ["ChaseMaintainer", "Delta", "Firing", "Suppressed", "apply_delta"]
