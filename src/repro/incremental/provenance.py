"""The provenance-tracking delta chase: maintain ``ch^q_O(D)`` under updates.

A :class:`ChaseMaintainer` doubles as the :class:`~repro.chase.standard.
ChaseRecorder` of the initial chase run and as the mutation engine that
keeps the chased instance valid afterwards.  During the run it captures,
per fired trigger, the supporting body facts and the created facts/nulls
(a *firing*), and, per suppressed trigger (body matched but head already
satisfied), one satisfaction witness.  These records support both update
directions:

* **Insertions** seed the existing semi-naive delta loop with only the new
  facts — cost proportional to the consequences of the delta.
* **Deletions** run DRed-style over-delete + re-derive: the full support
  cone of every deleted fact is removed (retracting its firings), facts
  justified by a *surviving* firing — or by database membership — are put
  back, and the retracted triggers plus every suppressed trigger whose
  witness was destroyed are re-checked against the surviving instance,
  re-firing exactly the affected cone before the delta loop closes it.

Over-deleting the whole cone (instead of stopping at facts with a
surviving alternative justification) is what makes deletion sound: a
firing that survives the cascade, by construction, never lost a body fact,
so every re-derivation is well-founded and no circularly-justified facts
can keep each other alive.

At quiescence the instance is again a fixpoint of the depth-truncated
restricted chase of the *mutated* database: every trigger with a body match
is either fired (its products are present) or suppressed by a live witness,
so complete-answer evaluation agrees with a from-scratch run (the instance
may contain extra, homomorphically redundant null trees — firings whose
heads a later insertion happened to satisfy — which cannot change null-free
answers because homomorphisms fix constants).

Paper anchors: the maintained object is the query-directed chase
``ch^q_O(D)`` of Section 3, whose null-free answers are the certain answers
(Lemma 3.2); the suppressed-trigger bookkeeping mirrors the *restricted*
chase the paper fixes in Section 2 (fire only triggers whose head is not
yet satisfied).  The deletion strategy itself is the classic DRed
over-delete/re-derive scheme from incremental Datalog view maintenance
(Gupta, Mumick & Subrahmanian, SIGMOD 1993), adapted to existential heads
via the recorded satisfaction witnesses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.data.facts import Fact
from repro.data.instance import Database, Instance
from repro.data.terms import Null, NullFactory, shared_null_factory
from repro.chase.standard import (
    ChaseNotTerminating,
    ChaseRecorder,
    ChaseResult,
    CompiledOntology,
    _delta_body_maps,
    _head_witness,
    _trigger_key,
    compile_ontology,
)
from repro.cq.atoms import Variable
from repro.cq.homomorphism import find_homomorphism
from repro.incremental.delta import Delta
from repro.tgds.ontology import Ontology


@dataclass(eq=False)
class Firing:
    """One fired trigger: its inputs (support) and outputs (products)."""

    tgd_index: int
    frontier: dict[Variable, object]
    body_facts: tuple[Fact, ...]
    created_facts: tuple[Fact, ...]
    created_nulls: tuple[Null, ...]


@dataclass(eq=False)
class Suppressed:
    """One suppressed trigger and the witness that satisfied its head."""

    tgd_index: int
    frontier: dict[Variable, object]
    witness_facts: tuple[Fact, ...]


class ChaseMaintainer(ChaseRecorder):
    """Provenance store plus delta-application engine for one chase.

    Create it *before* the chase, pass it as the run's ``recorder``, then
    :meth:`attach` the :class:`ChaseResult`; afterwards :meth:`apply` keeps
    the chased instance in sync with database mutations.
    """

    def __init__(
        self,
        database: Database,
        ontology: Ontology,
        max_null_depth: int | None = None,
        max_facts: int = 5_000_000,
        max_rounds: int = 10_000,
    ) -> None:
        self.database = database
        self.ontology = ontology
        self.max_null_depth = max_null_depth
        self.max_facts = max_facts
        self.max_rounds = max_rounds
        self.compiled: CompiledOntology = compile_ontology(ontology)
        self.result: ChaseResult | None = None
        self.firings: dict[tuple, Firing] = {}
        self.suppressed: dict[tuple, Suppressed] = {}
        # Inverted indexes: fact -> trigger keys that depend on it.
        self._by_support: dict[Fact, set[tuple]] = {}
        self._by_witness: dict[Fact, set[tuple]] = {}
        self._by_creation: dict[Fact, set[tuple]] = {}
        self._fired: set[tuple] = set()
        # Placeholder until bind() hands over the chase run's own factory;
        # drawing from the shared counter keeps labels process-unique even
        # if a delta is applied before any chase ran.
        self._fresh: NullFactory = shared_null_factory()
        self._instance: Instance | None = None

    # -- ChaseRecorder protocol -------------------------------------------

    def bind(self, instance: Instance, fired: set[tuple], fresh: NullFactory) -> None:
        self._instance = instance
        self._fired = fired
        self._fresh = fresh

    def on_fire(
        self,
        tgd_index: int,
        key: tuple,
        frontier_map: dict[Variable, object],
        body_facts: tuple[Fact, ...],
        created_facts: tuple[Fact, ...],
        created_nulls: tuple[Null, ...],
    ) -> None:
        self._record_firing(
            key, Firing(tgd_index, frontier_map, body_facts, created_facts, created_nulls)
        )

    def on_suppress(
        self,
        tgd_index: int,
        key: tuple,
        frontier_map: dict[Variable, object],
        witness_facts: tuple[Fact, ...],
    ) -> None:
        self._drop_suppressed(key)
        self.suppressed[key] = Suppressed(tgd_index, frontier_map, witness_facts)
        for fact in set(witness_facts):
            self._by_witness.setdefault(fact, set()).add(key)

    def attach(self, result: ChaseResult) -> None:
        """Adopt the finished chase run this maintainer recorded."""
        if self._instance is not result.instance:
            raise ValueError("maintainer was not the recorder of this chase run")
        self.result = result

    # -- bookkeeping helpers ----------------------------------------------

    def _record_firing(self, key: tuple, firing: Firing) -> None:
        self._drop_suppressed(key)
        self.firings[key] = firing
        for fact in set(firing.body_facts):
            self._by_support.setdefault(fact, set()).add(key)
        for fact in set(firing.created_facts):
            self._by_creation.setdefault(fact, set()).add(key)

    def _drop_suppressed(self, key: tuple) -> None:
        entry = self.suppressed.pop(key, None)
        if entry is None:
            return
        for fact in set(entry.witness_facts):
            bucket = self._by_witness.get(fact)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_witness[fact]

    def _retract_firing(self, key: tuple) -> Firing | None:
        firing = self.firings.pop(key, None)
        if firing is None:
            return None
        self._fired.discard(key)
        for index, facts in (
            (self._by_support, firing.body_facts),
            (self._by_creation, firing.created_facts),
        ):
            for fact in set(facts):
                bucket = index.get(fact)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del index[fact]
        assert self.result is not None
        for null in firing.created_nulls:
            self.result.null_depth.pop(null, None)
        return firing

    def _depth_of(self, element: object) -> int:
        assert self.result is not None
        depth = self.result.null_depth.get(element)
        return depth if depth is not None else 0

    # -- delta application -------------------------------------------------

    def apply(self, added: Iterable[Fact], removed: Iterable[Fact]) -> Delta:
        """Apply a database delta to the chased instance, in place.

        ``added``/``removed`` are the *net* base-fact mutations (the caller
        has already applied them to the database itself).  Returns the net
        chase-level delta, which downstream reduction maintenance consumes.
        Raises :class:`ChaseNotTerminating` when the insertion phase blows
        the fact/round budget — the caller must then rebuild from scratch.
        """
        if self.result is None:
            raise RuntimeError("maintainer has no attached chase result")
        instance = self.result.instance
        chase_added: set[Fact] = set()

        # Phase 1a — over-delete: remove the full support cone of every
        # deleted fact, retracting the firings along the way and collecting
        # every trigger that may need re-checking afterwards (retracted
        # firings, and suppressed triggers whose witness lost a fact).
        recheck: dict[tuple, tuple[int, dict[Variable, object]]] = {}
        overdeleted: list[Fact] = []
        queue: deque[Fact] = deque()
        for fact in removed:
            if fact in self.database:
                continue  # also re-added; a net delta never nets to this
            if instance.discard(fact):
                overdeleted.append(fact)
                queue.append(fact)
        while queue:
            fact = queue.popleft()
            for key in tuple(self._by_support.get(fact, ())):
                firing = self._retract_firing(key)
                if firing is None:
                    continue
                recheck[key] = (firing.tgd_index, firing.frontier)
                for product in firing.created_facts:
                    if product in self.database:
                        continue
                    if instance.discard(product):
                        overdeleted.append(product)
                        queue.append(product)
            for key in tuple(self._by_witness.get(fact, ())):
                entry = self.suppressed.get(key)
                if entry is not None:
                    recheck[key] = (entry.tgd_index, entry.frontier)

        # Phase 1b — re-derive: a firing that survived the cascade never
        # lost a body fact, so its products are still justified; restore
        # them.  (Everything a restored fact used to imply is re-checked in
        # phase 3 / re-closed in phase 4.)
        for fact in overdeleted:
            if self._by_creation.get(fact):
                instance.add(fact)
        chase_removed = {fact for fact in overdeleted if fact not in instance}

        # Phase 2 — insert the new base facts (they seed the delta loop).
        seeds: list[Fact] = []
        for fact in added:
            if instance.add(fact):
                chase_added.add(fact)
                seeds.append(fact)

        # Phase 3 — re-check the affected cone: a retracted trigger that
        # still has a body match, or a suppressed trigger whose witness
        # died, either re-fires or records a fresh witness.
        for key, (tgd_index, frontier) in recheck.items():
            if key in self._fired:
                continue
            self._drop_suppressed(key)
            body_query = self.compiled.body_queries[tgd_index]
            if body_query is None:
                body_map: dict[Variable, object] | None = dict(frontier)
            else:
                body_map = find_homomorphism(body_query, instance, partial=frontier)
            if body_map is None:
                continue  # the trigger itself vanished with the deletions
            self._examine(tgd_index, key, body_map, seeds, chase_added)

        # Phase 4 — close under the semi-naive delta loop, exactly as the
        # later rounds of the from-scratch chase would.
        self._saturate(seeds, chase_added)

        # A fact removed and re-created in the same delta nets to nothing
        # for downstream consumers.
        overlap = chase_added & chase_removed
        chase_added -= overlap
        chase_removed -= overlap
        if chase_added or chase_removed:
            self.result.base_constants = frozenset(self.database.constants())
        return Delta(frozenset(chase_added), frozenset(chase_removed))

    def apply_delta(self, delta: Delta) -> Delta:
        """Convenience wrapper over :meth:`apply` for a :class:`Delta`."""
        return self.apply(delta.added, delta.removed)

    # -- the delta chase loop ----------------------------------------------

    def _examine(
        self,
        tgd_index: int,
        key: tuple,
        body_map: dict[Variable, object],
        new_facts: list[Fact],
        chase_added: set[Fact],
    ) -> None:
        """Suppress or fire one trigger against the current instance."""
        assert self.result is not None
        instance = self.result.instance
        compiled = self.compiled
        tgd = compiled.tgds[tgd_index]
        frontier_map = {v: body_map[v] for v in compiled.frontiers[tgd_index]}
        witness = _head_witness(compiled.head_queries[tgd_index], frontier_map, instance)
        if witness is not None:
            self.on_suppress(
                tgd_index,
                key,
                dict(frontier_map),
                tuple(atom.to_fact(witness) for atom in tgd.head),
            )
            return
        trigger_depth = max(
            (self._depth_of(v) for v in frontier_map.values()), default=0
        )
        existentials = compiled.existentials[tgd_index]
        if self.max_null_depth is not None and existentials:
            if trigger_depth + 1 > self.max_null_depth:
                self.result.truncated = True
                return
        self._fired.add(key)
        head_map: dict[Variable, object] = dict(frontier_map)
        created_nulls: list[Null] = []
        for variable in existentials:
            null = self._fresh()
            self.result.null_depth[null] = trigger_depth + 1
            head_map[variable] = null
            created_nulls.append(null)
        created_facts: list[Fact] = []
        for atom in tgd.head:
            product = atom.to_fact(head_map)
            created_facts.append(product)
            if instance.add(product):
                new_facts.append(product)
                chase_added.add(product)
        self.result.fired_triggers += 1
        self._record_firing(
            key,
            Firing(
                tgd_index,
                dict(frontier_map),
                tuple(atom.to_fact(body_map) for atom in tgd.body),
                tuple(created_facts),
                tuple(created_nulls),
            ),
        )
        if len(instance) > self.max_facts:
            raise ChaseNotTerminating(f"chase exceeded {self.max_facts} facts")

    def _saturate(self, seeds: list[Fact], chase_added: set[Fact]) -> None:
        """Semi-naive rounds seeded with ``seeds``, mirroring the chase."""
        assert self.result is not None
        instance = self.result.instance
        compiled = self.compiled
        delta = list(seeds)
        rounds = 0
        while delta:
            rounds += 1
            if rounds > self.max_rounds:
                raise ChaseNotTerminating(
                    f"delta chase exceeded {self.max_rounds} rounds"
                )
            self.result.rounds += 1
            new_facts: list[Fact] = []
            for tgd_index, tgd in enumerate(compiled.tgds):
                body_query = compiled.body_queries[tgd_index]
                if body_query is None:
                    continue  # empty bodies fired in the initial run
                for body_map in _delta_body_maps(tgd, body_query, instance, delta):
                    frontier_map = {
                        v: body_map[v] for v in compiled.frontiers[tgd_index]
                    }
                    # Key-compatible with the original run: same precompiled
                    # variable order, same id encoding as the recorded keys.
                    key = _trigger_key(
                        tgd_index,
                        frontier_map,
                        compiled.frontier_orders[tgd_index],
                        instance.interned,
                    )
                    if key in self._fired:
                        continue
                    self._examine(tgd_index, key, body_map, new_facts, chase_added)
            delta = new_facts
