"""Fact deltas: the currency of the incremental-maintenance subsystem.

A :class:`Delta` is the *net* difference between two database versions —
facts present now but not then (``added``) and facts present then but not
now (``removed``).  :meth:`repro.data.instance.Instance.changes_since`
produces them from the mutation log; :class:`repro.incremental.provenance.
ChaseMaintainer` consumes them and emits a second, chase-level delta that
the enumeration-state maintenance propagates further.

The paper treats the database as static (its dynamic-complexity questions
are left open); this subsystem is the engineering answer: maintain
``ch^q_O(D)`` of Section 3 and the Section 5 reduction under updates so the
serving guarantees survive mutations without linear-time rebuilds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.facts import Fact

_EMPTY: frozenset[Fact] = frozenset()


@dataclass(frozen=True)
class Delta:
    """A net set of database mutations between two version snapshots."""

    added: frozenset[Fact] = _EMPTY
    removed: frozenset[Fact] = _EMPTY

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)

    def __len__(self) -> int:
        return len(self.added) + len(self.removed)

    def relations(self) -> set[str]:
        """Every relation symbol touched by the delta."""
        return {fact.relation for fact in self.added} | {
            fact.relation for fact in self.removed
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Delta(+{len(self.added)}, -{len(self.removed)})"
