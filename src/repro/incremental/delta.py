"""Fact deltas: the currency of the incremental-maintenance subsystem.

A :class:`Delta` is the *net* difference between two database versions —
facts present now but not then (``added``) and facts present then but not
now (``removed``).  :meth:`repro.data.instance.Instance.changes_since`
produces them from the mutation log; :class:`repro.incremental.provenance.
ChaseMaintainer` consumes them and emits a second, chase-level delta that
the enumeration-state maintenance propagates further.

The paper treats the database as static (its dynamic-complexity questions
are left open); this subsystem is the engineering answer: maintain
``ch^q_O(D)`` of Section 3 and the Section 5 reduction under updates so the
serving guarantees survive mutations without linear-time rebuilds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.facts import Fact

_EMPTY: frozenset[Fact] = frozenset()


@dataclass(frozen=True)
class Delta:
    """A net set of database mutations between two version snapshots."""

    added: frozenset[Fact] = _EMPTY
    removed: frozenset[Fact] = _EMPTY

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)

    def __len__(self) -> int:
        return len(self.added) + len(self.removed)

    def relations(self) -> set[str]:
        """Every relation symbol touched by the delta."""
        return {fact.relation for fact in self.added} | {
            fact.relation for fact in self.removed
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Delta(+{len(self.added)}, -{len(self.removed)})"

    # -- wire format -------------------------------------------------------

    def to_wire(self) -> dict:
        """The JSON-encodable shape used by the HTTP mutation endpoint.

        Facts become ``[relation, [arg, ...]]`` pairs, sorted for
        deterministic payloads (tests diff them byte-for-byte).
        """
        return {
            "add": sorted([f.relation, [str(a) for a in f.args]] for f in self.added),
            "remove": sorted(
                [f.relation, [str(a) for a in f.args]] for f in self.removed
            ),
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "Delta":
        """Parse the ``{"add": [...], "remove": [...]}`` wire shape.

        Raises ``ValueError`` on malformed entries — the serving layer maps
        that to a 400 instead of applying a partial batch.
        """
        if not isinstance(payload, dict):
            raise ValueError("mutation payload must be a JSON object")
        unknown = set(payload) - {"add", "remove"}
        if unknown:
            raise ValueError(f"unknown mutation keys: {sorted(unknown)}")
        return cls(
            added=frozenset(_fact_from_wire(e) for e in payload.get("add", ())),
            removed=frozenset(_fact_from_wire(e) for e in payload.get("remove", ())),
        )


def _fact_from_wire(entry) -> Fact:
    """One ``[relation, [arg, ...]]`` wire entry as a :class:`Fact`."""
    if (
        not isinstance(entry, (list, tuple))
        or len(entry) != 2
        or not isinstance(entry[0], str)
        or not isinstance(entry[1], (list, tuple))
        or not all(isinstance(arg, str) for arg in entry[1])
    ):
        raise ValueError(
            f"facts must be [relation, [arg, ...]] with string entries, got {entry!r}"
        )
    relation, args = entry
    if not relation:
        raise ValueError("fact relation must be non-empty")
    return Fact(relation, tuple(args))


def apply_delta(database, delta: Delta) -> tuple[int, int]:
    """Apply ``delta`` to ``database`` as **one** coalesced batch.

    Everything lands inside a single ``Database.batch()``, so version
    watchers (the engine's materializations) observe one atomic step and
    open cursors keep enumerating the pre-batch snapshot.  Returns the
    counts of facts actually ``(added, removed)`` — adds of present facts
    and removes of absent facts are no-ops, mirroring ``add``/``discard``.
    """
    added = removed = 0
    with database.batch():
        for fact in sorted(delta.added, key=repr):
            if database.add(fact):
                added += 1
        for fact in sorted(delta.removed, key=repr):
            if database.discard(fact):
                removed += 1
    return added, removed
