"""Unified execution configuration: one options object, one switch module.

Three generations of tuning knobs accumulated as the engine grew — the
interning switch of the columnar store (``REPRO_NO_INTERN`` /
``set_interning``), the incremental-maintenance kwargs of the prepared-query
engine (``incremental``, ``incremental_fallback_ratio``, ``plan_cache_size``,
``strict``), and now the per-plan code generation of
:mod:`repro.engine.codegen` (``REPRO_NO_CODEGEN`` / ``set_codegen``).  This
module is their single home:

* :class:`ExecutionOptions` — one frozen dataclass carrying every knob, the
  object :class:`repro.engine.QueryEngine`, :class:`repro.server.QueryService`
  and the CLI consume;
* the process-wide boolean switches (``set_interning`` / ``use_interning``,
  ``set_codegen`` / ``use_codegen``) with their environment-variable
  defaults — the A/B escape hatches the differential suite flips.

**Precedence** (most specific wins):

1. an *explicit keyword argument* at a call site
   (``QueryEngine(..., strict=False)``);
2. the :class:`ExecutionOptions` object passed to that component
   (``QueryEngine(..., options=ExecutionOptions(strict=False))``);
3. the process default — the environment variables ``REPRO_NO_INTERN`` and
   ``REPRO_NO_CODEGEN`` read at import time, as later adjusted by
   ``set_interning`` / ``set_codegen``.

The historical entry points ``repro.data.interning.set_interning`` /
``use_interning`` still work but delegate here with a
:class:`DeprecationWarning`; see ``docs/engine.md`` for the migration table.
"""

from __future__ import annotations

import math
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator

__all__ = [
    "ExecutionOptions",
    "codegen_enabled",
    "default_workers",
    "interning_enabled",
    "planner_enabled",
    "resolve_option",
    "set_codegen",
    "set_interning",
    "set_planner",
    "set_tracing",
    "set_workers",
    "tracing_enabled",
    "use_codegen",
    "use_interning",
    "use_planner",
    "use_tracing",
    "use_workers",
]


def _env_disabled(variable: str) -> bool:
    """True when ``variable`` holds one of the documented truthy spellings."""
    return os.environ.get(variable, "").strip().lower() in ("1", "true", "yes", "on")


# Process-wide defaults, captured from the environment once at import time.
# ``set_interning`` / ``set_codegen`` / ``set_tracing`` adjust them
# afterwards; a lock keeps the read-modify-write of the toggles well-defined
# under threads (reads are single dict-free attribute loads and stay
# lock-free).
_STATE_LOCK = threading.Lock()
_INTERNING = not _env_disabled("REPRO_NO_INTERN")
_CODEGEN = not _env_disabled("REPRO_NO_CODEGEN")
_PLANNER = not _env_disabled("REPRO_NO_PLANNER")
# Tracing has the opposite polarity: it is *off* unless asked for, because
# it is diagnostic machinery, not an execution strategy.
_TRACING = _env_disabled("REPRO_TRACE")


def _env_workers(variable: str) -> int:
    """The worker-count default from ``variable`` (anything invalid → 1)."""
    raw = os.environ.get(variable, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


# Process-worker default: 1 means sequential; REPRO_WORKERS=N opts every
# engine without an explicit ``workers`` setting into N-process execution.
_WORKERS = _env_workers("REPRO_WORKERS")


def interning_enabled() -> bool:
    """Whether newly created instances use the interned backing (default on)."""
    return _INTERNING


def set_interning(enabled: bool) -> bool:
    """Flip the process-wide interning default; returns the previous setting.

    Only instances created *after* the call are affected: every
    :class:`~repro.data.instance.Instance` captures the flag at construction
    so its indexes stay internally consistent.
    """
    global _INTERNING
    with _STATE_LOCK:
        previous = _INTERNING
        _INTERNING = bool(enabled)
    return previous


@contextmanager
def use_interning(enabled: bool) -> Iterator[None]:
    """Context manager scoping :func:`set_interning` (A/B test helper)."""
    previous = set_interning(enabled)
    try:
        yield
    finally:
        set_interning(previous)


def codegen_enabled() -> bool:
    """Whether per-plan code generation is on (default on).

    Controls both the process-wide arity-specialised kernels (columnar
    semi-joins, null filters, chase matchers) and the default for engines
    and enumerators that were not given an explicit ``codegen`` setting.
    """
    return _CODEGEN


def set_codegen(enabled: bool) -> bool:
    """Flip the process-wide codegen default; returns the previous setting.

    Takes effect immediately for the shared kernels and for enumerators
    constructed afterwards; already-compiled closures keep running (they are
    byte-identical to the interpreted path by construction).
    """
    global _CODEGEN
    with _STATE_LOCK:
        previous = _CODEGEN
        _CODEGEN = bool(enabled)
    return previous


@contextmanager
def use_codegen(enabled: bool) -> Iterator[None]:
    """Context manager scoping :func:`set_codegen` (A/B test helper)."""
    previous = set_codegen(enabled)
    try:
        yield
    finally:
        set_codegen(previous)


def planner_enabled() -> bool:
    """Whether the cost-based plan choice is on (default on).

    With the planner on, materializations pick the cheapest candidate
    free-connex decomposition from the columnar statistics of the chased
    instance (and auto-tune the incremental fallback threshold); with it
    off they run the first valid plan with the configured threshold —
    the pre-planner behaviour, kept as the ``REPRO_NO_PLANNER`` /
    ``--no-planner`` A/B escape hatch.  Answers are byte-identical either
    way (plan choice only moves preprocessing constants).
    """
    return _PLANNER


def set_planner(enabled: bool) -> bool:
    """Flip the process-wide planner default; returns the previous setting.

    Resolved at each materialization's plan decision, so the flip also
    affects engines already built without an explicit ``planner`` setting
    (their next state build uses the new default; cached states keep the
    plan they were built with).
    """
    global _PLANNER
    with _STATE_LOCK:
        previous = _PLANNER
        _PLANNER = bool(enabled)
    return previous


@contextmanager
def use_planner(enabled: bool) -> Iterator[None]:
    """Context manager scoping :func:`set_planner` (A/B test helper)."""
    previous = set_planner(enabled)
    try:
        yield
    finally:
        set_planner(previous)


def tracing_enabled() -> bool:
    """Whether components *initiate* query traces by default (default off).

    This is the process default behind ``ExecutionOptions.tracing = None``:
    set ``REPRO_TRACE=1`` (captured at import) or call :func:`set_tracing`
    and every engine execution records a trace into the ring buffer of
    :mod:`repro.obs.trace`.  Independently of this switch, components always
    *join* a trace that an outer layer (the HTTP service, ``repro
    explain``) already started — unless hard-disabled with
    ``tracing=False``.
    """
    return _TRACING


def set_tracing(enabled: bool) -> bool:
    """Flip the process-wide tracing default; returns the previous setting."""
    global _TRACING
    with _STATE_LOCK:
        previous = _TRACING
        _TRACING = bool(enabled)
    return previous


@contextmanager
def use_tracing(enabled: bool) -> Iterator[None]:
    """Context manager scoping :func:`set_tracing` (diagnostic helper)."""
    previous = set_tracing(enabled)
    try:
        yield
    finally:
        set_tracing(previous)


def default_workers() -> int:
    """The process-wide worker-count default (1 = sequential, default).

    Captured from ``REPRO_WORKERS`` at import time and adjusted by
    :func:`set_workers`.  This is the fallback behind
    ``ExecutionOptions.workers = None``; values above 1 enable the
    process-parallel chase/reduce/batch paths of :mod:`repro.parallel`
    (sequential fallback on platforms without ``fork``).
    """
    return _WORKERS


def set_workers(count: int) -> int:
    """Set the process-wide worker default; returns the previous setting.

    Only engines/materializations that resolve their worker count *after*
    the call are affected (worker pools already forked keep running).
    """
    global _WORKERS
    with _STATE_LOCK:
        previous = _WORKERS
        _WORKERS = max(1, int(count))
    return previous


@contextmanager
def use_workers(count: int) -> Iterator[None]:
    """Context manager scoping :func:`set_workers` (A/B test helper)."""
    previous = set_workers(count)
    try:
        yield
    finally:
        set_workers(previous)


def resolve_option(explicit, options_value, default):
    """Apply the documented precedence: explicit arg > options > default.

    ``None`` marks "not given" at the first two levels, so a component
    resolves each knob with one call::

        strict = resolve_option(strict_kwarg, options.strict, True)
    """
    if explicit is not None:
        return explicit
    if options_value is not None:
        return options_value
    return default


@dataclass(frozen=True)
class ExecutionOptions:
    """Every engine tuning knob in one (immutable) place.

    ``None`` fields mean "use the process default" — for ``interning`` and
    ``codegen`` that default is the environment-aware process switch above,
    resolved at the moment the option is consumed, so a context manager like
    :func:`use_codegen` still wins over an unset field.

    * ``interning`` — dictionary-encode terms to dense ids (columnar store).
    * ``codegen`` — compile per-plan closures for the enumeration walk,
      semi-join kernels and single-atom chase rounds.
    * ``incremental`` — maintain materializations in place under mutations.
    * ``incremental_fallback_ratio`` — delta size (fraction of the database)
      above which a full rebuild beats in-place maintenance.
    * ``plan_cache_size`` — capacity of the prepared-plan LRU.
    * ``strict`` — reject queries outside the acyclic ∧ free-connex class.
    * ``tracing`` — the span-tracing tri-state: ``True`` records a trace for
      every execution, ``False`` hard-disables all instrumentation (spans
      are never even looked for), ``None`` joins ambient traces and
      otherwise follows the ``REPRO_TRACE`` process default.
    * ``workers`` — process-parallel execution: ``N > 1`` shards the chase,
      the Yannakakis reduce passes and ``execute_batch`` across ``N``
      forked worker processes (:mod:`repro.parallel`); ``1`` forces the
      sequential paths and ``None`` follows the ``REPRO_WORKERS`` process
      default.  Enumeration always streams from one merged cursor in the
      calling process, so the constant-delay contract is unchanged.
    * ``planner`` — cost-based plan choice: pick the cheapest candidate
      join tree / free-connex decomposition from columnar statistics,
      choose semi-join kernels per edge and auto-tune the incremental
      fallback threshold.  ``False`` runs the first valid plan (the
      pre-planner behaviour); ``None`` follows the ``REPRO_NO_PLANNER``
      process default.

    Invalid values are rejected at construction: ``plan_cache_size`` must
    be at least 1, ``workers`` at least 1 when given, and
    ``incremental_fallback_ratio`` a finite number in ``[0, 1]`` (``0.0``
    means "always rebuild on mutation").
    """

    interning: bool | None = None
    codegen: bool | None = None
    incremental: bool = True
    incremental_fallback_ratio: float = 0.1
    plan_cache_size: int = 64
    strict: bool = True
    tracing: bool | None = None
    workers: int | None = None
    planner: bool | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.plan_cache_size, int) or self.plan_cache_size < 1:
            raise ValueError(
                f"plan_cache_size must be an integer >= 1, got {self.plan_cache_size!r}"
            )
        if self.workers is not None and (
            not isinstance(self.workers, int) or self.workers < 1
        ):
            raise ValueError(
                f"workers must be None or an integer >= 1, got {self.workers!r}"
            )
        ratio = self.incremental_fallback_ratio
        if (
            not isinstance(ratio, (int, float))
            or isinstance(ratio, bool)
            or not math.isfinite(ratio)
            or not 0.0 <= ratio <= 1.0
        ):
            raise ValueError(
                "incremental_fallback_ratio must be a finite number in [0, 1] "
                f"(0.0 means always rebuild), got {ratio!r}"
            )

    def resolved_interning(self) -> bool:
        """The interning flag with the process default filled in."""
        return interning_enabled() if self.interning is None else self.interning

    def resolved_codegen(self) -> bool:
        """The codegen flag with the process default filled in."""
        return codegen_enabled() if self.codegen is None else self.codegen

    def resolved_tracing(self) -> bool:
        """The tracing flag with the process default filled in."""
        return tracing_enabled() if self.tracing is None else self.tracing

    def resolved_workers(self) -> int:
        """The worker count with the process default filled in (min 1)."""
        return default_workers() if self.workers is None else max(1, self.workers)

    def resolved_planner(self) -> bool:
        """The planner flag with the process default filled in."""
        return planner_enabled() if self.planner is None else self.planner

    def replace(self, **changes) -> "ExecutionOptions":
        """A copy with ``changes`` applied (dataclass ``replace`` sugar)."""
        return replace(self, **changes)
