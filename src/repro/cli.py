"""The ``repro`` command line interface.

Runs prepared-query workloads through :class:`repro.engine.QueryEngine`::

    repro run --workload university --size 400 --repeat 100 --json
    repro run --workload office --queries q1.cq q2.cq --batch
    repro run --rules rules.dlgp --data Edge.csv --queries queries.dlgp
    repro run --workload university --updates 20 --update-size 5 --json
    repro convert --workload office --size 50 --out office-dump
    repro workloads
    repro serve --workload demo --port 8080
    repro serve --tenant acme=university --tenant beta=lubm --size 500

``run`` resolves a scenario — a registry workload (``--workload``, a name
from ``repro workloads`` or a path to DLGP/CSV files) or explicit
``--rules`` / ``--data`` / ``--queries`` files — prepares every query once,
executes them ``--repeat`` times (sequentially, or as engine batches with
``--batch``), and reports per-query answer counts, wall-clock timings and the
engine's cache statistics — as a table, or as one JSON document with
``--json``.  Query files are DLGP documents (``.dlgp``, possibly holding
many queries) or single Datalog-style queries
(``q(x, y) :- R(x, z), S(z, y)``); without ``--queries`` the scenario's own
queries are used.

``convert`` writes any scenario back to disk as ``rules.dlgp`` +
``queries.dlgp`` + data files (CSV/TSV per relation, or one DLGP facts
document) — the dump/reload pair behind the round-trip guarantees of
``docs/formats.md``.

``serve`` starts the multi-tenant asyncio HTTP service of
:mod:`repro.server`: one named database per ``--tenant NAME=WORKLOAD``
(or a single ``default`` tenant from ``--workload``), query/cursor/mutation
endpoints, admission control and per-query timeouts, and a ``/metrics``
endpoint — see ``docs/server.md`` for the API.

``--updates N`` appends a *live-update replay*: N rounds, each applying one
``Database.batch()`` of random schema-shaped insertions and deletions
(``--update-size`` facts per round, default ~1% of the database) and then
re-executing every query on the warm engine.  The report shows how many
rounds the incremental subsystem served in place (``chase_increments``)
versus full rebuilds; ``--no-incremental`` forces the rebuild path for
comparison.

Every subcommand and flag is documented in ``docs/cli.md``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import random
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.config import ExecutionOptions, use_codegen, use_interning, use_planner
from repro.data.facts import Fact
from repro.data.instance import Database
from repro.cq.atoms import Variable
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery, QueryError
from repro.engine import QueryEngine
from repro.engine.fingerprint import query_fingerprint
from repro.io import Scenario, dump_scenario, load_queries, load_scenario
from repro.obs import TRACES, SlowQueryLog, explain_report, format_span_tree, start_trace
from repro.workloads import get_workload, list_workloads


def _resolve_scenario(args: argparse.Namespace) -> Scenario:
    """The scenario named by ``--workload`` or assembled from file flags."""
    if args.rules or args.data:
        if args.workload is not None:
            raise ValueError("pass either --workload or --rules/--data, not both")
        return load_scenario(rules=args.rules, data=args.data)
    workload = get_workload(args.workload or "university")
    if not workload.scalable and args.size is not None:
        print(
            f"note: workload {workload.name!r} is file-backed; --size ignored",
            file=sys.stderr,
        )
    size = args.size if args.size is not None else 300
    # Reflect the effective scale back so reports show the size actually
    # used (or None for file-backed workloads, where it is meaningless).
    args.size = size if workload.scalable else None
    return workload.scenario(size=size, seed=args.seed)


def _load_query_file(path: Path) -> list[tuple[str, ConjunctiveQuery]]:
    """Queries of one ``--queries`` file: a DLGP document or a single CQ."""
    if path.suffix.lower() == ".dlgp":
        return [(f"{path.name}:{query.name}", query) for query in load_queries(path)]
    text = path.read_text(encoding="utf-8").strip()
    return [(path.name, parse_query(text))]


def _resolve_queries(
    paths: Sequence[str], inline: Sequence[str], scenario: Scenario
) -> list[tuple[str, ConjunctiveQuery]]:
    queries: list[tuple[str, ConjunctiveQuery]] = []
    for path in paths:
        queries.extend(_load_query_file(Path(path)))
    for index, text in enumerate(inline):
        queries.append((f"inline{index}", parse_query(text)))
    if not queries:
        queries.extend((query.name, query) for query in scenario.queries)
    if not queries:
        raise ValueError(
            f"scenario {scenario.name!r} declares no queries; "
            "pass --queries or --inline"
        )
    return queries


def _mutation_batch(
    database: Database, live: list[Fact], rng: random.Random, count: int, tag: str
) -> tuple[int, int]:
    """One coalesced batch of ~half insertions, ~half deletions.

    Insertions clone the shape of random existing facts with a fresh first
    argument (a new entity entering the system); deletions drop random
    existing facts.  Everything lands in one ``Database.batch()`` so the
    engine sees a single delta.  ``live`` mirrors the database's fact set
    and is maintained across rounds (built once by the caller) so the
    replay never re-materialises it.
    """
    added = removed = 0
    with database.batch():
        for index in range(count):
            if not live:
                break
            if rng.random() < 0.5:
                victim = live.pop(rng.randrange(len(live)))
                if database.discard(victim):
                    removed += 1
            else:
                template = live[rng.randrange(len(live))]
                fact = Fact(
                    template.relation, (f"live_{tag}_{index}",) + template.args[1:]
                )
                if database.add(fact):
                    added += 1
                    live.append(fact)
    return added, removed


def _replay_updates(
    engine: QueryEngine,
    database: Database,
    queries: list[tuple[str, ConjunctiveQuery]],
    rounds: int,
    batch_size: int,
    seed: int,
) -> dict:
    """Replay ``rounds`` mutation batches against the warm engine."""
    rng = random.Random(seed)
    live = sorted(database.facts(), key=repr)
    added = removed = 0
    round_seconds: list[float] = []
    started = time.perf_counter()
    for round_index in range(rounds):
        plus, minus = _mutation_batch(database, live, rng, batch_size, str(round_index))
        added += plus
        removed += minus
        round_started = time.perf_counter()
        for _, query in queries:
            engine.execute(query)
        round_seconds.append(time.perf_counter() - round_started)
    total_seconds = time.perf_counter() - started
    stats = engine.stats
    return {
        "rounds": rounds,
        "batch_size": batch_size,
        "facts_added": added,
        "facts_removed": removed,
        "total_seconds": round(total_seconds, 6),
        "mean_round_ms": round(1000 * total_seconds / rounds, 3) if rounds else None,
        "max_round_ms": round(1000 * max(round_seconds), 3) if round_seconds else None,
        "chase_builds": stats.chase_builds,
        "chase_increments": stats.chase_increments,
        "incremental_fallbacks": stats.incremental_fallbacks,
    }


def _run(args: argparse.Namespace) -> int:
    # Scoped around the whole run (scenario load included — instances
    # capture the interning flag at construction, enumerators the codegen
    # flag) and restored on exit, so in-process callers of main() keep the
    # process defaults.
    with contextlib.ExitStack() as stack:
        if args.no_intern:
            stack.enter_context(use_interning(False))
        if args.no_codegen:
            stack.enter_context(use_codegen(False))
        if args.no_planner:
            stack.enter_context(use_planner(False))
        return _run_command(args)


def _run_command(args: argparse.Namespace) -> int:
    try:
        scenario = _resolve_scenario(args)
        queries = _resolve_queries(args.queries, args.inline, scenario)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    database = scenario.database

    engine = QueryEngine(
        scenario.ontology,
        database,
        options=ExecutionOptions(
            interning=False if args.no_intern else None,
            codegen=False if args.no_codegen else None,
            planner=False if args.no_planner else None,
            incremental=not args.no_incremental,
            strict=not args.no_strict,
            tracing=True if args.trace else None,
            workers=args.workers,
        ),
    )
    slow_log = SlowQueryLog(args.slow_query_ms)
    prep_started = time.perf_counter()
    try:
        engine.warm([query for _, query in queries])
    except QueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    prep_seconds = time.perf_counter() - prep_started

    results = []
    exec_started = time.perf_counter()
    if args.batch:
        batch = [query for _, query in queries] * args.repeat
        answer_sets = engine.execute_batch(batch, max_workers=args.workers)
        per_query = answer_sets[: len(queries)]
    else:
        per_query = []
        for label, query in queries:
            answers: set[tuple] = set()
            for _ in range(args.repeat):
                query_started = time.perf_counter()
                answers = engine.execute(query)
                if slow_log.threshold_ms is not None:
                    recent = TRACES.recent(1) if args.trace else []
                    slow_log.record(
                        query=label,
                        elapsed_ms=1000 * (time.perf_counter() - query_started),
                        answers=len(answers),
                        trace_id=recent[0].trace_id if recent else None,
                    )
            per_query.append(answers)
    exec_seconds = time.perf_counter() - exec_started

    executed = len(queries) * args.repeat
    for (label, query), answers in zip(queries, per_query):
        sample = sorted(answers)[: args.show] if args.show > 0 else []
        results.append(
            {
                "query": label,
                "arity": query.arity,
                "answers": len(answers),
                "sample": [list(a) for a in sample],
            }
        )

    updates_report = None
    if args.updates:
        batch_size = args.update_size or max(1, len(database) // 100)
        updates_report = _replay_updates(
            engine, database, queries, args.updates, batch_size, args.seed
        )

    stats = engine.stats
    report = {
        "workload": args.workload or ("files" if (args.rules or args.data) else "university"),
        "scenario": scenario.name,
        "sources": list(scenario.sources),
        "size": args.size,
        "seed": args.seed,
        "db_facts": len(database),
        "queries": len(queries),
        "repeat": args.repeat,
        "mode": "batch" if args.batch else "sequential",
        "executed": executed,
        "preprocess_seconds": round(prep_seconds, 6),
        "execute_seconds": round(exec_seconds, 6),
        "throughput_qps": round(executed / exec_seconds, 1) if exec_seconds else None,
        "results": results,
        "engine": {
            "plans_cached": stats.plans_cached,
            "plan_hits": stats.plan_hits,
            "plan_misses": stats.plan_misses,
            "chase_builds": stats.chase_builds,
            "chase_increments": stats.chase_increments,
            "incremental_fallbacks": stats.incremental_fallbacks,
            "state_builds": stats.state_builds,
            "invalidations": stats.invalidations,
            "plans_compiled": stats.plans_compiled,
            "codegen_cache_hits": stats.codegen_cache_hits,
        },
    }
    if updates_report is not None:
        report["updates"] = updates_report
    if args.trace:
        report["traces"] = [
            {
                "trace_id": trace.trace_id,
                "name": trace.name,
                "duration_ms": round(trace.duration_ms, 3),
                "spans": len(trace.spans),
            }
            for trace in TRACES.recent(len(queries))
        ]
    if args.json:
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0

    scale = f"size={args.size}, seed={args.seed}" if args.size is not None else f"seed={args.seed}"
    print(f"scenario {scenario.name}: {len(database)} facts ({scale})")
    print(
        f"prepared {len(queries)} queries in {prep_seconds * 1000:.1f} ms; "
        f"executed {executed} in {exec_seconds * 1000:.1f} ms "
        f"({report['throughput_qps']} q/s, {report['mode']})"
    )
    for entry in results:
        print(f"  {entry['query']}/{entry['arity']}: {entry['answers']} answers")
        for sample in entry["sample"]:
            print(f"    {tuple(sample)}")
    if updates_report is not None:
        print(
            f"updates: {updates_report['rounds']} rounds x "
            f"{updates_report['batch_size']} facts "
            f"(+{updates_report['facts_added']}/-{updates_report['facts_removed']}) "
            f"in {updates_report['total_seconds'] * 1000:.1f} ms "
            f"(mean {updates_report['mean_round_ms']} ms/round); "
            f"{updates_report['chase_increments']} incremental, "
            f"{updates_report['chase_builds']} rebuilds, "
            f"{updates_report['incremental_fallbacks']} fallbacks"
        )
    print(
        f"engine: {stats.plans_cached} plans cached "
        f"({stats.plan_hits} hits / {stats.plan_misses} misses), "
        f"{stats.chase_builds} chase builds, "
        f"{stats.chase_increments} incremental updates, "
        f"{stats.state_builds} state builds"
    )
    if args.trace:
        for entry in report["traces"]:
            print(
                f"trace {entry['trace_id']}  {entry['name']}  "
                f"{entry['duration_ms']} ms ({entry['spans']} spans); "
                "inspect with `repro explain` or the /traces endpoint"
            )
    return 0


def _format_term(term) -> str:
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, int):
        return str(term)
    return f'"{term}"'


def _format_query(query: ConjunctiveQuery) -> str:
    """Render a query back to the Datalog-style surface syntax.

    Used by ``repro explain`` so the traced execution starts from text and
    the report shows a genuine ``parse`` phase; atoms are emitted in sorted
    order for determinism (conjunction is commutative).
    """
    head = ", ".join(v.name for v in query.answer_variables)
    atoms = sorted(query.atoms, key=repr)
    body = ", ".join(
        f"{atom.relation}({', '.join(_format_term(term) for term in atom.args)})"
        for atom in atoms
    )
    return f"{query.name}({head}) :- {body}"


def _explain_target(query: ConjunctiveQuery) -> "str | ConjunctiveQuery":
    """The query as text when the round-trip is faithful, else the object.

    Queries from DLGP files can use variable names the Datalog-style parser
    would read as constants (uppercase); those are executed as objects — the
    report then simply has no parse phase.
    """
    text = _format_query(query)
    try:
        reparsed = parse_query(text)
    except QueryError:
        return query
    if query_fingerprint(reparsed) != query_fingerprint(query):
        return query
    return text


def _explain(args: argparse.Namespace) -> int:
    """Trace one cold execution per query and print the phase report."""
    try:
        scenario = _resolve_scenario(args)
        queries = _resolve_queries(args.queries, args.inline, scenario)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    reports = []
    for label, query in queries:
        # A fresh engine per query, so EXPLAIN shows every phase paying its
        # real cost (plan compile, chase, reduction) instead of cache hits.
        engine = QueryEngine(
            scenario.ontology,
            scenario.database,
            options=ExecutionOptions(strict=not args.no_strict),
        )
        target = _explain_target(query)
        try:
            with start_trace(f"explain:{label}") as trace:
                answers = engine.execute(target)
        except QueryError as exc:
            print(f"error: {label}: {exc}", file=sys.stderr)
            return 2
        reports.append(
            explain_report(
                trace, prepared=engine.prepare(target), answers=len(answers)
            )
        )
    if args.json:
        json.dump(
            {"scenario": scenario.name, "explains": reports}, sys.stdout, indent=2
        )
        sys.stdout.write("\n")
        return 0
    for report in reports:
        print(format_span_tree(report))
        print()
    return 0


def _serve(args: argparse.Namespace) -> int:
    from repro.server import ServiceConfig
    from repro.server.runner import run as run_server

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        query_timeout=args.timeout,
        page_size=args.page_size,
        max_cursors=args.max_cursors,
        drain_timeout=args.drain_timeout,
        plan_cache_size=args.plan_cache_size,
        strict=not args.no_strict,
        incremental=not args.no_incremental,
        codegen=False if args.no_codegen else None,
        planner=False if args.no_planner else None,
        tracing=True if args.trace else None,
        slow_query_ms=args.slow_query_ms,
        workers=args.workers,
    )
    tenants: list[tuple[str, str, int, int]] = []
    for spec in args.tenant:
        name, separator, workload = spec.partition("=")
        if not separator or not name or not workload:
            print(f"error: --tenant must be NAME=WORKLOAD, got {spec!r}", file=sys.stderr)
            return 2
        tenants.append((name, workload, args.size or 300, args.seed))
    if not tenants:
        tenants.append(("default", args.workload or "university", args.size or 300, args.seed))
    try:
        return run_server(config, tenants)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _workloads(args: argparse.Namespace) -> int:
    del args
    for name, workload in list_workloads().items():
        kind = "generator " if workload.scalable else "file-based"
        print(f"{name:12s} {kind}  {workload.description}")
    return 0


def _convert(args: argparse.Namespace) -> int:
    try:
        scenario = _resolve_scenario(args)
        if args.queries or args.inline:
            named = _resolve_queries(args.queries, args.inline, scenario)
            scenario = Scenario(
                ontology=scenario.ontology,
                database=scenario.database,
                queries=tuple(query for _, query in named),
                name=scenario.name,
                sources=scenario.sources,
            )
        written = dump_scenario(scenario, args.out, data_format=args.data_format)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for path in written:
        print(path)
    return 0


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    """The flags every subcommand uses to resolve a scenario."""
    parser.add_argument(
        "--workload",
        default=None,
        metavar="NAME_OR_PATH",
        help=(
            "registry workload name (see `repro workloads`) or a path to "
            "DLGP/CSV files; default: university"
        ),
    )
    parser.add_argument(
        "--rules",
        nargs="+",
        default=[],
        metavar="FILE.dlgp",
        help="DLGP rule files (embedded @queries/@facts sections are used too)",
    )
    parser.add_argument(
        "--data",
        nargs="+",
        default=[],
        metavar="FILE",
        help="data files: .csv/.tsv (one relation per file) or .dlgp facts",
    )
    parser.add_argument(
        "--queries",
        nargs="*",
        default=[],
        metavar="FILE",
        help=(
            "query files: .dlgp documents (any number of queries) or files "
            "holding one Datalog-style query"
        ),
    )
    parser.add_argument(
        "--inline",
        nargs="*",
        default=[],
        metavar="QUERY",
        help="queries given directly on the command line",
    )
    parser.add_argument(
        "--size",
        type=int,
        default=None,
        help="database scale factor for generator workloads (default: 300)",
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prepared-query engine CLI for the PODS'22 reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run queries through the QueryEngine")
    _add_scenario_arguments(run)
    run.add_argument("--repeat", type=int, default=1, help="executions per query")
    run.add_argument(
        "--batch",
        action="store_true",
        help="evaluate through engine.execute_batch instead of per-query calls",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the sharded parallel backend (chase, "
            "semi-join reduce, batch fan-out), as with REPRO_WORKERS=N; "
            "1 is fully sequential, and the same N sizes the --batch "
            "thread pool (default: REPRO_WORKERS, else 1)"
        ),
    )
    run.add_argument("--show", type=int, default=0, help="sample answers to print")
    run.add_argument("--json", action="store_true", help="emit one JSON report")
    run.add_argument(
        "--updates",
        type=int,
        default=0,
        metavar="N",
        help="replay N random mutation batches against the warm engine",
    )
    run.add_argument(
        "--update-size",
        type=int,
        default=None,
        metavar="K",
        help="facts per mutation batch (default: ~1%% of the database)",
    )
    run.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable incremental maintenance (full rebuild per mutation)",
    )
    run.add_argument(
        "--no-strict",
        action="store_true",
        help=(
            "allow queries outside the acyclic/free-connex class "
            "(served via materialized certain answers, not constant delay)"
        ),
    )
    run.add_argument(
        "--no-intern",
        action="store_true",
        help=(
            "disable the interned (dictionary-encoded) fact store and run "
            "over term objects, as with REPRO_NO_INTERN=1 (A/B escape hatch)"
        ),
    )
    run.add_argument(
        "--no-codegen",
        action="store_true",
        help=(
            "disable per-plan code generation and run the interpreted "
            "slot-plan/kernel paths, as with REPRO_NO_CODEGEN=1 "
            "(A/B escape hatch)"
        ),
    )
    run.add_argument(
        "--no-planner",
        action="store_true",
        help=(
            "disable the cost-based plan choice and always run the default "
            "decomposition, as with REPRO_NO_PLANNER=1 (A/B escape hatch)"
        ),
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help=(
            "record a span trace for every execution (as with REPRO_TRACE=1) "
            "and list the recorded trace ids in the report"
        ),
    )
    run.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "log sequential-mode executions slower than MS milliseconds as "
            "JSON lines on stderr (the slow-query log)"
        ),
    )
    run.set_defaults(func=_run)

    explain = subparsers.add_parser(
        "explain",
        help="trace one cold execution per query and print the phase report",
    )
    _add_scenario_arguments(explain)
    explain.add_argument(
        "--no-strict",
        action="store_true",
        help=(
            "allow queries outside the acyclic/free-connex class "
            "(served via materialized certain answers, not constant delay)"
        ),
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="emit the EXPLAIN reports as one JSON document",
    )
    explain.set_defaults(func=_explain)

    convert = subparsers.add_parser(
        "convert",
        help="dump a scenario to rules.dlgp + queries.dlgp + data files",
    )
    _add_scenario_arguments(convert)
    convert.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="output directory (created if missing)",
    )
    convert.add_argument(
        "--data-format",
        choices=("csv", "tsv", "dlgp"),
        default="csv",
        help="how to serialize the database (default: csv, one file per relation)",
    )
    convert.set_defaults(func=_convert)

    workloads = subparsers.add_parser(
        "workloads", help="list registered workloads (generators and file-based)"
    )
    workloads.set_defaults(func=_workloads)

    serve = subparsers.add_parser(
        "serve", help="start the multi-tenant HTTP query service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="TCP port (0 picks an ephemeral port, announced on stdout)",
    )
    serve.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="NAME=WORKLOAD",
        help=(
            "provision a named tenant from a workload (registry name or "
            "path); repeatable"
        ),
    )
    serve.add_argument(
        "--workload",
        default=None,
        metavar="NAME_OR_PATH",
        help="workload for the single 'default' tenant when no --tenant is given",
    )
    serve.add_argument(
        "--size",
        type=int,
        default=None,
        help="database scale factor for generator workloads (default: 300)",
    )
    serve.add_argument("--seed", type=int, default=0, help="generator seed")
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="admission control: in-flight requests per tenant before 429",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-query timeout; enumeration is cancelled cleanly at a page boundary",
    )
    serve.add_argument(
        "--page-size",
        type=int,
        default=100,
        help="default cursor page size (?count=N overrides per request)",
    )
    serve.add_argument(
        "--max-cursors",
        type=int,
        default=64,
        help="open server-side cursors per tenant before 429",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="graceful-shutdown budget for in-flight requests before cursors close",
    )
    serve.add_argument(
        "--plan-cache-size",
        type=int,
        default=256,
        help="capacity of the cross-tenant prepared-plan cache",
    )
    serve.add_argument(
        "--no-strict",
        action="store_true",
        help=(
            "serve queries outside the acyclic/free-connex class "
            "(materialized certain answers, not constant delay)"
        ),
    )
    serve.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable incremental maintenance (mutations force full rebuilds)",
    )
    serve.add_argument(
        "--no-codegen",
        action="store_true",
        help="serve over the interpreted slot-plan/kernel paths (no codegen)",
    )
    serve.add_argument(
        "--no-planner",
        action="store_true",
        help="serve without the cost-based plan choice (always the default plan)",
    )
    serve.add_argument(
        "--trace",
        action="store_true",
        help=(
            "trace every request (otherwise only requests carrying an "
            "X-Repro-Trace header or ?explain=1 are traced)"
        ),
    )
    serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log queries/pages slower than MS milliseconds as JSON lines on stderr",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes per tenant engine for the sharded parallel "
            "backend, as with REPRO_WORKERS=N (default: REPRO_WORKERS, "
            "else 1 = sequential)"
        ),
    )
    serve.set_defaults(func=_serve)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
