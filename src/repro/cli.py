"""The ``repro`` command line interface.

Runs prepared-query workloads through :class:`repro.engine.QueryEngine`::

    repro run --workload university --size 400 --repeat 100 --json
    repro run --workload office --queries q1.cq q2.cq --batch
    repro workloads

``run`` builds the workload's synthetic database, prepares every query once,
executes them ``--repeat`` times (sequentially, or as engine batches with
``--batch``), and reports per-query answer counts, wall-clock timings and the
engine's cache statistics — as a table, or as one JSON document with
``--json``.  Query files contain a single Datalog-style query
(``q(x, y) :- R(x, z), S(z, y)``); without ``--queries`` the workload's
canonical query is used.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.data.instance import Database
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery, QueryError
from repro.core.omq import OMQ
from repro.engine import QueryEngine
from repro.workloads import (
    generate_office_database,
    generate_university_database,
    office_omq,
    university_omq,
)

WORKLOADS: dict[str, tuple[Callable[[], OMQ], Callable[..., Database], str]] = {
    "university": (
        university_omq,
        generate_university_database,
        "LUBM-flavoured students/advisors/departments over an ELI ontology",
    ),
    "office": (
        office_omq,
        generate_office_database,
        "Example 1.1: researchers, offices and buildings",
    ),
}


def _load_queries(
    paths: Sequence[str], inline: Sequence[str], default: ConjunctiveQuery
) -> list[tuple[str, ConjunctiveQuery]]:
    queries: list[tuple[str, ConjunctiveQuery]] = []
    for path in paths:
        text = Path(path).read_text(encoding="utf-8").strip()
        queries.append((Path(path).name, parse_query(text)))
    for index, text in enumerate(inline):
        queries.append((f"inline{index}", parse_query(text)))
    if not queries:
        queries.append((default.name, default))
    return queries


def _run(args: argparse.Namespace) -> int:
    omq_factory, generator, _ = WORKLOADS[args.workload]
    omq = omq_factory()
    database = generator(args.size, seed=args.seed)
    try:
        queries = _load_queries(args.queries, args.inline, omq.query)
    except (OSError, QueryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    engine = QueryEngine(omq.ontology, database, strict=not args.no_strict)
    prep_started = time.perf_counter()
    try:
        engine.warm([query for _, query in queries])
    except QueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    prep_seconds = time.perf_counter() - prep_started

    results = []
    exec_started = time.perf_counter()
    if args.batch:
        batch = [query for _, query in queries] * args.repeat
        answer_sets = engine.execute_batch(batch, max_workers=args.workers)
        per_query = answer_sets[: len(queries)]
    else:
        per_query = []
        for _, query in queries:
            answers: set[tuple] = set()
            for _ in range(args.repeat):
                answers = engine.execute(query)
            per_query.append(answers)
    exec_seconds = time.perf_counter() - exec_started

    executed = len(queries) * args.repeat
    for (label, query), answers in zip(queries, per_query):
        sample = sorted(answers)[: args.show] if args.show > 0 else []
        results.append(
            {
                "query": label,
                "arity": query.arity,
                "answers": len(answers),
                "sample": [list(a) for a in sample],
            }
        )

    stats = engine.stats
    report = {
        "workload": args.workload,
        "size": args.size,
        "seed": args.seed,
        "db_facts": len(database),
        "queries": len(queries),
        "repeat": args.repeat,
        "mode": "batch" if args.batch else "sequential",
        "executed": executed,
        "preprocess_seconds": round(prep_seconds, 6),
        "execute_seconds": round(exec_seconds, 6),
        "throughput_qps": round(executed / exec_seconds, 1) if exec_seconds else None,
        "results": results,
        "engine": {
            "plans_cached": stats.plans_cached,
            "plan_hits": stats.plan_hits,
            "plan_misses": stats.plan_misses,
            "chase_builds": stats.chase_builds,
            "state_builds": stats.state_builds,
            "invalidations": stats.invalidations,
        },
    }
    if args.json:
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0

    print(f"workload {args.workload}: {len(database)} facts (size={args.size}, seed={args.seed})")
    print(
        f"prepared {len(queries)} queries in {prep_seconds * 1000:.1f} ms; "
        f"executed {executed} in {exec_seconds * 1000:.1f} ms "
        f"({report['throughput_qps']} q/s, {report['mode']})"
    )
    for entry in results:
        print(f"  {entry['query']}/{entry['arity']}: {entry['answers']} answers")
        for sample in entry["sample"]:
            print(f"    {tuple(sample)}")
    print(
        f"engine: {stats.plans_cached} plans cached "
        f"({stats.plan_hits} hits / {stats.plan_misses} misses), "
        f"{stats.chase_builds} chase builds, {stats.state_builds} state builds"
    )
    return 0


def _workloads(args: argparse.Namespace) -> int:
    del args
    for name, (_, _, description) in sorted(WORKLOADS.items()):
        print(f"{name:12s} {description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prepared-query engine CLI for the PODS'22 reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run queries through the QueryEngine")
    run.add_argument("--workload", choices=sorted(WORKLOADS), default="university")
    run.add_argument("--size", type=int, default=300, help="database scale factor")
    run.add_argument("--seed", type=int, default=0, help="generator seed")
    run.add_argument(
        "--queries",
        nargs="*",
        default=[],
        metavar="FILE.cq",
        help="files each holding one Datalog-style query",
    )
    run.add_argument(
        "--inline",
        nargs="*",
        default=[],
        metavar="QUERY",
        help="queries given directly on the command line",
    )
    run.add_argument("--repeat", type=int, default=1, help="executions per query")
    run.add_argument(
        "--batch",
        action="store_true",
        help="evaluate through engine.execute_batch instead of per-query calls",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="thread-pool size for --batch (default: auto)",
    )
    run.add_argument("--show", type=int, default=0, help="sample answers to print")
    run.add_argument("--json", action="store_true", help="emit one JSON report")
    run.add_argument(
        "--no-strict",
        action="store_true",
        help=(
            "allow queries outside the acyclic/free-connex class "
            "(served via materialized certain answers, not constant delay)"
        ),
    )
    run.set_defaults(func=_run)

    workloads = subparsers.add_parser("workloads", help="list built-in workloads")
    workloads.set_defaults(func=_workloads)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
