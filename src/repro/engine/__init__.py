"""Prepared-query engine: plan caching, shared materialization, batching.

The serving layer over the paper's preprocessing/enumeration split — compile
an OMQ once (:func:`prepare_query`), materialize per-database state once,
then answer repeated and batched queries at enumeration cost only.
"""

from repro.engine.cache import LRUCache
from repro.engine.codegen import CODEGEN_STATS, CodegenStats, PlanCodegen
from repro.engine.engine import AnswerCursor, EngineStats, QueryEngine
from repro.engine.fingerprint import (
    canonical_atom,
    canonical_ontology,
    canonical_query,
    canonical_tgd,
    ontology_fingerprint,
    query_fingerprint,
)
from repro.engine.materialization import (
    Materialization,
    MaterializedAnswers,
    QueryState,
)
from repro.engine.plan import PreparedQuery, prepare_query
from repro.engine.stats import EngineCounters, LatencyHistogram

__all__ = [
    "CODEGEN_STATS",
    "CodegenStats",
    "EngineCounters",
    "LatencyHistogram",
    "AnswerCursor",
    "EngineStats",
    "LRUCache",
    "PlanCodegen",
    "Materialization",
    "MaterializedAnswers",
    "PreparedQuery",
    "QueryEngine",
    "QueryState",
    "canonical_atom",
    "canonical_ontology",
    "canonical_query",
    "canonical_tgd",
    "ontology_fingerprint",
    "prepare_query",
    "query_fingerprint",
]
