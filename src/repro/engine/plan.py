"""Prepared queries: the data-independent compilation of an OMQ.

``prepare_query`` runs everything that depends only on the ontology and the
query — parsing/normalization (head deduplication), the acyclicity and
free-connex verdicts, the join tree, the free-connex decomposition, and the
ontology-specific chase program (the truncation depth of the query-directed
chase).  A :class:`PreparedQuery` can then be executed against any number of
databases with only the data-dependent work (chase + reduction) left to do;
the engine caches these plans in an LRU keyed by fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chase.query_directed import default_null_depth
from repro.cq.acyclicity import is_weakly_acyclic
from repro.cq.jointree import JoinTree, build_join_tree
from repro.cq.query import ConjunctiveQuery, QueryError
from repro.core.omq import OMQ
from repro.engine.codegen import PlanCodegen
from repro.engine.fingerprint import ontology_fingerprint, query_fingerprint
from repro.tgds.ontology import Ontology
from repro.yannakakis.decomposition import FreeConnexDecomposition, decompose_free_connex


@dataclass(eq=False)
class PreparedQuery:
    """A reusable compiled plan for one ``(ontology, query)`` pair."""

    omq: OMQ
    ontology_fingerprint: str
    query_fingerprint: str
    is_acyclic: bool
    is_weakly_acyclic: bool
    is_free_connex_acyclic: bool
    deduplicated_query: ConjunctiveQuery
    head_positions: tuple[int, ...]
    join_tree: JoinTree | None
    decomposition: FreeConnexDecomposition | None
    null_depth: int
    strict: bool = True
    # The plan's compiled closures live *on the plan*, next to the
    # decomposition: evicting the plan-cache entry drops the last strong
    # reference and the generated code objects with it, so the codegen
    # cache can never outlive its PreparedQuery (no growth under
    # fingerprint churn).
    codegen: PlanCodegen = field(default_factory=PlanCodegen, repr=False)
    # Planner state rides on the plan for the same lifetime reason.  The
    # candidate decompositions are data-independent (enumerated lazily,
    # under the engine lock, on the first planner decision); the last
    # cost-based choice is data-dependent telemetry — stashed here so
    # ``repro explain`` can show the chosen plan, the losing candidates
    # and estimated vs actual cardinalities without re-running anything.
    _planner_candidates: "list | None" = field(default=None, repr=False)
    last_plan_choice: "object | None" = field(default=None, repr=False)

    @property
    def cache_key(self) -> tuple[str, str]:
        """The plan-cache key: (ontology fingerprint, query fingerprint)."""
        return (self.ontology_fingerprint, self.query_fingerprint)

    @property
    def supports_enumeration(self) -> bool:
        """True if CD∘Lin constant-delay enumeration is guaranteed."""
        return self.is_acyclic and self.is_free_connex_acyclic

    def planner_candidates(self) -> list:
        """The candidate decompositions the cost-based planner weighs.

        Candidate 0 is always :attr:`decomposition` — the plan the
        unplanned path runs — followed by the structurally distinct
        maximum-weight ties of ``q⁺``.  Enumerated once per plan (they are
        data-independent) and cached; callers hold the engine lock, like
        every other plan-state mutation.  Empty when the query is outside
        the enumerable class.
        """
        if not self.supports_enumeration or self.decomposition is None:
            return []
        if self._planner_candidates is None:
            from repro.planner import plan_candidates

            self._planner_candidates = plan_candidates(
                self.deduplicated_query, default=self.decomposition
            )
        return self._planner_candidates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PreparedQuery({self.omq.query.name}/{self.omq.arity}, "
            f"acyclic={self.is_acyclic}, "
            f"free_connex={self.is_free_connex_acyclic}, "
            f"null_depth={self.null_depth})"
        )


def prepare_query(
    ontology: Ontology,
    query: ConjunctiveQuery,
    strict: bool = True,
    name: str = "Q",
) -> PreparedQuery:
    """Compile ``(ontology, query)`` into a :class:`PreparedQuery`.

    With ``strict`` (the default), queries outside the acyclic ∧ free-connex
    class — where constant-delay enumeration is not guaranteed (Theorems 4.3
    and 4.4) — are rejected with :class:`QueryError`.
    """
    omq = OMQ.from_parts(ontology, query, name=name)
    acyclic = omq.is_acyclic()
    free_connex = omq.is_free_connex_acyclic()
    if strict and not (acyclic and free_connex):
        raise QueryError(
            f"{omq.name} is not acyclic and free-connex acyclic: CD∘Lin "
            "enumeration is not guaranteed (Theorems 4.3 and 4.4)"
        )
    deduplicated, head_positions = query.deduplicated_head()
    join_tree = build_join_tree(list(query.atoms)) if acyclic else None
    decomposition = (
        decompose_free_connex(deduplicated) if acyclic and free_connex else None
    )
    return PreparedQuery(
        omq=omq,
        ontology_fingerprint=ontology_fingerprint(ontology),
        query_fingerprint=query_fingerprint(query),
        is_acyclic=acyclic,
        is_weakly_acyclic=is_weakly_acyclic(query),
        is_free_connex_acyclic=free_connex,
        deduplicated_query=deduplicated,
        head_positions=tuple(head_positions),
        join_tree=join_tree,
        decomposition=decomposition,
        null_depth=default_null_depth(ontology, query),
        strict=strict,
    )
