"""A small LRU cache with hit/miss accounting for prepared-query plans."""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Iterator, TypeVar

V = TypeVar("V")


class LRUCache(Generic[V]):
    """Least-recently-used mapping with a fixed capacity.

    ``get`` refreshes recency; inserting beyond ``capacity`` evicts the
    least recently used entry.  ``hits`` / ``misses`` / ``evictions`` feed
    the engine's statistics.  Not thread-safe on its own; the engine guards
    it with its lock.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, V] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def values(self) -> list[V]:
        """The cached values, least recently used first (no recency effect)."""
        return list(self._entries.values())

    def get(self, key: Hashable) -> V | None:
        """The cached value for ``key`` (refreshing recency), or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: V) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
