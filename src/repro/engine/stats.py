"""Thread-safe engine counters and latency histograms.

The engine's execution counters used to be bare ``int`` attributes bumped
with ``+=``.  That read–modify–write is not atomic in Python: two
``execute_batch`` thread-pool workers (or a worker racing the event loop of
the HTTP service) can interleave between the load and the store and lose an
increment, so long-serving processes slowly under-count.  Both classes here
close that hole with one small lock per object:

* :class:`EngineCounters` — a named-counter block.  Every ``bump`` takes the
  lock, and :meth:`snapshot` returns all counters from a single critical
  section, so a ``/metrics`` scrape can never observe a torn multi-counter
  state (e.g. ``executions`` bumped but ``cursors_opened`` not yet).
* :class:`LatencyHistogram` — fixed geometric buckets, so ``observe`` is
  O(1), memory is O(#buckets) forever, and percentile estimates come from
  the bucket boundaries (upper bound of the bucket holding the requested
  rank — a conservative estimate whose error is bounded by the bucket
  ratio).

Both are cheap enough to sit on hot paths: one uncontended lock acquisition
is tens of nanoseconds, far below the cost of a single enumeration step.
"""

from __future__ import annotations

import threading
from bisect import bisect_left


class EngineCounters:
    """A block of named monotonic counters guarded by one lock.

    ``bump``/``get`` accept any string name; unknown names read as 0 so
    callers never pre-register.  Negative amounts are allowed for the few
    gauge-style entries (open-cursor count).
    """

    __slots__ = ("_lock", "_values")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: dict[str, int] = {}

    def bump(self, name: str, amount: int = 1) -> int:
        """Atomically add ``amount`` to ``name``; return the new value."""
        with self._lock:
            value = self._values.get(name, 0) + amount
            self._values[name] = value
            return value

    def get(self, name: str) -> int:
        with self._lock:
            return self._values.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """All counters, read in one critical section (a consistent cut)."""
        with self._lock:
            return dict(self._values)


#: Default histogram buckets: 0.1 ms .. ~54 s in ×2 steps (20 boundaries).
_DEFAULT_BOUNDS = tuple(0.0001 * (2.0**i) for i in range(20))


class LatencyHistogram:
    """A thread-safe latency histogram with geometric buckets.

    ``observe(seconds)`` is O(log #buckets) (a bisect) under the lock;
    ``percentile`` answers from bucket upper bounds, so estimates are
    conservative (never below the true percentile by more than one bucket).
    The exact ``max`` and ``sum`` are tracked alongside, so means and worst
    cases in ``snapshot`` are not quantized.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_count", "_sum", "_max")

    def __init__(self, bounds: tuple[float, ...] = _DEFAULT_BOUNDS) -> None:
        if list(bounds) != sorted(bounds) or not bounds:
            raise ValueError("histogram bounds must be a sorted, non-empty sequence")
        self._lock = threading.Lock()
        self._bounds = tuple(bounds)
        # One bucket per bound (values <= bound) plus one overflow bucket.
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        bucket = bisect_left(self._bounds, seconds)
        with self._lock:
            self._counts[bucket] += 1
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentile(self, fraction: float) -> float:
        """The upper bound of the bucket holding the ``fraction`` rank.

        ``fraction`` is in [0, 1]; an empty histogram reports 0.0, and ranks
        landing in the overflow bucket report the observed maximum.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be within [0, 1], got {fraction}")
        with self._lock:
            return self._percentile_locked(fraction)

    def _percentile_locked(self, fraction: float) -> float:
        if self._count == 0:
            return 0.0
        rank = max(1, round(fraction * self._count))
        seen = 0
        for bucket, count in enumerate(self._counts):
            seen += count
            if seen >= rank:
                if bucket < len(self._bounds):
                    return min(self._bounds[bucket], self._max)
                return self._max
        return self._max  # pragma: no cover - rank <= count always hits

    def snapshot(self) -> dict[str, object]:
        """Count, mean, quantiles *and the raw buckets* as one reading.

        ``buckets`` lists cumulative counts per upper bound in seconds
        (Prometheus ``le`` convention, final bound ``"+Inf"``), so the
        exposition layer can emit a genuine histogram instead of
        pre-digested percentiles.
        """
        with self._lock:
            count, total, maximum = self._count, self._sum, self._max
            p50 = self._percentile_locked(0.50)
            p95 = self._percentile_locked(0.95)
            p99 = self._percentile_locked(0.99)
            counts = list(self._counts)
        buckets: list[dict[str, object]] = []
        cumulative = 0
        for bound, bucket_count in zip(self._bounds, counts):
            cumulative += bucket_count
            buckets.append({"le": bound, "count": cumulative})
        buckets.append({"le": "+Inf", "count": cumulative + counts[-1]})
        return {
            "count": count,
            "sum_seconds": round(total, 9),
            "mean_ms": round(1000.0 * total / count, 3) if count else 0.0,
            "p50_ms": round(1000.0 * p50, 3),
            "p95_ms": round(1000.0 * p95, 3),
            "p99_ms": round(1000.0 * p99, 3),
            "max_ms": round(1000.0 * maximum, 3),
            "buckets": buckets,
        }
