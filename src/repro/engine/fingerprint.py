"""Stable fingerprints for ontologies and queries.

The plan cache of :class:`repro.engine.QueryEngine` is keyed by
``(ontology fingerprint, query fingerprint)``: two syntactically identical
objects — even if parsed from text twice, or constructed with atoms in a
different order — must map to the same key.  Fingerprints are SHA-256
digests of a canonical text serialization: atoms render variables as
``?name`` and constants via ``repr``, atom sets are sorted, and TGDs render
body and head the same way.
"""

from __future__ import annotations

import hashlib

from repro.cq.atoms import Atom, is_variable
from repro.cq.query import ConjunctiveQuery
from repro.tgds.ontology import Ontology
from repro.tgds.tgd import TGD


def _canonical_term(term: object) -> str:
    if is_variable(term):
        return f"?{term.name}"
    return f"{type(term).__name__}:{term!r}"


def canonical_atom(atom: Atom) -> str:
    """A canonical text rendering of one atom."""
    return f"{atom.relation}({','.join(_canonical_term(t) for t in atom.args)})"


def canonical_query(query: ConjunctiveQuery) -> str:
    """A canonical text rendering of a CQ (independent of atom order)."""
    head = ",".join(_canonical_term(v) for v in query.answer_variables)
    body = ";".join(sorted(canonical_atom(atom) for atom in query.atoms))
    return f"q({head}):-{body}"


def canonical_tgd(tgd: TGD) -> str:
    """A canonical text rendering of one TGD."""
    body = ";".join(sorted(canonical_atom(atom) for atom in tgd.body))
    head = ";".join(sorted(canonical_atom(atom) for atom in tgd.head))
    return f"{body}->{head}"


def canonical_ontology(ontology: Ontology) -> str:
    """A canonical text rendering of an ontology (independent of TGD order)."""
    return "&".join(sorted(canonical_tgd(tgd) for tgd in ontology))


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def query_fingerprint(query: ConjunctiveQuery) -> str:
    """A stable fingerprint of the query's structure (name excluded)."""
    return _digest(canonical_query(query))


def ontology_fingerprint(ontology: Ontology) -> str:
    """A stable fingerprint of the ontology's TGD set (name excluded)."""
    return _digest(canonical_ontology(ontology))
