"""Per-database materialization state shared across prepared queries.

A :class:`Materialization` owns every piece of data-dependent derived state
for one ``(ontology, database)`` pair:

* the *shared* query-directed chase — built once at the deepest truncation
  any prepared query has requested so far, and reused by all of them (a
  deeper truncation is sandwiched between the required one and the full
  chase, so complete-answer evaluation is unchanged), and
* one :class:`QueryState` per prepared query: the reduced block relations
  and per-block indexes of the CD∘Lin enumerator, ready for constant-delay
  enumeration.

Staleness detection hooks into the mutation counter maintained by
:class:`repro.data.Instance`: every effective ``add``/``discard`` bumps
``Database.version`` and the materialization compares that counter against
the snapshot taken at chase time before every use.  What happens on a
mismatch is no longer all-or-nothing: with ``incremental`` enabled (the
default) the materialization asks the database's mutation log for the net
delta since the snapshot and — when the delta is small enough relative to
``fallback_ratio`` — applies it in place through the provenance-tracking
delta chase (:class:`repro.incremental.ChaseMaintainer`) and the per-query
reduction maintenance (:meth:`CDLinEnumerator.maintain`), leaving every
untouched block index alive.  Deltas that are too large, unreconstructable
(log trimmed), or that blow the chase budget fall back to the old behaviour:
drop everything and rebuild (``chase_rebuilds`` counts those full builds,
``chase_increments`` the in-place maintenance passes).

Not thread-safe on its own: :class:`repro.engine.QueryEngine` serializes all
calls through its lock and only the read-only enumeration phase runs outside
it.
"""

from __future__ import annotations

import math
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Iterator

from repro.data.instance import Database
from repro.data.terms import is_null
from repro.chase.query_directed import QueryDirectedChase, query_directed_chase
from repro.chase.standard import ChaseNotTerminating
from repro.cq.homomorphism import evaluate
from repro.enumeration.cdlin import CDLinEnumerator
from repro.engine.cache import LRUCache
from repro.engine.plan import PreparedQuery
from repro.incremental.provenance import ChaseMaintainer
from repro.obs.trace import NULL_SPAN, current_trace, span, traced_answers
from repro.parallel.runtime import sharded_semijoins
from repro.planner.kernels import semijoin_planning
from repro.tgds.ontology import Ontology


class MaterializedAnswers:
    """A pre-materialised answer set behind the enumerator protocol.

    Fallback for non-strict plans outside the acyclic ∧ free-connex class:
    no constant-delay guarantee, but cursors and batches work uniformly.
    Answers are stored *sorted* so cursor and batch output is deterministic
    across runs and processes (a plain ``frozenset`` iterates in hash order,
    which varies under ``PYTHONHASHSEED``).
    """

    __slots__ = ("_answers", "_tracing")

    def __init__(self, answers: set[tuple], tracing: bool | None = None) -> None:
        self._answers = tuple(sorted(set(answers), key=repr))
        self._tracing = tracing

    def is_empty(self) -> bool:
        return not self._answers

    def enumerate(self) -> Iterator[tuple]:
        if self._tracing is not False and current_trace() is not None:
            return traced_answers(iter(self._answers), materialized=True)
        return iter(self._answers)


@dataclass(eq=False)
class QueryState:
    """The data-dependent state of one prepared query over one database."""

    prepared: PreparedQuery
    chase: QueryDirectedChase
    enumerator: CDLinEnumerator | MaterializedAnswers

    def answers(self) -> set[tuple]:
        """Materialise the complete answer set (enumeration, no side effects)."""
        return set(self.enumerator.enumerate())


def validate_fallback_ratio(ratio: float) -> float:
    """Reject NaN/∞/negative fallback ratios with one clear error.

    ``0.0`` is valid and means "always rebuild" — NaN must never reach the
    budget comparison (every NaN comparison is False, which would silently
    disable both the increment and the fallback accounting).
    """
    if (
        not isinstance(ratio, (int, float))
        or isinstance(ratio, bool)
        or not math.isfinite(ratio)
        or ratio < 0.0
    ):
        raise ValueError(
            "fallback_ratio must be a finite number >= 0 "
            f"(0.0 means always rebuild), got {ratio!r}"
        )
    return float(ratio)


class Materialization:
    """Shared chase plus per-query reduced state for one database.

    ``state_cache_size`` bounds the per-query states (an LRU mirroring the
    engine's plan cache) so a long-lived engine serving many distinct
    queries does not accumulate reduced relations without limit.

    ``incremental`` enables in-place maintenance under database mutations;
    ``fallback_ratio`` is the delta-size threshold (as a fraction of the
    database) above which a full rebuild is cheaper than maintenance —
    ``0.0`` disables maintenance entirely (every mutation rebuilds), and
    negative or non-finite ratios are rejected at construction.
    ``codegen`` selects generated inner loops for the chase and the
    enumerators built here (``None`` defers to the process default at each
    construction, so a scoped ``use_codegen`` still applies).  ``tracing``
    is the span tri-state forwarded to the enumerators; ``False``
    additionally skips the chase/revalidate spans recorded here.

    ``planner`` is the cost-based plan-choice tri-state (``None`` follows
    the ``REPRO_NO_PLANNER`` process default at each decision).  With it
    on, :meth:`state_for` picks the cheapest candidate decomposition from
    the columnar statistics of the chased instance, semi-joins choose
    their kernel per edge, and the *effective* fallback threshold is
    auto-tuned from the observed increment/fallback history
    (:attr:`fallback_history`): an over-budget fallback raises it (capped
    at 0.5 — rebuilds were being forced on deltas maintenance could
    absorb), successful increments decay it back towards the configured
    base.  With the planner off, the configured ratio applies unchanged.
    """

    #: Auto-tune bounds: the effective ratio never exceeds the cap, growth
    #: on an over-budget fallback and decay per successful increment.
    TUNE_CAP = 0.5
    TUNE_GROWTH = 1.5
    TUNE_DECAY = 0.9

    def __init__(
        self,
        ontology: Ontology,
        database: Database,
        state_cache_size: int = 64,
        incremental: bool = True,
        fallback_ratio: float = 0.1,
        codegen: bool | None = None,
        tracing: bool | None = None,
        workers: int | None = None,
        planner: bool | None = None,
    ) -> None:
        self.ontology = ontology
        self.database = database
        self.incremental = incremental
        self.fallback_ratio = validate_fallback_ratio(fallback_ratio)
        self.codegen = codegen
        self.tracing = tracing
        self.planner = planner
        # Recent revalidation outcomes (True = in-place increment, False =
        # over-budget fallback) — the history the auto-tuner reads.
        self.fallback_history: deque[bool] = deque(maxlen=32)
        self._tuned_ratio: float | None = None
        # ``None`` follows the REPRO_WORKERS process default at each pool
        # decision; values > 1 enable the process-parallel chase (when
        # ``incremental`` is off — provenance capture is worker-side-blind)
        # and the parallel reduce/batch paths (always).
        self.workers = workers
        self.chase: QueryDirectedChase | None = None
        self._maintainer: ChaseMaintainer | None = None
        # The persistent worker pool of the current chase epoch: forked by
        # the parallel chase (replicas kept in sync by the boundary
        # exchange) or on demand post-chase (fork snapshots the chased
        # instance).  Closed whenever the chased instance changes — any
        # revalidation, invalidation or deepening re-fork.
        self._pool = None
        self._states: LRUCache[QueryState] = LRUCache(state_cache_size)
        self.chase_builds = 0
        self.chase_increments = 0
        self.incremental_fallbacks = 0
        self.state_builds = 0
        self.invalidations = 0
        self.parallel_chases = 0
        self.parallel_fallbacks = 0
        self.planner_choices = 0
        self.planner_candidates = 0
        self.planner_estimated_rows = 0
        self.planner_actual_rows = 0

    @property
    def chase_rebuilds(self) -> int:
        """Full chase (re)builds — the counter the update SLO watches."""
        return self.chase_builds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Materialization({len(self.database)} db facts, "
            f"{len(self._states)} query states, chased={self.chase is not None})"
        )

    @staticmethod
    def _fallback_answers(prepared: PreparedQuery, chase: QueryDirectedChase) -> set[tuple]:
        """Certain answers by generic homomorphism search (Lemma 3.2).

        Used for non-strict plans outside the CD∘Lin class: evaluate the
        query over the chase and keep the null-free tuples.
        """
        return {
            answer
            for answer in evaluate(prepared.omq.query, chase.instance)
            if not any(is_null(value) for value in answer)
        }

    def revalidate(self) -> None:
        """Re-sync derived state with the database if it mutated.

        Tries incremental maintenance first (delta chase + per-state
        reduction maintenance); falls back to dropping everything when the
        delta is unavailable, too large, or blows the chase budget.
        """
        if self.chase is None or self.chase.is_current():
            return
        # Any mutation stales the worker replicas along with the chase.
        self._close_pool()
        with self._span("revalidate") as sp:
            incremental = self._apply_incremental()
            if sp is not None:
                sp.set("incremental", incremental)
            if incremental:
                return
            self.chase = None
            self._maintainer = None
            self._states.clear()
            self.invalidations += 1

    def _span(self, name: str, **attributes):
        """A span on the ambient trace — skipped entirely when hard-off."""
        if self.tracing is False:
            return NULL_SPAN
        return span(name, **attributes)

    def _planner_enabled(self) -> bool:
        """The resolved planner flag (``None`` → process default)."""
        from repro.config import planner_enabled

        return planner_enabled() if self.planner is None else bool(self.planner)

    def effective_fallback_ratio(self) -> float:
        """The fallback threshold actually applied to the next delta.

        The configured :attr:`fallback_ratio` unless the planner has tuned
        it from the increment/fallback history; ``0.0`` (always rebuild)
        is never tuned away from — it is an explicit contract, not a
        starting point.
        """
        if self.fallback_ratio <= 0.0 or not self._planner_enabled():
            return self.fallback_ratio
        if self._tuned_ratio is None:
            return self.fallback_ratio
        return self._tuned_ratio

    def _record_over_budget(self) -> None:
        """An over-budget fallback: grow the tuned threshold (planner only)."""
        self.fallback_history.append(False)
        if self.fallback_ratio <= 0.0 or not self._planner_enabled():
            return
        current = self._tuned_ratio if self._tuned_ratio is not None else self.fallback_ratio
        self._tuned_ratio = min(self.TUNE_CAP, current * self.TUNE_GROWTH)

    def _record_increment(self) -> None:
        """A successful increment: decay the tuned threshold towards base."""
        self.fallback_history.append(True)
        if self._tuned_ratio is None:
            return
        decayed = self._tuned_ratio * self.TUNE_DECAY
        self._tuned_ratio = None if decayed <= self.fallback_ratio else decayed

    def _choose_plan(self, prepared: PreparedQuery, chase: QueryDirectedChase):
        """Cost the candidate decompositions against the chased instance.

        Returns the :class:`repro.planner.PlanChoice`, or ``None`` when the
        plan has no candidates (outside the enumerable class).  Candidate 0
        is always the unplanned default and ties break towards it, so the
        choice can never be worse than not planning — by construction.
        """
        candidates = prepared.planner_candidates()
        if not candidates:
            return None
        with self._span("plan_choice") as sp:
            from repro.planner import choose_plan

            choice = choose_plan(candidates, chase.instance)
            if choice is None:
                return None
            self.planner_choices += 1
            self.planner_candidates += len(choice.candidates)
            self.planner_estimated_rows += choice.estimated_rows
            if sp is not None:
                sp.set("candidates", len(choice.candidates))
                sp.set("chosen", choice.chosen.index)
                sp.set("cost", round(choice.chosen.cost, 3))
                sp.set("estimated_rows", choice.estimated_rows)
        return choice

    def _apply_incremental(self) -> bool:
        """Apply the pending database delta in place; False means rebuild.

        Every False on a maintainable materialization counts as an
        ``incremental_fallbacks`` tick: the delta was unreconstructable
        (log trimmed), too large for the effective fallback threshold
        (``fallback_ratio == 0.0`` forces this branch unconditionally —
        the documented "always rebuild" contract), or blew the chase
        budget mid-application.
        """
        if not self.incremental or self._maintainer is None or self.chase is None:
            return False
        ratio = self.effective_fallback_ratio()
        if ratio <= 0.0:
            self.incremental_fallbacks += 1
            return False
        delta = self.database.changes_since(self.chase.database_version)
        if delta is None:
            self.incremental_fallbacks += 1
            return False
        budget = max(1, int(ratio * len(self.database)))
        if len(delta) > budget:
            self.incremental_fallbacks += 1
            self._record_over_budget()
            return False
        try:
            chase_delta = self._maintainer.apply_delta(delta)
        except ChaseNotTerminating:
            # The instance may be half-updated: a full rebuild is mandatory.
            self.incremental_fallbacks += 1
            return False
        self.chase.database_version = self.database.version
        self.chase_increments += 1
        self._record_increment()
        touched = chase_delta.relations()
        if touched:
            for state in self._states.values():
                self._refresh_state(state, touched)
        return True

    def _refresh_state(self, state: QueryState, touched: set[str]) -> None:
        """Propagate a chase-level delta into one query's enumeration state."""
        enumerator = state.enumerator
        if isinstance(enumerator, CDLinEnumerator):
            assert self.chase is not None
            enumerator.maintain(self.chase.instance, touched)
        else:
            query_relations = {
                atom.relation for atom in state.prepared.omq.query.atoms
            }
            if query_relations & touched:
                assert self.chase is not None
                state.enumerator = MaterializedAnswers(
                    self._fallback_answers(state.prepared, self.chase),
                    tracing=self.tracing,
                )

    def invalidate(self) -> None:
        """Unconditionally drop the chase and every query state."""
        if self.chase is not None or self._states:
            self.invalidations += 1
        self._close_pool()
        self.chase = None
        self._maintainer = None
        self._states.clear()

    # -- process-parallel execution ----------------------------------------

    def _worker_count(self) -> int:
        """The effective worker count (``None`` → process default)."""
        from repro.config import default_workers

        return default_workers() if self.workers is None else max(1, self.workers)

    def _parallel_available(self) -> bool:
        if self._worker_count() < 2:
            return False
        from repro.parallel import supported

        return supported()

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def close(self) -> None:
        """Release process-level resources (the worker pool), keep state.

        Safe to call at any time: the next parallel operation simply forks
        a fresh pool from the current chase.  ``QueryEngine.shutdown`` calls
        this for every cached materialization.
        """
        self._close_pool()

    def ensure_pool(self):
        """The worker pool of the current chase epoch, forked on demand.

        Returns ``None`` when parallelism is off/unavailable or there is no
        chase yet.  A pool forked here snapshots the chased instance via
        fork copy-on-write (instance constants are force-interned first, so
        dense ids agree across the processes); a pool inherited from the
        parallel chase is reused as-is — its replicas received every delta.
        """
        if not self._parallel_available() or self.chase is None:
            return None
        pool = self._pool
        if pool is not None and pool.alive:
            return pool
        self._pool = None
        from repro.parallel import ParallelExecutionError, WorkerBootstrap, WorkerPool
        from repro.parallel.chase import _pre_intern_instance

        try:
            _pre_intern_instance(self.chase.instance)
            self._pool = WorkerPool(
                self._worker_count(),
                WorkerBootstrap(self.ontology, self.chase.instance, self.codegen),
            )
        except (ParallelExecutionError, OSError):
            # OSError: the fork itself failed (process/fd/memory limits) —
            # degrade to the sequential path like any other pool failure.
            self.parallel_fallbacks += 1
            return None
        return self._pool

    def chase_for(self, prepared: PreparedQuery) -> QueryDirectedChase:
        """The shared chase, (re)built if stale or not deep enough."""
        self.revalidate()
        if self.chase is None or self.chase.null_depth_bound < prepared.null_depth:
            # Deepen monotonically so a later shallow query never re-chases.
            depth = prepared.null_depth
            if self.chase is not None:
                depth = max(depth, self.chase.null_depth_bound)
            # A deeper (or first) chase starts a new epoch: the replicas of
            # any existing pool no longer match the instance we will build.
            self._close_pool()
            with self._span("chase", null_depth=depth) as sp:
                recorder = (
                    ChaseMaintainer(self.database, self.ontology, max_null_depth=depth)
                    if self.incremental
                    else None
                )
                parallel = False
                boundary = 0
                # The parallel chase cannot feed a provenance recorder
                # (suppression witnesses stay worker-side), so it only runs
                # for non-incremental materializations.
                if recorder is None and self._parallel_available():
                    from repro.parallel import ParallelExecutionError, parallel_chase

                    snapshot = self.database.version
                    try:
                        run = parallel_chase(
                            self.database,
                            self.ontology,
                            self._worker_count(),
                            max_null_depth=depth,
                            max_facts=5_000_000,
                            codegen=self.codegen,
                        )
                    except (ParallelExecutionError, OSError):
                        # OSError covers a failed fork under resource
                        # pressure; the sequential chase below still runs.
                        self.parallel_fallbacks += 1
                    else:
                        self.chase = QueryDirectedChase(
                            database=self.database,
                            ontology=self.ontology,
                            query=prepared.omq.query,
                            result=run.result,
                            null_depth_bound=depth,
                            database_version=snapshot,
                        )
                        self._pool = run.pool
                        self.parallel_chases += 1
                        boundary = run.boundary_facts
                        parallel = True
                if not parallel:
                    self.chase = query_directed_chase(
                        self.database,
                        self.ontology,
                        prepared.omq.query,
                        null_depth=depth,
                        reuse=self.chase,
                        recorder=recorder,
                        codegen=self.codegen,
                    )
                    if recorder is not None:
                        recorder.attach(self.chase.result)
                self._maintainer = recorder if not parallel else None
                self.chase_builds += 1
                if sp is not None:
                    sp.set("db_facts", len(self.database))
                    sp.set("chase_facts", len(self.chase.instance))
                    sp.set("parallel", parallel)
                    if parallel:
                        sp.set("workers", self._worker_count())
                        sp.set("boundary_facts", boundary)
        return self.chase

    def state_for(self, prepared: PreparedQuery) -> QueryState:
        """The reduced enumeration state for ``prepared``, built on demand."""
        self.revalidate()
        state = self._states.get(prepared.query_fingerprint)
        if state is None:
            chase = self.chase_for(prepared)
            if prepared.supports_enumeration:
                decomposition = prepared.decomposition
                choice = None
                if self._planner_enabled():
                    choice = self._choose_plan(prepared, chase)
                    if choice is not None:
                        decomposition = choice.decomposition
                # With a live pool, the component projections fan out across
                # the workers and large semi-joins inside the reduce run
                # sharded (the ambient-pool hook in the semijoin kernel).
                pool = self.ensure_pool()
                projections = None
                if pool is not None and decomposition is not None:
                    from repro.parallel import parallel_projections

                    projections = parallel_projections(
                        pool, decomposition, keep_nulls=False
                    )
                reduce_scope = (
                    sharded_semijoins(pool) if pool is not None else nullcontext()
                )
                kernel_scope = semijoin_planning() if choice is not None else nullcontext()
                with reduce_scope, kernel_scope:
                    enumerator: CDLinEnumerator | MaterializedAnswers = CDLinEnumerator(
                        prepared.omq.query,
                        chase.instance,
                        keep_nulls=False,
                        decomposition=decomposition,
                        codegen=self.codegen,
                        # The plan's own closure cache: compiled walks are
                        # shared across databases and dropped on plan-cache
                        # eviction (distinct chosen decompositions compile
                        # distinct slot plans, so the cache keys stay apart
                        # automatically).
                        codegen_cache=prepared.codegen,
                        tracing=self.tracing,
                        projections=projections,
                    )
                if choice is not None:
                    # Close the loop: the actual reduced block rows are the
                    # estimate's ground truth, recorded for EngineStats and
                    # ``repro explain``.
                    choice.actual_rows = enumerator.reduced.size()
                    self.planner_actual_rows += choice.actual_rows
                    prepared.last_plan_choice = choice
            else:
                with self._span("reduce", materialized=True):
                    enumerator = MaterializedAnswers(
                        self._fallback_answers(prepared, chase),
                        tracing=self.tracing,
                    )
            state = QueryState(prepared=prepared, chase=chase, enumerator=enumerator)
            self._states.put(prepared.query_fingerprint, state)
            self.state_builds += 1
        return state
