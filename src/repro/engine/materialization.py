"""Per-database materialization state shared across prepared queries.

A :class:`Materialization` owns every piece of data-dependent derived state
for one ``(ontology, database)`` pair:

* the *shared* query-directed chase — built once at the deepest truncation
  any prepared query has requested so far, and reused by all of them (a
  deeper truncation is sandwiched between the required one and the full
  chase, so complete-answer evaluation is unchanged), and
* one :class:`QueryState` per prepared query: the reduced block relations
  and per-block indexes of the CD∘Lin enumerator, ready for constant-delay
  enumeration.

Invalidation hooks into the mutation counter maintained by the positional
index machinery of :class:`repro.data.Instance`: every effective
``add``/``discard`` bumps ``Database.version``, and the materialization
compares that counter against the snapshot taken at chase time before every
use, dropping the chase and all query states when the database has moved on.

Not thread-safe on its own: :class:`repro.engine.QueryEngine` serializes all
calls through its lock and only the read-only enumeration phase runs outside
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.data.instance import Database
from repro.data.terms import is_null
from repro.chase.query_directed import QueryDirectedChase, query_directed_chase
from repro.cq.homomorphism import evaluate
from repro.enumeration.cdlin import CDLinEnumerator
from repro.engine.cache import LRUCache
from repro.engine.plan import PreparedQuery
from repro.tgds.ontology import Ontology


class MaterializedAnswers:
    """A pre-materialised answer set behind the enumerator protocol.

    Fallback for non-strict plans outside the acyclic ∧ free-connex class:
    no constant-delay guarantee, but cursors and batches work uniformly.
    """

    __slots__ = ("_answers",)

    def __init__(self, answers: set[tuple]) -> None:
        self._answers = frozenset(answers)

    def is_empty(self) -> bool:
        return not self._answers

    def enumerate(self) -> Iterator[tuple]:
        return iter(self._answers)


@dataclass(eq=False)
class QueryState:
    """The data-dependent state of one prepared query over one database."""

    prepared: PreparedQuery
    chase: QueryDirectedChase
    enumerator: CDLinEnumerator | MaterializedAnswers

    def answers(self) -> set[tuple]:
        """Materialise the complete answer set (enumeration, no side effects)."""
        return set(self.enumerator.enumerate())


class Materialization:
    """Shared chase plus per-query reduced state for one database.

    ``state_cache_size`` bounds the per-query states (an LRU mirroring the
    engine's plan cache) so a long-lived engine serving many distinct
    queries does not accumulate reduced relations without limit.
    """

    def __init__(
        self, ontology: Ontology, database: Database, state_cache_size: int = 64
    ) -> None:
        self.ontology = ontology
        self.database = database
        self.chase: QueryDirectedChase | None = None
        self._states: LRUCache[QueryState] = LRUCache(state_cache_size)
        self.chase_builds = 0
        self.state_builds = 0
        self.invalidations = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Materialization({len(self.database)} db facts, "
            f"{len(self._states)} query states, chased={self.chase is not None})"
        )

    @staticmethod
    def _fallback_answers(prepared: PreparedQuery, chase: QueryDirectedChase) -> set[tuple]:
        """Certain answers by generic homomorphism search (Lemma 3.2).

        Used for non-strict plans outside the CD∘Lin class: evaluate the
        query over the chase and keep the null-free tuples.
        """
        return {
            answer
            for answer in evaluate(prepared.omq.query, chase.instance)
            if not any(is_null(value) for value in answer)
        }

    def revalidate(self) -> None:
        """Drop all derived state if the database mutated since the chase."""
        if self.chase is not None and not self.chase.is_current():
            self.chase = None
            self._states.clear()
            self.invalidations += 1

    def invalidate(self) -> None:
        """Unconditionally drop the chase and every query state."""
        if self.chase is not None or self._states:
            self.invalidations += 1
        self.chase = None
        self._states.clear()

    def chase_for(self, prepared: PreparedQuery) -> QueryDirectedChase:
        """The shared chase, (re)built if stale or not deep enough."""
        self.revalidate()
        if self.chase is None or self.chase.null_depth_bound < prepared.null_depth:
            # Deepen monotonically so a later shallow query never re-chases.
            depth = prepared.null_depth
            if self.chase is not None:
                depth = max(depth, self.chase.null_depth_bound)
            self.chase = query_directed_chase(
                self.database,
                self.ontology,
                prepared.omq.query,
                null_depth=depth,
                reuse=self.chase,
            )
            self.chase_builds += 1
        return self.chase

    def state_for(self, prepared: PreparedQuery) -> QueryState:
        """The reduced enumeration state for ``prepared``, built on demand."""
        self.revalidate()
        state = self._states.get(prepared.query_fingerprint)
        if state is None:
            chase = self.chase_for(prepared)
            if prepared.supports_enumeration:
                enumerator: CDLinEnumerator | MaterializedAnswers = CDLinEnumerator(
                    prepared.omq.query,
                    chase.instance,
                    keep_nulls=False,
                    decomposition=prepared.decomposition,
                )
            else:
                enumerator = MaterializedAnswers(
                    self._fallback_answers(prepared, chase)
                )
            state = QueryState(prepared=prepared, chase=chase, enumerator=enumerator)
            self._states.put(prepared.query_fingerprint, state)
            self.state_builds += 1
        return state
