"""The prepared-query engine: plan caching, shared materialization, batching.

``QueryEngine`` is the serving-layer façade over the paper's
preprocessing/enumeration split.  It is bound to one ontology and amortizes
both halves of the pipeline:

* the *data-independent* half (normalization, acyclicity verdicts, join
  tree, free-connex decomposition, chase program) is compiled once per query
  into a :class:`~repro.engine.plan.PreparedQuery` and kept in an LRU plan
  cache keyed by ``(ontology, query)`` fingerprints;
* the *data-dependent* half (query-directed chase, reduced block relations)
  lives in one :class:`~repro.engine.materialization.Materialization` per
  database, shared by every prepared query and invalidated automatically
  when the database mutates.

Entry points::

    engine = QueryEngine(ontology, database)
    engine.execute(query)                  # -> set of answer tuples
    engine.execute_batch([q1, q2, ...])    # -> list of answer sets
    with engine.open(query) as cursor:     # restartable constant-delay iterator
        for answer in cursor: ...

All preprocessing runs under the engine lock; the enumeration phase is
read-only and runs outside it, which is what makes ``execute_batch``'s
thread pool safe.
"""

from __future__ import annotations

import contextvars
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields
from typing import Callable, Iterable, Iterator

from repro.config import ExecutionOptions, resolve_option, tracing_enabled
from repro.obs.trace import NULL_SPAN, current_trace, span, start_trace
from repro.data.instance import Database
from repro.data.interning import TERMS
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery, QueryError
from repro.core.omq import OMQ
from repro.engine.cache import LRUCache
from repro.engine.codegen import CODEGEN_STATS
from repro.engine.fingerprint import ontology_fingerprint, query_fingerprint
from repro.engine.materialization import (
    Materialization,
    QueryState,
    validate_fallback_ratio,
)
from repro.engine.plan import PreparedQuery, prepare_query
from repro.engine.stats import EngineCounters
from repro.tgds.ontology import Ontology

QueryLike = "str | ConjunctiveQuery | OMQ | PreparedQuery"

#: The single source of per-knob fallback values: the field defaults of
#: :class:`ExecutionOptions` itself.  ``QueryEngine.__init__`` resolves
#: against these instead of repeating literals, so the documented defaults
#: cannot drift between the dataclass and the engine.
_OPTION_DEFAULTS = ExecutionOptions()


@dataclass(frozen=True)
class EngineStats:
    """A point-in-time snapshot of the engine's counters.

    ``chase_builds`` counts full chase (re)builds; ``chase_increments``
    counts in-place incremental maintenance passes (delta chase + reduction
    maintenance); ``incremental_fallbacks`` counts mutations a maintainable
    materialization could not absorb — delta over the fallback threshold,
    delta unreconstructable from the trimmed log, or a blown chase budget —
    and that forced a rebuild instead.  ``interned_terms`` is the size of
    the process-wide term dictionary backing the interned fact store (0 is
    possible only under ``REPRO_NO_INTERN`` before anything interned).
    ``plans_compiled`` / ``codegen_cache_hits`` read the process-wide
    :data:`~repro.engine.codegen.CODEGEN_STATS` the same way: generated
    functions compiled, and lookups served from a codegen cache without
    compiling.

    The ``parallel_*`` / shard counters cover the process-parallel paths of
    :mod:`repro.parallel`: ``parallel_chases`` counts chases that ran
    sharded across worker processes (per materialization),
    ``parallel_tasks`` every task shipped to a worker, ``parallel_rounds``
    the chase rounds driven through the pool, ``boundary_facts`` the facts
    exchanged between rounds, ``shard_segments`` the shared-memory segments
    created, and ``worker_crashes`` the worker deaths that forced a
    sequential fallback (the process-wide readings of
    :data:`repro.parallel.PARALLEL_STATS`).

    The ``planner_*`` counters cover the cost-based plan choice:
    ``planner_choices`` counts state builds that went through it,
    ``planner_candidates`` the candidate decompositions costed across
    those choices, and ``planner_estimated_rows`` /
    ``planner_actual_rows`` the predicted vs observed reduced block rows
    — the running calibration of the cardinality model.
    """

    plans_cached: int
    plan_hits: int
    plan_misses: int
    plan_evictions: int
    chase_builds: int
    chase_increments: int
    incremental_fallbacks: int
    state_builds: int
    invalidations: int
    executions: int
    cursors_opened: int
    interned_terms: int = 0
    cursors_open: int = 0
    plans_compiled: int = 0
    codegen_cache_hits: int = 0
    parallel_chases: int = 0
    parallel_tasks: int = 0
    parallel_rounds: int = 0
    boundary_facts: int = 0
    shard_segments: int = 0
    worker_crashes: int = 0
    planner_choices: int = 0
    planner_candidates: int = 0
    planner_estimated_rows: int = 0
    planner_actual_rows: int = 0

    def as_dict(self) -> dict[str, int]:
        """The snapshot as a plain dict (the ``/metrics`` wire shape).

        Derived from the dataclass fields so the wire schema can never
        drift from the snapshot definition: every field is always present
        (``plans_compiled`` / ``codegen_cache_hits`` read 0 when codegen is
        disabled rather than disappearing), which is what keeps scraper
        configurations stable.
        """
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def zero(cls) -> "EngineStats":
        """An all-zero snapshot (the schema seed for metric aggregation)."""
        return cls(**{field.name: 0 for field in fields(cls)})


class AnswerCursor:
    """A restartable constant-delay iterator over one query's answers.

    The cursor holds the prepared plan and the engine reference;
    :meth:`restart` re-acquires the (cached) materialized state, so a
    restart after a database mutation transparently re-preprocesses while a
    restart on unchanged data costs only the state lookup.

    ``on_close`` hooks fire exactly once, when the cursor transitions to
    closed — the engine registers one to maintain its open-cursor gauge,
    and serving layers chain their own (deregistering the cursor from a
    session table, releasing an admission slot) via :meth:`add_close_hook`.

    ``page_size`` is the cursor's default batch size: :meth:`fetchmany`
    with no argument fetches one page, so serving layers can size pages
    once at :meth:`QueryEngine.open` time instead of threading a count
    through every fetch call.
    """

    #: The page size used when neither ``open`` nor ``fetchmany`` gave one.
    DEFAULT_PAGE_SIZE = 100

    def __init__(
        self,
        engine: "QueryEngine",
        prepared: PreparedQuery,
        database: Database,
        on_close: Callable[["AnswerCursor"], None] | None = None,
        page_size: int | None = None,
    ):
        self._engine = engine
        self._prepared = prepared
        self._database = database
        self.page_size = (
            page_size if page_size and page_size > 0 else self.DEFAULT_PAGE_SIZE
        )
        self._iterator: Iterator[tuple] | None = None
        self._closed = False
        self._close_hooks: list[Callable[["AnswerCursor"], None]] = []
        if on_close is not None:
            self._close_hooks.append(on_close)
        self.restart()

    @property
    def prepared(self) -> PreparedQuery:
        return self._prepared

    @property
    def closed(self) -> bool:
        return self._closed

    def add_close_hook(self, hook: Callable[["AnswerCursor"], None]) -> None:
        """Register ``hook`` to run when the cursor closes (once, LIFO).

        Registering on an already-closed cursor runs the hook immediately —
        the caller's cleanup must not be lost to that race.
        """
        if self._closed:
            hook(self)
        else:
            self._close_hooks.append(hook)

    def restart(self) -> "AnswerCursor":
        """Rewind to the first answer (revalidating the materialization)."""
        if self._closed:
            raise RuntimeError("cannot restart a closed cursor")
        state = self._engine._materialized_state(self._prepared, self._database)
        self._iterator = state.enumerator.enumerate()
        return self

    def __iter__(self) -> "AnswerCursor":
        return self

    def __next__(self) -> tuple:
        if self._closed or self._iterator is None:
            raise StopIteration
        return next(self._iterator)

    def fetchmany(self, size: int | None = None) -> list[tuple]:
        """Up to ``size`` further answers (constant delay per answer).

        With no ``size`` the cursor's :attr:`page_size` applies — the hint
        given to :meth:`QueryEngine.open`.
        """
        if size is None:
            size = self.page_size
        batch: list[tuple] = []
        for answer in self:
            batch.append(answer)
            if len(batch) >= size:
                break
        return batch

    def fetchall(self) -> list[tuple]:
        """Every remaining answer."""
        return list(self)

    def close(self) -> None:
        """Close the cursor (idempotent) and fire the close hooks once."""
        if self._closed:
            return
        self._closed = True
        self._iterator = None
        hooks, self._close_hooks = self._close_hooks, []
        for hook in reversed(hooks):
            hook(self)

    def __enter__(self) -> "AnswerCursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class QueryEngine:
    """Prepared-query execution over one ontology and its databases.

    Tuning knobs are carried by one :class:`~repro.config.ExecutionOptions`
    object; the individual keyword arguments remain as per-knob overrides
    (the documented precedence: explicit argument > ``options`` > process
    default) and for source compatibility with pre-``options`` callers —
    see the migration table in ``docs/engine.md``.  ``options.interning``
    is not consumed here: interning is fixed per :class:`Instance` at
    construction time, so the serving layers apply it when they create
    databases (the engine works with whatever representation its databases
    already have).
    """

    def __init__(
        self,
        ontology: Ontology,
        database: Database | None = None,
        *,
        options: ExecutionOptions | None = None,
        plan_cache_size: int | None = None,
        materialization_cache_size: int = 8,
        strict: bool | None = None,
        incremental: bool | None = None,
        incremental_fallback_ratio: float | None = None,
        codegen: bool | None = None,
        plan_cache: LRUCache[PreparedQuery] | None = None,
        tracing: bool | None = None,
        workers: int | None = None,
        planner: bool | None = None,
    ) -> None:
        resolved = options if options is not None else ExecutionOptions()
        self.options = resolved
        self.ontology = ontology
        self.ontology_fingerprint = ontology_fingerprint(ontology)
        self.strict = resolve_option(strict, resolved.strict, _OPTION_DEFAULTS.strict)
        self.incremental = resolve_option(
            incremental, resolved.incremental, _OPTION_DEFAULTS.incremental
        )
        # Validated here too: an explicit kwarg bypasses the
        # ``ExecutionOptions`` post-init check, and a NaN ratio must fail
        # at construction, not at the first (lazy) materialization build.
        self.incremental_fallback_ratio = validate_fallback_ratio(
            resolve_option(
                incremental_fallback_ratio,
                resolved.incremental_fallback_ratio,
                _OPTION_DEFAULTS.incremental_fallback_ratio,
            )
        )
        # May stay None: materializations then consult the process default
        # (``REPRO_NO_CODEGEN`` / ``set_codegen``) at construction time.
        self.codegen = resolve_option(codegen, resolved.codegen, _OPTION_DEFAULTS.codegen)
        # Tri-state kept as-is: ``None`` means "join ambient traces, and
        # initiate one only if the REPRO_TRACE process default says so" —
        # resolved per execution, not frozen here, so a scoped
        # ``use_tracing`` applies to an already-built engine.
        self.tracing = resolve_option(tracing, resolved.tracing, _OPTION_DEFAULTS.tracing)
        # ``None`` follows the REPRO_WORKERS process default dynamically
        # (resolved at each pool decision); >1 enables the process-parallel
        # chase/reduce/batch paths of :mod:`repro.parallel`.
        self.workers = resolve_option(workers, resolved.workers, _OPTION_DEFAULTS.workers)
        # Same tri-state shape as codegen: ``None`` defers to the
        # REPRO_NO_PLANNER / ``set_planner`` process default at each plan
        # decision, so a scoped ``use_planner`` applies to a live engine.
        self.planner = resolve_option(planner, resolved.planner, _OPTION_DEFAULTS.planner)
        plan_cache_size = resolve_option(
            plan_cache_size, resolved.plan_cache_size, _OPTION_DEFAULTS.plan_cache_size
        )
        self._default_database = database
        # ``plan_cache`` may be an externally owned cache shared by several
        # engines: plan keys carry the ontology fingerprint, so engines over
        # different ontologies can pool one cache without collisions (the
        # multi-tenant server shares plans across tenants this way).
        self._plans: LRUCache[PreparedQuery] = (
            plan_cache if plan_cache is not None else LRUCache(plan_cache_size)
        )
        # Bounded LRU over databases: evicting a live database only costs a
        # rebuild on its next use, so the engine never pins state (or the
        # databases themselves) without limit.
        self._materializations: LRUCache[Materialization] = LRUCache(
            materialization_cache_size
        )
        self._plan_cache_size = plan_cache_size
        self._lock = threading.RLock()
        self._counters = EngineCounters()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryEngine({self.ontology.name}, {len(self._plans)} cached plans, "
            f"{len(self._materializations)} materializations)"
        )

    # -- construction from parsed artifacts --------------------------------

    @classmethod
    def from_scenario(cls, scenario, *, warm: bool = True, **kwargs) -> "QueryEngine":
        """An engine over a :class:`repro.io.Scenario`'s ontology and database.

        With ``warm`` (the default) every query the scenario declares is
        prepared and materialized eagerly, so the first ``execute`` pays
        nothing but the enumeration phase.
        """
        engine = cls(scenario.ontology, scenario.database, **kwargs)
        if warm and scenario.queries:
            engine.warm(scenario.queries)
        return engine

    @classmethod
    def from_files(
        cls,
        rules,
        data=(),
        queries=(),
        *,
        warm: bool = True,
        **kwargs,
    ) -> "QueryEngine":
        """An engine built straight from DLGP/CSV files on disk.

        ``rules``, ``data`` and ``queries`` follow
        :func:`repro.io.load_scenario` (paths or lists of paths); queries
        embedded in the rule files are warmed too.  Use ``load_scenario``
        directly when you also need the parsed query objects.
        """
        from repro.io import load_scenario

        return cls.from_scenario(
            load_scenario(rules=rules, data=data, queries=queries),
            warm=warm,
            **kwargs,
        )

    # -- plan compilation --------------------------------------------------

    def _coerce_query(self, query: QueryLike) -> ConjunctiveQuery:
        if isinstance(query, PreparedQuery):
            query = query.omq
        if isinstance(query, OMQ):
            if ontology_fingerprint(query.ontology) != self.ontology_fingerprint:
                raise QueryError(
                    "OMQ ontology differs from the engine's ontology; "
                    "use a separate engine per ontology"
                )
            return query.query
        if isinstance(query, str):
            with self._span("parse", query=query):
                return parse_query(query)
        if isinstance(query, ConjunctiveQuery):
            return query
        raise TypeError(f"cannot interpret {type(query).__name__} as a query")

    def prepare(self, query: QueryLike, name: str | None = None) -> PreparedQuery:
        """Compile (or fetch from the plan cache) the plan for ``query``."""
        cq = self._coerce_query(query)
        key = (self.ontology_fingerprint, query_fingerprint(cq))
        with self._span("plan", query=name or cq.name) as sp:
            with self._lock:
                plan = self._plans.get(key)
                cached = plan is not None
                if plan is None:
                    plan = prepare_query(
                        self.ontology,
                        cq,
                        strict=self.strict,
                        name=name or cq.name,
                    )
                    self._plans.put(key, plan)
            if sp is not None:
                sp.set("cached", cached)
                sp.set("free_connex", plan.is_free_connex_acyclic)
            return plan

    # -- materialization ---------------------------------------------------

    def _resolve_database(self, database: Database | None) -> Database:
        resolved = database if database is not None else self._default_database
        if resolved is None:
            raise ValueError(
                "no database: pass one to the call or to the engine constructor"
            )
        return resolved

    def _materialization(self, database: Database) -> Materialization:
        # Keyed by id(): safe because each entry holds a strong reference to
        # its database, so a live entry's id cannot be reused; the identity
        # check below covers id reuse after an eviction.
        materialization = self._materializations.get(id(database))
        if materialization is None or materialization.database is not database:
            materialization = Materialization(
                self.ontology,
                database,
                state_cache_size=self._plans.capacity,
                incremental=self.incremental,
                fallback_ratio=self.incremental_fallback_ratio,
                codegen=self.codegen,
                tracing=self.tracing,
                workers=self.workers,
                planner=self.planner,
            )
            self._materializations.put(id(database), materialization)
        return materialization

    def _materialized_state(
        self, prepared: PreparedQuery, database: Database
    ) -> QueryState:
        with self._lock:
            return self._materialization(database).state_for(prepared)

    def warm(self, queries: Iterable[QueryLike], database: Database | None = None) -> None:
        """Preprocess ``queries`` eagerly (plans + materialized states)."""
        resolved = self._resolve_database(database)
        for query in queries:
            self._materialized_state(self.prepare(query), resolved)

    def refresh(self, database: Database | None = None) -> None:
        """Eagerly re-sync materialized state with a mutated database.

        Normally staleness is discovered lazily by the next execution; a
        serving layer can instead call this right after committing a
        mutation batch (while still holding its own write gate), so the
        maintenance pass never runs concurrently with later mutations and
        read requests find the state already current.
        """
        resolved = self._resolve_database(database)
        with self._lock:
            self._materialization(resolved).revalidate()

    def invalidate(self, database: Database | None = None) -> None:
        """Drop materialized state (for one database, or all of them)."""
        with self._lock:
            if database is None:
                for materialization in self._materializations.values():
                    materialization.invalidate()
            else:
                materialization = self._materializations.get(id(database))
                if materialization is not None and materialization.database is database:
                    materialization.invalidate()

    def shutdown(self) -> None:
        """Terminate every worker pool; materialized state is kept.

        Only meaningful with ``workers >= 2`` — pools also die with the
        engine (finalizers) and at interpreter exit, but tests and
        long-running embedders can reclaim the processes deterministically.
        The engine remains fully usable; the next parallel operation forks
        fresh workers from the current chase.
        """
        with self._lock:
            for materialization in self._materializations.values():
                materialization.close()

    # -- tracing -----------------------------------------------------------

    def _span(self, name: str, **attributes):
        """A span on the ambient trace; the no-op singleton when hard-off."""
        if self.tracing is False:
            return NULL_SPAN
        return span(name, **attributes)

    def _trace_scope(self, name: str):
        """The tracing context wrapped around one execution entry point.

        ``tracing=False`` → the shared no-op (nothing is ever recorded);
        an ambient trace (the HTTP service or ``repro explain`` already
        started one) → a child span joining it; ``tracing=True`` or the
        ``REPRO_TRACE`` process default → a fresh root trace, recorded
        into the process ring buffer on exit.
        """
        if self.tracing is False:
            return NULL_SPAN
        if current_trace() is not None:
            return span(name)
        if self.tracing or tracing_enabled():
            return start_trace(name)
        return NULL_SPAN

    # -- execution ---------------------------------------------------------

    def _evaluate_state(self, state: QueryState) -> set[tuple]:
        """One counted enumeration of a materialized state.

        This is the function the ``execute_batch`` thread pool maps over
        its states, so the execution counter is bumped *from the workers* —
        the :class:`EngineCounters` lock is what keeps those concurrent
        increments exact (a bare ``+=`` here loses updates under load).
        """
        answers = state.answers()
        self._counters.bump("executions")
        return answers

    def execute(self, query: QueryLike, database: Database | None = None) -> set[tuple]:
        """All complete answers of ``query`` on the database, as a set."""
        with self._trace_scope("execute"):
            prepared = self.prepare(query)
            resolved = self._resolve_database(database)
            state = self._materialized_state(prepared, resolved)
            return self._evaluate_state(state)

    def execute_batch(
        self,
        queries: Iterable[QueryLike],
        database: Database | None = None,
        max_workers: int | None = None,
    ) -> list[set[tuple]]:
        """Evaluate many queries, amortizing preprocessing across the batch.

        ``queries`` may be any iterable (it is consumed once); the result
        list is aligned with the iteration order — ``results[i]`` is the
        answer set of the ``i``-th query yielded — regardless of how the
        worker pool interleaves the evaluations.

        Plans and materialized states are built sequentially under the
        engine lock (they mutate shared structures); the enumeration phase
        — read-only by construction — then fans out over a thread pool.
        ``max_workers=0`` or ``1`` forces the sequential worker loop (and
        skips the process fan-out below — an explicit request for a
        single worker wins over the engine's ``workers`` option).

        When the engine's ``workers`` option resolves above 1 (and the
        platform supports ``fork``), the batch instead fans out across the
        materialization's worker-process pool: enumerable queries are
        evaluated on the workers' chased replicas, non-enumerable ones
        locally, and any pool failure falls back to the thread path.  The
        answer sets are byte-identical either way.
        """
        with self._trace_scope("execute_batch"):
            resolved = self._resolve_database(database)
            plans = [self.prepare(query) for query in queries]
            if not plans:
                return []
            if max_workers is None or max_workers > 1:
                process_results = self._execute_batch_processes(plans, resolved)
                if process_results is not None:
                    return process_results
            states = [self._materialized_state(plan, resolved) for plan in plans]
            if max_workers is None:
                max_workers = min(len(states), os.cpu_count() or 1, 8)
            if max_workers <= 1:
                return [self._evaluate_state(state) for state in states]
            # ThreadPoolExecutor does not propagate contextvars, so inside a
            # trace each worker task gets its own copy of the calling context
            # (one Context object cannot be entered concurrently) — the
            # per-query enumerate spans then attach to this batch's trace.
            if self.tracing is not False and current_trace() is not None:
                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    futures = [
                        pool.submit(
                            contextvars.copy_context().run,
                            self._evaluate_state,
                            state,
                        )
                        for state in states
                    ]
                    return [future.result() for future in futures]
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(self._evaluate_state, states))

    def _effective_workers(self) -> int:
        """The resolved process-worker count (``None`` → process default)."""
        from repro.config import default_workers

        return default_workers() if self.workers is None else max(1, self.workers)

    def _execute_batch_processes(
        self, plans: list[PreparedQuery], database: Database
    ) -> list[set[tuple]] | None:
        """Fan a batch out across the materialization's worker processes.

        Returns ``None`` whenever the process path does not apply — workers
        resolve to 1, no ``fork``, the pool could not be (re)forked, or a
        worker failed mid-batch — and the caller runs the thread path
        instead.  Enumerable plans scatter round-robin to workers (each
        builds its enumerator against its chased replica and returns the
        decoded answer set); fallback plans evaluate locally.
        """
        if self._effective_workers() < 2:
            return None
        # Traced batches keep the thread path: its per-query enumerate
        # spans come from the calling process and join the ambient trace,
        # which worker processes cannot do.
        if self.tracing is not False and current_trace() is not None:
            return None
        from repro.parallel import PARALLEL_STATS, ParallelExecutionError, supported

        if not supported():
            return None
        results: list[set[tuple] | None] = [None] * len(plans)
        local_slots: list[int] = []
        with self._lock:
            materialization = self._materialization(database)
            # One chase covers the whole batch: deepen to the most demanding
            # plan first so no later state build re-chases (and re-forks).
            deepest = max(plans, key=lambda plan: plan.null_depth)
            materialization.chase_for(deepest)
            pool = materialization.ensure_pool()
            if pool is None:
                return None
            assignments: list[list] = [[] for _ in range(pool.worker_count)]
            for slot, plan in enumerate(plans):
                if plan.supports_enumeration:
                    assignments[slot % pool.worker_count].append(
                        (slot, plan.omq.query)
                    )
                else:
                    local_slots.append(slot)
            try:
                responses = pool.scatter("execute", assignments)
            except ParallelExecutionError:
                return None
        for response in responses:
            for slot, answers in response:
                results[slot] = answers
                self._counters.bump("executions")
        PARALLEL_STATS.bump("batch_queries", len(plans) - len(local_slots))
        for slot in local_slots:
            state = self._materialized_state(plans[slot], database)
            results[slot] = self._evaluate_state(state)
        return results  # type: ignore[return-value]

    def open(
        self,
        query: QueryLike,
        database: Database | None = None,
        on_close: Callable[[AnswerCursor], None] | None = None,
        *,
        page_size: int | None = None,
    ) -> AnswerCursor:
        """A restartable constant-delay cursor over the query's answers.

        ``on_close`` is an optional lifecycle hook fired exactly once when
        the cursor closes; the engine always chains its own hook first to
        keep the ``cursors_open`` gauge exact.  ``page_size`` sets the
        cursor's default :meth:`~AnswerCursor.fetchmany` batch, so serving
        layers size pages here instead of at every fetch.
        """
        with self._trace_scope("open"):
            prepared = self.prepare(query)
            resolved = self._resolve_database(database)
            self._counters.bump("cursors_opened")
            self._counters.bump("cursors_open")
            cursor = AnswerCursor(
                self,
                prepared,
                resolved,
                on_close=self._cursor_closed,
                page_size=page_size,
            )
        if on_close is not None:
            cursor.add_close_hook(on_close)
        return cursor

    def _cursor_closed(self, cursor: AnswerCursor) -> None:
        del cursor
        self._counters.bump("cursors_open", -1)

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> EngineStats:
        """A consistent point-in-time snapshot of every engine counter.

        Cache and materialization counters are read under the engine lock
        (their writers hold it too); the execution/cursor counters come from
        one :class:`EngineCounters` critical section, so worker-thread
        increments can never be observed torn.  This is the reading the
        serving layer's ``/metrics`` endpoint publishes.
        """
        counters = self._counters.snapshot()
        plans_compiled, codegen_cache_hits = CODEGEN_STATS.snapshot()
        from repro.parallel import PARALLEL_STATS

        parallel = PARALLEL_STATS.snapshot()
        with self._lock:
            materializations = list(self._materializations.values())
            return EngineStats(
                plans_cached=len(self._plans),
                plan_hits=self._plans.hits,
                plan_misses=self._plans.misses,
                plan_evictions=self._plans.evictions,
                chase_builds=sum(m.chase_builds for m in materializations),
                chase_increments=sum(m.chase_increments for m in materializations),
                incremental_fallbacks=sum(
                    m.incremental_fallbacks for m in materializations
                ),
                state_builds=sum(m.state_builds for m in materializations),
                invalidations=sum(m.invalidations for m in materializations),
                executions=counters.get("executions", 0),
                cursors_opened=counters.get("cursors_opened", 0),
                interned_terms=len(TERMS),
                cursors_open=counters.get("cursors_open", 0),
                plans_compiled=plans_compiled,
                codegen_cache_hits=codegen_cache_hits,
                parallel_chases=sum(m.parallel_chases for m in materializations),
                parallel_tasks=parallel.get("tasks", 0),
                parallel_rounds=parallel.get("chase_rounds", 0),
                boundary_facts=parallel.get("boundary_facts", 0),
                shard_segments=parallel.get("segments", 0),
                worker_crashes=parallel.get("worker_crashes", 0),
                planner_choices=sum(m.planner_choices for m in materializations),
                planner_candidates=sum(m.planner_candidates for m in materializations),
                planner_estimated_rows=sum(
                    m.planner_estimated_rows for m in materializations
                ),
                planner_actual_rows=sum(
                    m.planner_actual_rows for m in materializations
                ),
            )

    @property
    def stats(self) -> EngineStats:
        """Aggregate counters across the plan cache and materializations."""
        return self.snapshot()
