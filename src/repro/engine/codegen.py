"""Per-plan code generation for the enumeration/chase inner loops.

The paper's constant-delay guarantee assumes the per-answer work is a fixed
sequence of array reads and tuple writes.  PR 5's slot plans got close — a
flat value array and per-atom write plans — but the walk still *interprets*
that plan on every row: tuple key construction, a loop over ``(position,
slot)`` pairs, a recursive generator frame per join-tree level.  This module
specialises the interpreter away, the translation move of the
LPOD/CR-Prolog² compilation line: keep the declarative plan as the spec,
emit a lower-level program (plain Python source, ``compile()``/``exec``-ed
once) that an existing fast evaluator — CPython's own bytecode loop — runs.

Three families of generated code:

* :func:`compile_walk` — the CD∘Lin enumeration walk of one slot plan as a
  single generator function: one ``for`` loop per join-tree level, unrolled
  column reads into local variables, inline key tuples, decode-at-emit via
  one C-level ``list.__getitem__``.  Cached per plan on
  :class:`PlanCodegen` (a field of the prepared query, so the closures are
  evicted exactly when the plan-cache entry is).
* :func:`key_kernels` — the hash semi-join / row-index kernels of
  :class:`repro.data.columns.ColumnarRelation` specialised to key arity
  (flattened ``zip`` over the key columns, no nested key iterator), and
  :func:`nullfree_kernel` — the answer-position null filter of the
  reduction specialised the same way.  Cached per arity (bounded by the
  largest key arity any query uses).
* :func:`single_body_matcher` — the per-fact body match of single-atom-body
  TGDs in the semi-naive chase loop, with the atom's constants, repeated
  variables and arity burned into straight-line code.  Cached per atom in a
  bounded LRU (atoms are value objects, so the cache is shared across chase
  runs of the same ontology).

Everything here is **semantics-preserving by construction**: each generator
mirrors one interpreted loop statement-for-statement, the differential suite
locks codegen-on against codegen-off byte-identical, and the
``REPRO_NO_CODEGEN`` / :func:`repro.config.set_codegen` / ``repro run
--no-codegen`` escape hatch restores the interpreted path at runtime.

This module deliberately imports only :mod:`repro.config` and
:mod:`repro.obs.trace` (which itself stops at :mod:`repro.config`), so the
data, chase and enumeration layers can all call into it without import
cycles.
"""

from __future__ import annotations

import threading
from typing import Callable, NamedTuple

from repro.config import codegen_enabled
from repro.obs.trace import add_event

__all__ = [
    "CODEGEN_STATS",
    "CodegenStats",
    "KeyKernels",
    "PlanCodegen",
    "compile_walk",
    "key_kernels",
    "maybe_single_body_matcher",
    "nullfree_kernel",
    "single_body_matcher",
    "walk_source",
]

#: Join-tree depths beyond this fall back to the interpreted walk (the
#: generated source nests one ``for`` per level; real plans have 1–4).
MAX_WALK_DEPTH = 16

#: Key arities beyond this use the generic kernels.
MAX_KERNEL_ARITY = 8

#: Bound on the per-atom chase-matcher cache (value-keyed, shared across
#: chase runs; real ontologies have tens of atoms, never thousands).
MAX_MATCHER_CACHE = 1024


class CodegenStats:
    """Process-wide codegen counters (plans compiled / cache hits).

    Mirrors the role :data:`repro.data.interning.TERMS` plays for
    ``interned_terms``: one shared object :class:`repro.engine.QueryEngine`
    snapshots into :class:`~repro.engine.engine.EngineStats`.
    """

    __slots__ = ("_lock", "_compiled", "_hits")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._compiled = 0
        self._hits = 0

    def compiled(self, amount: int = 1) -> None:
        with self._lock:
            self._compiled += amount

    def hit(self, amount: int = 1) -> None:
        with self._lock:
            self._hits += amount

    def snapshot(self) -> tuple[int, int]:
        """``(plans_compiled, cache_hits)`` as one consistent reading."""
        with self._lock:
            return self._compiled, self._hits


#: The process-wide counter block every generated artifact reports to.
CODEGEN_STATS = CodegenStats()


def _compile(source: str, name: str, namespace: dict | None = None) -> Callable:
    """``compile()``/``exec`` one generated function and return it."""
    scope: dict = dict(namespace or {})
    exec(compile(source, f"<repro-codegen:{name}>", "exec"), scope)
    CODEGEN_STATS.compiled()
    # Instantaneous marker on the ambient trace (no-op outside one): a
    # compile inside a request is exactly the kind of one-off cost EXPLAIN
    # should surface.
    add_event("codegen.compile", function=name, source_lines=source.count("\n") + 1)
    return scope[name]


# -- (a) the enumeration walk ----------------------------------------------


def walk_source(plan: tuple, interned: bool) -> str | None:
    """The generated source of one slot plan's enumeration walk.

    ``plan`` is the tuple built by ``CDLinEnumerator._build_plan``:
    ``(key_slots, stores, final_slots, slot_count)``.  Returns ``None`` for
    plans the generator does not cover (deeper than :data:`MAX_WALK_DEPTH`);
    callers then keep the interpreted walk.

    The source mirrors the interpreter exactly: a nested ``for`` per
    join-tree level in preorder, reading each row position straight into a
    local slot variable.  Writes to slots that are part of the level's own
    lookup key are elided — the index bucket guarantees those row positions
    equal the key values, so the interpreter's rewrite is a no-op.
    """
    key_slots, stores, final_slots, _slot_count = plan
    depth = len(key_slots)
    if depth == 0 or depth > MAX_WALK_DEPTH:
        return None

    def key_expr(slots: tuple[int, ...]) -> str:
        if not slots:
            return "()"
        body = ", ".join(f"_v{slot}" for slot in slots)
        return f"({body},)" if len(slots) == 1 else f"({body})"

    lines = ["def _walk(index_list, decode):"]
    for level in range(1, depth):
        lines.append(f"    _get{level} = index_list[{level}].get")
    pad = "    "
    lines.append(f"{pad}for _r0 in index_list[0].get((), ()):")
    for level in range(depth):
        if level:
            lines.append(
                f"{pad}for _r{level} in _get{level}({key_expr(key_slots[level])}, ()):"
            )
        inner = pad + "    "
        keyed = set(key_slots[level])
        for position, slot in stores[level]:
            if slot not in keyed:
                lines.append(f"{inner}_v{slot} = _r{level}[{position}]")
        pad = inner
    if final_slots:
        emit = ", ".join(
            f"decode(_v{slot})" if interned else f"_v{slot}" for slot in final_slots
        )
        suffix = "," if len(final_slots) == 1 else ""
        lines.append(f"{pad}yield ({emit}{suffix})")
    else:
        lines.append(f"{pad}yield ()")
    return "\n".join(lines) + "\n"


def compile_walk(plan: tuple, interned: bool) -> Callable | None:
    """Compile the enumeration walk of ``plan``; ``None`` if not covered.

    The returned generator function has the signature
    ``_walk(index_list, decode)`` — per-enumeration state stays a call
    argument, so the closure is a pure function of the plan and one compiled
    object serves every database and every maintenance epoch.
    """
    source = walk_source(plan, interned)
    if source is None:
        return None
    return _compile(source, "_walk")


class PlanCodegen:
    """The compiled closures of one prepared query.

    Lives as a field on :class:`repro.engine.plan.PreparedQuery`, so the
    closures share the plan's lifetime exactly: evicting the plan-cache
    entry drops the last strong reference and the code objects with it —
    there is deliberately *no* process-global walk cache to outlive it.
    """

    # ``__weakref__`` lets the eviction regression test observe the
    # closures' lifetime without keeping them alive.
    __slots__ = ("_walks", "__weakref__")

    def __init__(self) -> None:
        self._walks: dict[tuple, Callable | None] = {}

    def __len__(self) -> int:
        return len(self._walks)

    def walk_for(self, plan: tuple, interned: bool) -> Callable | None:
        """The compiled walk for ``plan`` (compiling on first sight)."""
        key = (plan, interned)
        if key in self._walks:
            CODEGEN_STATS.hit()
            return self._walks[key]
        walk = compile_walk(plan, interned)
        self._walks[key] = walk
        return walk


# -- (b) arity-specialised columnar kernels --------------------------------


class KeyKernels(NamedTuple):
    """The per-arity kernel family of :class:`ColumnarRelation`.

    ``filter_rows(key_columns, rows, keys)`` is the hash semi-join,
    ``index_rows(key_columns, rows)`` the row-grouping index build; both
    take the already-selected key columns plus the row iterator and mirror
    the generic kernels' output exactly (tuple keys, list buckets).
    """

    filter_rows: Callable
    index_rows: Callable


_KERNEL_LOCK = threading.Lock()
_KERNELS: dict[int, KeyKernels] = {}


def _filter_source(arity: int) -> str:
    unpack = ", ".join(f"_k{i}" for i in range(arity))
    columns = ", ".join(f"key_columns[{i}]" for i in range(arity))
    key = f"(_k0,)" if arity == 1 else f"({unpack})"
    return (
        f"def _filter{arity}(key_columns, rows, keys):\n"
        f"    return [\n"
        f"        row\n"
        f"        for {unpack}, row in zip({columns}, rows)\n"
        f"        if {key} in keys\n"
        f"    ]\n"
    )


def _index_source(arity: int) -> str:
    unpack = ", ".join(f"_k{i}" for i in range(arity))
    columns = ", ".join(f"key_columns[{i}]" for i in range(arity))
    key = f"(_k0,)" if arity == 1 else f"({unpack})"
    return (
        f"def _index{arity}(key_columns, rows):\n"
        f"    index = {{}}\n"
        f"    get = index.get\n"
        f"    for {unpack}, row in zip({columns}, rows):\n"
        f"        key = {key}\n"
        f"        bucket = get(key)\n"
        f"        if bucket is None:\n"
        f"            index[key] = [row]\n"
        f"        else:\n"
        f"            bucket.append(row)\n"
        f"    return index\n"
    )


def key_kernels(arity: int) -> KeyKernels | None:
    """The compiled kernel family for key ``arity`` (``None`` if uncovered).

    Cached per arity under a lock; the cache is bounded by
    :data:`MAX_KERNEL_ARITY`, so it can never grow with query churn.
    """
    if arity < 1 or arity > MAX_KERNEL_ARITY:
        return None
    kernels = _KERNELS.get(arity)
    if kernels is not None:
        CODEGEN_STATS.hit()
        return kernels
    with _KERNEL_LOCK:
        kernels = _KERNELS.get(arity)
        if kernels is None:
            kernels = KeyKernels(
                filter_rows=_compile(_filter_source(arity), f"_filter{arity}"),
                index_rows=_compile(_index_source(arity), f"_index{arity}"),
            )
            _KERNELS[arity] = kernels
    return kernels


_NULLFREE_LOCK = threading.Lock()
_NULLFREE: dict[int, Callable] = {}


def nullfree_kernel(arity: int) -> Callable | None:
    """A compiled ``rows, flags -> {row | no answer position is a null}``.

    Specialises the reduction's null filter to row arity: direct
    ``bytearray`` loads instead of a generator expression per row.
    ``flags`` is the interning dictionary's null-flag table.
    """
    if arity < 1 or arity > MAX_KERNEL_ARITY:
        return None
    kernel = _NULLFREE.get(arity)
    if kernel is not None:
        CODEGEN_STATS.hit()
        return kernel
    with _NULLFREE_LOCK:
        kernel = _NULLFREE.get(arity)
        if kernel is None:
            checks = " or ".join(f"flags[row[{i}]]" for i in range(arity))
            source = (
                f"def _nullfree{arity}(rows, flags):\n"
                f"    return {{row for row in rows if not ({checks})}}\n"
            )
            kernel = _compile(source, f"_nullfree{arity}")
            _NULLFREE[arity] = kernel
    return kernel


# -- (c) single-atom-body chase matchers -----------------------------------

_MATCHER_LOCK = threading.Lock()
_MATCHERS: dict[object, Callable] = {}


def _matcher_source_and_namespace(atom) -> tuple[str, dict]:
    """Straight-line source equivalent to ``match_atom(atom, fact, {})``.

    Constants and the atom's :class:`~repro.cq.atoms.Variable` objects are
    closed over through the exec namespace; the generated function takes one
    fact and returns the full body map (or ``None``), exactly like the
    generic matcher seeded with an empty assignment.
    """
    namespace: dict = {}
    lines = [
        "def _match(fact):",
        "    args = fact.args",
        f"    if len(args) != {len(atom.args)}:",
        "        return None",
    ]
    first_position: dict[object, int] = {}
    entries: list[str] = []
    for position, term, is_var in atom.term_plan:
        if is_var:
            seen = first_position.get(term)
            if seen is None:
                first_position[term] = position
                name = f"_k{len(first_position) - 1}"
                namespace[name] = term
                entries.append(f"{name}: args[{position}]")
            else:
                lines.append(f"    if args[{position}] != args[{seen}]:")
                lines.append("        return None")
        else:
            name = f"_c{position}"
            namespace[name] = term
            lines.append(f"    if args[{position}] != {name}:")
            lines.append("        return None")
    lines.append("    return {" + ", ".join(entries) + "}")
    return "\n".join(lines) + "\n", namespace


def single_body_matcher(atom) -> Callable:
    """The compiled matcher for ``atom`` (bounded value-keyed cache).

    Atoms hash and compare by value, so structurally identical atoms from
    re-parsed ontologies share one compiled matcher; the cache is cleared
    wholesale at :data:`MAX_MATCHER_CACHE` entries, which bounds memory
    without a per-entry LRU on the hot path.
    """
    matcher = _MATCHERS.get(atom)
    if matcher is not None:
        CODEGEN_STATS.hit()
        return matcher
    with _MATCHER_LOCK:
        matcher = _MATCHERS.get(atom)
        if matcher is None:
            if len(_MATCHERS) >= MAX_MATCHER_CACHE:
                _MATCHERS.clear()
            source, namespace = _matcher_source_and_namespace(atom)
            matcher = _compile(source, "_match", namespace)
            _MATCHERS[atom] = matcher
    return matcher


def maybe_single_body_matcher(atom, enabled: bool | None = None) -> Callable | None:
    """``single_body_matcher`` gated on the codegen switch.

    ``enabled=None`` consults the process default
    (:func:`repro.config.codegen_enabled`), which is how call sites that
    were not handed an explicit :class:`~repro.config.ExecutionOptions`
    resolve the switch.
    """
    if enabled is None:
        enabled = codegen_enabled()
    if not enabled:
        return None
    return single_body_matcher(atom)
