"""File interchange: DLGP ontologies/facts/queries and CSV/TSV data dumps.

This package is the frontend that makes every code path of the library —
chase, constant-delay enumeration, prepared-query engine, incremental
maintenance — reachable from files on disk:

* :mod:`repro.io.dlgp` — a DLGP-style parser/serializer for existential
  rules, ground facts and conjunctive queries (the Graal-family interchange
  format);
* :mod:`repro.io.tabular` — streaming CSV/TSV fact loaders and writers
  (one file per relation, arity-validated);
* this module — path-dispatching ``load_* / dump_*`` entry points plus
  :class:`Scenario`, the bundle the CLI and the workload registry hand to
  :class:`repro.engine.QueryEngine`.

The suffix decides the format: ``.dlgp`` is parsed as a DLGP document,
``.csv`` / ``.tsv`` as one-relation-per-file data dumps.  Everything raises
plain :class:`ValueError` subclasses with file/line context on malformed
input, so callers can present errors without special cases.

    >>> import tempfile, pathlib
    >>> root = pathlib.Path(tempfile.mkdtemp())
    >>> _ = (root / "rules.dlgp").write_text(
    ...     "@rules\\nOffice(Y) :- HasOffice(X, Y).\\n"
    ...     "@queries\\n[q] ?(X, Y) :- HasOffice(X, Y).\\n"
    ... )
    >>> _ = (root / "HasOffice.csv").write_text("mary,room1\\n")
    >>> scenario = load_scenario(
    ...     rules=[root / "rules.dlgp"], data=[root / "HasOffice.csv"]
    ... )
    >>> sorted(scenario.engine().execute(scenario.queries[0]))
    [('mary', 'room1')]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.cq.query import ConjunctiveQuery
from repro.data.instance import Database
from repro.io.dlgp import (
    DlgpDocument,
    DlgpError,
    dump_facts,
    dump_ontology,
    dump_queries,
    dump_query,
    dump_rule,
    parse_document,
)
from repro.io.tabular import (
    DELIMITERS,
    dump_database_csv,
    dump_facts_csv,
    iter_facts_csv,
    load_database_csv,
    load_facts_csv,
)
from repro.tgds.ontology import Ontology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.engine import QueryEngine

__all__ = [
    "DELIMITERS",
    "DlgpDocument",
    "DlgpError",
    "Scenario",
    "dump_database",
    "dump_database_csv",
    "dump_facts",
    "dump_facts_csv",
    "dump_ontology",
    "dump_queries",
    "dump_query",
    "dump_rule",
    "dump_scenario",
    "iter_facts_csv",
    "load_database",
    "load_database_csv",
    "load_document",
    "load_facts_csv",
    "load_ontology",
    "load_queries",
    "load_scenario",
    "parse_document",
]


def load_document(path: str | Path) -> DlgpDocument:
    """Parse one ``.dlgp`` file into rules, facts and queries."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ValueError(f"cannot read {path}: {exc}") from exc
    try:
        return parse_document(text)
    except DlgpError as exc:
        raise DlgpError(f"{path}: {exc}") from exc


def load_ontology(path: str | Path, name: str | None = None) -> Ontology:
    """The ontology (rules) of a DLGP file, named after the file stem."""
    path = Path(path)
    document = load_document(path)
    return document.ontology(name=name or path.stem)


def load_queries(path: str | Path) -> list[ConjunctiveQuery]:
    """All queries of a DLGP file (``@queries`` statements)."""
    return load_document(path).queries


def load_database(
    paths: Iterable[str | Path] | str | Path,
    *,
    database: Database | None = None,
) -> Database:
    """Load one or more data files into a database.

    ``.csv`` / ``.tsv`` files stream one relation each (see
    :func:`repro.io.tabular.load_database_csv`); ``.dlgp`` files contribute
    their ``@facts`` section.  Everything lands via bulk
    :meth:`Database.add_facts` batches.
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    database = database if database is not None else Database()
    tabular: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.suffix.lower() == ".dlgp":
            document = load_document(path)
            if document.rules or document.queries:
                raise DlgpError(
                    f"{path}: data files may only contain facts, found "
                    f"{len(document.rules)} rules and "
                    f"{len(document.queries)} queries (pass rule files via "
                    "--rules / load_ontology)"
                )
            database.add_facts(document.facts)
        elif path.suffix.lower() in DELIMITERS:
            tabular.append(path)
        else:
            raise ValueError(
                f"{path}: unknown data suffix {path.suffix!r} "
                "(expected .dlgp, .csv or .tsv)"
            )
    load_database_csv(tabular, database=database)
    return database


def dump_database(
    database: Iterable, directory: str | Path, *, data_format: str = "csv"
) -> list[Path]:
    """Write a database to ``directory`` as CSV/TSV files or one DLGP file.

    Returns the written paths.  ``data_format`` is ``"csv"``, ``"tsv"`` or
    ``"dlgp"``.
    """
    directory = Path(directory)
    if data_format in ("csv", "tsv"):
        return dump_database_csv(database, directory, suffix=f".{data_format}")
    if data_format == "dlgp":
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "facts.dlgp"
        path.write_text(dump_facts(database), encoding="utf-8")
        return [path]
    raise ValueError(f"unknown data format {data_format!r} (expected csv, tsv or dlgp)")


@dataclass(frozen=True)
class Scenario:
    """A fully parsed workload: ontology + database + queries.

    This is the artifact bundle the CLI, the workload registry and
    :meth:`QueryEngine.from_files <repro.engine.engine.QueryEngine.from_files>`
    pass around; it owns nothing engine-specific, so it can equally feed the
    one-shot enumerators of :mod:`repro.core`.
    """

    ontology: Ontology
    database: Database
    queries: tuple[ConjunctiveQuery, ...] = ()
    name: str = "scenario"
    sources: tuple[str, ...] = field(default=(), compare=False)

    def engine(self, **kwargs) -> "QueryEngine":
        """A :class:`~repro.engine.engine.QueryEngine` over this scenario."""
        from repro.engine.engine import QueryEngine

        return QueryEngine(self.ontology, self.database, **kwargs)


def load_scenario(
    rules: Iterable[str | Path] | str | Path = (),
    data: Iterable[str | Path] | str | Path = (),
    queries: Iterable[str | Path] | str | Path = (),
    *,
    name: str | None = None,
) -> Scenario:
    """Assemble a :class:`Scenario` from rule, data and query files.

    ``rules`` DLGP files contribute rules *and* any embedded ``@queries``
    and ``@facts`` sections, so a single self-contained document loads with
    ``load_scenario(rules=["scenario.dlgp"])``.  Explicit ``queries`` files
    are appended after embedded ones; ``data`` files follow the
    :func:`load_database` conventions.
    """

    def _as_paths(value) -> list[Path]:
        if isinstance(value, (str, Path)):
            value = [value]
        return [Path(entry) for entry in value]

    rule_paths, data_paths, query_paths = map(_as_paths, (rules, data, queries))
    if not rule_paths and not data_paths:
        raise ValueError("a scenario needs at least one rules or data file")
    tgds = []
    cqs: list[ConjunctiveQuery] = []
    database = Database()
    for path in rule_paths:
        document = load_document(path)
        tgds.extend(document.rules)
        cqs.extend(document.queries)
        database.add_facts(document.facts)
    load_database(data_paths, database=database)
    for path in query_paths:
        cqs.extend(load_queries(path))
    inferred = name or (rule_paths[0].stem if rule_paths else data_paths[0].stem)
    sources = tuple(str(p) for p in (*rule_paths, *data_paths, *query_paths))
    return Scenario(
        ontology=Ontology(tgds, name=inferred),
        database=database,
        queries=tuple(cqs),
        name=inferred,
        sources=sources,
    )


def dump_scenario(
    scenario: Scenario,
    directory: str | Path,
    *,
    data_format: str = "csv",
) -> list[Path]:
    """Write a scenario to ``directory``: rules, queries and data files.

    Produces ``rules.dlgp``, ``queries.dlgp`` (when the scenario has
    queries) and the database in ``data_format``; returns all written
    paths.  The result reloads with :func:`load_scenario` (see the
    round-trip tests in ``tests/test_io.py``).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    rules_path = directory / "rules.dlgp"
    rules_path.write_text(
        dump_ontology(scenario.ontology, header=f"rules of {scenario.name}"),
        encoding="utf-8",
    )
    written.append(rules_path)
    if scenario.queries:
        queries_path = directory / "queries.dlgp"
        queries_path.write_text(
            dump_queries(list(scenario.queries), header=f"queries of {scenario.name}"),
            encoding="utf-8",
        )
        written.append(queries_path)
    written.extend(dump_database(scenario.database, directory, data_format=data_format))
    return written
