"""A DLGP-style interchange syntax for existential rules, facts and CQs.

DLGP ("Datalog+") is the de-facto text format of the existential-rule
ecosystem (Graal and friends).  This module implements the dialect accepted
by this library: enough of DLGP 2.0 to exchange ontologies, databases and
conjunctive queries with third-party tools, while mapping losslessly onto
the internal :class:`~repro.tgds.tgd.TGD` / :class:`~repro.data.facts.Fact`
/ :class:`~repro.cq.query.ConjunctiveQuery` objects.  The precise grammar is
specified in ``docs/formats.md``.

The surface conventions differ from the internal text syntax of
:mod:`repro.cq.parser` and :mod:`repro.tgds.parser` in the classic DLGP way:

* identifiers starting with an **uppercase** letter are *variables*,
  lowercase identifiers, integers and double-quoted strings are *constants*
  (the internal syntax is the other way around for identifiers);
* statements end with a period and may span lines; ``%`` starts a comment;
* ``@rules`` / ``@facts`` / ``@queries`` section directives classify the
  statements that follow; before any directive the statement shape decides
  (``?`` head = query, ``:-``/``->`` = rule, bare ground atoms = facts);
* a statement may carry a ``[label]`` prefix, preserved as the TGD label or
  the query name.

Parsing reports precise positions::

    >>> try:
    ...     parse_document("@rules\\np(X) :- q(X)")
    ... except DlgpError as exc:
    ...     print(exc)
    line 2, column 13: expected '.' at end of statement

Round trips are exact up to variable renaming (bound variables are
serialized by uppercasing their first letter, so ``x1`` becomes ``X1`` and
back), which never changes query answers::

    >>> doc = parse_document('''
    ... @rules
    ... HasOffice(X, Y) :- Researcher(X).
    ... @facts
    ... Researcher(mary).
    ... @queries
    ... [q] ?(X, Y) :- HasOffice(X, Y).
    ... ''')
    >>> [str(fact) for fact in doc.facts]
    ['Researcher(mary)']
    >>> print(dump_queries(doc.queries).splitlines()[-1])
    [q] ?(X, Y) :- HasOffice(X, Y).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cq.atoms import Atom, Variable, is_variable
from repro.cq.query import ConjunctiveQuery, QueryError
from repro.data.facts import Fact
from repro.tgds.ontology import Ontology
from repro.tgds.tgd import TGD, TGDError


class DlgpError(ValueError):
    """A malformed DLGP document, with 1-based line/column positions."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            where = f"line {line}"
            if column is not None:
                where += f", column {column}"
            message = f"{where}: {message}"
        super().__init__(message)


@dataclass
class DlgpDocument:
    """The parsed content of one DLGP document."""

    rules: list[TGD] = field(default_factory=list)
    facts: list[Fact] = field(default_factory=list)
    queries: list[ConjunctiveQuery] = field(default_factory=list)

    def ontology(self, name: str = "O") -> Ontology:
        """The document's rules as an :class:`~repro.tgds.ontology.Ontology`."""
        return Ontology(self.rules, name=name)


# -- tokenizer -----------------------------------------------------------

#: Escape sequences inside string literals; raw newlines are not allowed,
#: so the serializer writes ``\n`` and the parser maps it back.
_STRING_ESCAPES = {"n": "\n", "t": "\t", "r": "\r"}


def _unescape_string(body: str) -> str:
    return re.sub(
        r"\\(.)", lambda match: _STRING_ESCAPES.get(match.group(1), match.group(1)), body
    )


def _escape_string(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return escaped.replace("\n", "\\n").replace("\t", "\\t").replace("\r", "\\r")

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>%[^\n]*)
    | (?P<directive>@[A-Za-z][A-Za-z0-9_]*)
    | (?P<label>\[[^\]\n]*\])
    | (?P<string>"(?:[^"\\\n]|\\.)*")
    | (?P<badstring>"(?:[^"\\\n]|\\.)*)
    | (?P<int>-?\d+)
    | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<implies>:-|<-|->)
    | (?P<punct>[(),.?])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    line, line_start = 1, 0
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise DlgpError(f"unexpected character {text[pos]!r}", line, pos - line_start + 1)
        kind = match.lastgroup or ""
        token_text = match.group(0)
        column = pos - line_start + 1
        if kind == "badstring":
            raise DlgpError("unterminated string literal", line, column)
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, token_text, line, column))
        newlines = token_text.count("\n")
        if newlines:
            line += newlines
            line_start = pos + token_text.rindex("\n") + 1
        pos = match.end()
    tokens.append(_Token("eof", "", line, len(text) - line_start + 1))
    return tokens


# -- parser --------------------------------------------------------------

_SECTIONS = {"@rules", "@facts", "@queries", "@constraints"}
_IGNORED_DIRECTIVES = {"@base", "@prefix", "@top", "@una"}


class _Parser:
    def __init__(self, text: str):
        self._tokens = _tokenize(text)
        self._pos = 0

    @property
    def _current(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._current
        if token.kind != "eof":
            self._pos += 1
        return token

    def _error(self, message: str, token: _Token | None = None) -> DlgpError:
        token = token or self._current
        return DlgpError(message, token.line, token.column)

    def _expect(self, text: str, what: str) -> _Token:
        token = self._current
        if token.text != text:
            raise self._error(what, token)
        return self._advance()

    # -- terms and atoms -------------------------------------------------

    def _parse_term(self, ground: bool):
        token = self._advance()
        if token.kind == "string":
            return _unescape_string(token.text[1:-1])
        if token.kind == "int":
            return int(token.text)
        if token.kind == "ident":
            if token.text[0].isupper() or token.text[0] == "_":
                if ground:
                    raise self._error(
                        f"variable {token.text!r} not allowed in a fact "
                        "(facts must be ground)",
                        token,
                    )
                # DLGP variables are Uppercase; internally they are
                # lowercase-first.  Lowercasing the first letter makes the
                # serializer/parser pair an exact inverse for parser-built
                # rules and queries.
                name = token.text[0].lower() + token.text[1:]
                return Variable(name)
            return token.text
        raise self._error(f"expected a term, found {token.text!r}", token)

    def _parse_atom(self, ground: bool) -> Atom:
        token = self._advance()
        if token.kind != "ident":
            raise self._error(
                f"expected a relation symbol, found {token.text or 'end of input'!r}",
                token,
            )
        relation = token.text
        self._expect("(", f"expected '(' after relation symbol {relation!r}")
        args: list = []
        if self._current.text != ")":
            args.append(self._parse_term(ground))
            while self._current.text == ",":
                self._advance()
                args.append(self._parse_term(ground))
        self._expect(")", "expected ')' or ',' in atom argument list")
        return Atom(relation, args)

    def _parse_conjunction(self, ground: bool) -> list[Atom]:
        # The keyword ``true`` denotes the empty conjunction (rule bodies).
        if self._current.text == "true" and self._tokens[self._pos + 1].text != "(":
            self._advance()
            return []
        atoms = [self._parse_atom(ground)]
        while self._current.text == ",":
            self._advance()
            atoms.append(self._parse_atom(ground))
        return atoms

    # -- statements ------------------------------------------------------

    def _parse_label(self) -> str | None:
        if self._current.kind == "label":
            return self._advance().text[1:-1].strip()
        return None

    def _finish_statement(self) -> None:
        self._expect(".", "expected '.' at end of statement")

    def _parse_query(self, label: str | None, start: _Token) -> ConjunctiveQuery:
        if self._current.text == "?":
            self._advance()
            self._expect("(", "expected '(' after '?'")
            head_terms: list = []
            if self._current.text != ")":
                head_terms.append(self._parse_term(ground=False))
                while self._current.text == ",":
                    self._advance()
                    head_terms.append(self._parse_term(ground=False))
            self._expect(")", "expected ')' or ',' in query head")
            name = label or "q"
        else:
            head = self._parse_atom(ground=False)
            head_terms = list(head.args)
            name = label or head.relation
        for term in head_terms:
            if not is_variable(term):
                raise self._error(f"query head term {term!r} is not a variable", start)
        self._expect(":-", "expected ':-' after query head")
        body = self._parse_conjunction(ground=False)
        self._finish_statement()
        try:
            return ConjunctiveQuery(head_terms, body, name=name)
        except QueryError as exc:
            raise self._error(str(exc), start) from exc

    def _parse_rule(self, label: str | None, start: _Token) -> TGD:
        first = self._parse_conjunction(ground=False)
        token = self._advance()
        if token.text == ":-":  # DLGP order: head :- body
            head, body = first, self._parse_conjunction(ground=False)
        elif token.text == "->":  # internal order: body -> head
            body, head = first, self._parse_conjunction(ground=False)
        else:
            raise self._error("expected ':-' or '->' in rule", token)
        self._finish_statement()
        try:
            return TGD(body, head, label=label or "")
        except TGDError as exc:
            raise self._error(str(exc), start) from exc

    def _parse_facts(self) -> list[Fact]:
        atoms = self._parse_conjunction(ground=True)
        self._finish_statement()
        return [Fact(atom.relation, atom.args) for atom in atoms]

    def _looks_like_rule(self) -> bool:
        """Peek ahead (within the statement) for a ':-' or '->' token."""
        for token in self._tokens[self._pos :]:
            if token.text == "." or token.kind == "eof":
                return False
            if token.text in (":-", "->"):
                return True
        return False

    def parse(self) -> DlgpDocument:
        document = DlgpDocument()
        section: str | None = None
        while self._current.kind != "eof":
            token = self._current
            if token.kind == "directive":
                if token.text in _SECTIONS:
                    section = token.text
                    self._advance()
                elif token.text in _IGNORED_DIRECTIVES:
                    # Prologue directives take one argument-ish tail we do
                    # not interpret; skip tokens up to the next '.' or the
                    # next directive / end of line group.
                    self._advance()
                    while self._current.kind not in ("eof", "directive"):
                        if self._advance().text == ".":
                            break
                else:
                    raise self._error(f"unknown directive {token.text!r}", token)
                continue
            label = self._parse_label()
            start = self._current
            if section == "@constraints":
                raise self._error("negative constraints are not supported", start)
            if section == "@queries" or (section is None and start.text == "?"):
                document.queries.append(self._parse_query(label, start))
            elif section == "@rules" or (section is None and self._looks_like_rule()):
                document.rules.append(self._parse_rule(label, start))
            elif section in (None, "@facts"):
                if label is not None:
                    raise self._error("facts may not carry labels", start)
                document.facts.extend(self._parse_facts())
            else:  # pragma: no cover - sections are exhaustive
                raise self._error(f"statement not allowed in section {section}", start)
        return document


def parse_document(text: str) -> DlgpDocument:
    """Parse a DLGP document into rules, facts and queries.

    Raises :class:`DlgpError` (a ``ValueError``) with 1-based line/column
    information on any syntax or well-formedness problem.  A UTF-8 byte
    order mark is tolerated (editors on some platforms prepend one) and
    ``\\r\\n`` line endings parse like plain ``\\n``.
    """
    # A leading BOM is not whitespace to the tokenizer; strip it so files
    # saved as "UTF-8 with BOM" parse with unchanged positions.
    text = text.removeprefix("\ufeff")
    # Prologue directives (@base, @prefix, ...) carry IRI arguments outside
    # our token grammar; they do not affect the abstract syntax we support,
    # so their lines are blanked wholesale (preserving line numbers).
    lines = text.split("\n")
    for index, line in enumerate(lines):
        first_word = line.split(maxsplit=1)[0] if line.split() else ""
        if first_word in _IGNORED_DIRECTIVES:
            lines[index] = ""
    return _Parser("\n".join(lines)).parse()


# -- serialization -------------------------------------------------------

_BARE_CONSTANT_RE = re.compile(r"[a-z][A-Za-z0-9_]*\Z")


def _dump_term(term: object) -> str:
    if is_variable(term):
        name = term.name  # type: ignore[union-attr]
        return name[0].upper() + name[1:] if name[0].islower() else name
    if isinstance(term, bool):
        raise DlgpError(f"cannot serialize boolean constant {term!r}")
    if isinstance(term, int):
        return str(term)
    if isinstance(term, str):
        if _BARE_CONSTANT_RE.match(term) and term != "true":
            return term
        return f'"{_escape_string(term)}"'
    raise DlgpError(f"cannot serialize constant {term!r} of type {type(term).__name__}")


def _dump_atom(atom: Atom | Fact) -> str:
    args = ", ".join(_dump_term(term) for term in atom.args)
    return f"{atom.relation}({args})"


def _sorted_atoms(atoms: Iterable[Atom]) -> list[Atom]:
    return sorted(atoms, key=_dump_atom)


def _label_prefix(label: str) -> str:
    if "]" in label or "\n" in label:
        raise DlgpError(f"label {label!r} cannot be serialized")
    return f"[{label}] " if label else ""


def dump_rule(tgd: TGD) -> str:
    """One DLGP rule statement, ``[label] head :- body.``"""
    head = ", ".join(_dump_atom(atom) for atom in _sorted_atoms(tgd.head))
    body = ", ".join(_dump_atom(atom) for atom in _sorted_atoms(tgd.body)) or "true"
    return f"{_label_prefix(tgd.label)}{head} :- {body}."


def dump_ontology(ontology: Ontology, header: str | None = None) -> str:
    """The ontology as a DLGP document with one ``@rules`` section."""
    lines = [f"% {header}" if header else f"% ontology {ontology.name}", "@rules"]
    lines.extend(dump_rule(tgd) for tgd in ontology)
    return "\n".join(lines) + "\n"


def dump_facts(facts: Iterable[Fact], header: str | None = None) -> str:
    """The facts as a DLGP document with one ``@facts`` section."""
    lines = [f"% {header}" if header else "% facts", "@facts"]
    checked = []
    for fact in facts:
        if fact.has_null():
            raise DlgpError(f"cannot serialize fact with labelled nulls: {fact}")
        checked.append(fact)
    for fact in sorted(checked, key=_dump_atom):
        lines.append(f"{_dump_atom(fact)}.")
    return "\n".join(lines) + "\n"


def dump_query(query: ConjunctiveQuery) -> str:
    """One DLGP query statement, ``[name] ?(X, ...) :- body.``"""
    head = ", ".join(_dump_term(term) for term in query.answer_variables)
    body = ", ".join(_dump_atom(atom) for atom in _sorted_atoms(query.atoms))
    return f"{_label_prefix(query.name)}?({head}) :- {body}."


def dump_queries(queries: Sequence[ConjunctiveQuery], header: str | None = None) -> str:
    """The queries as a DLGP document with one ``@queries`` section."""
    lines = [f"% {header}" if header else "% queries", "@queries"]
    lines.extend(dump_query(query) for query in queries)
    return "\n".join(lines) + "\n"
