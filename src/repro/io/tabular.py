"""Delimited-file (CSV/TSV) loaders and writers for database facts.

The convention matches the usual existential-rule benchmark dumps: **one
file per relation**, no header row, one fact per row.  The relation symbol
defaults to the file stem (``HasOffice.csv`` holds ``HasOffice`` facts), the
arity is inferred from the first row and validated on every following row,
and values are plain strings except that integer-shaped fields become
``int`` constants (mirroring the term syntax of :mod:`repro.cq.parser`).
The grammar accepted is specified in ``docs/formats.md``.

Loading streams: :func:`iter_facts_csv` yields facts row by row and
:func:`load_database_csv` feeds them straight into
:meth:`Database.add_facts() <repro.data.instance.Instance.add_facts>`, so a
bulk load costs one version bump and one coalesced delta, never per-fact
churn.

    >>> import io
    >>> rows = io.StringIO("mary,room1\\njohn,room4\\n")
    >>> [str(fact) for fact in iter_facts_csv(rows, relation="HasOffice")]
    ['HasOffice(mary, room1)', 'HasOffice(john, room4)']

Arity mismatches fail with the offending position::

    >>> rows = io.StringIO("a,b\\nc\\n")
    >>> list(iter_facts_csv(rows, relation="R"))
    Traceback (most recent call last):
    ...
    ValueError: <csv>, line 2: R row has 1 fields, expected 2
"""

from __future__ import annotations

import csv
import re
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.data.facts import Fact
from repro.data.instance import Database

_INT_RE = re.compile(r"-?\d+\Z")

#: File suffixes understood by the tabular loaders, with their delimiters.
DELIMITERS = {".csv": ",", ".tsv": "\t"}


def _delimiter_for(path: Path, delimiter: str | None) -> str:
    if delimiter is not None:
        return delimiter
    try:
        return DELIMITERS[path.suffix.lower()]
    except KeyError:
        known = ", ".join(sorted(DELIMITERS))
        raise ValueError(
            f"{path}: unknown tabular suffix {path.suffix!r} (expected {known}; "
            "pass delimiter=... to force one)"
        ) from None


def _parse_field(field: str, infer_types: bool):
    return int(field) if infer_types and _INT_RE.match(field) else field


def iter_facts_csv(
    rows: IO[str] | Iterable[str],
    relation: str,
    *,
    delimiter: str = ",",
    infer_types: bool = True,
    source: str = "<csv>",
) -> Iterator[Fact]:
    """Stream ``relation`` facts out of delimited text rows.

    The first non-empty row fixes the arity; every later row must agree or a
    :class:`ValueError` naming ``source`` and the 1-based line is raised.
    With ``infer_types`` (the default) integer-shaped fields become ``int``
    constants, everything else stays a string.
    """
    arity: int | None = None
    reader = csv.reader(rows, delimiter=delimiter)
    for row in reader:
        if not row or (len(row) == 1 and not row[0].strip()):
            continue
        if arity is None:
            arity = len(row)
        elif len(row) != arity:
            raise ValueError(
                f"{source}, line {reader.line_num}: {relation} row has "
                f"{len(row)} fields, expected {arity}"
            )
        yield Fact(relation, tuple(_parse_field(field, infer_types) for field in row))


def load_facts_csv(
    path: str | Path,
    *,
    relation: str | None = None,
    delimiter: str | None = None,
    infer_types: bool = True,
) -> Iterator[Fact]:
    """Stream the facts of one delimited file (relation = file stem)."""
    path = Path(path)
    delimiter = _delimiter_for(path, delimiter)
    relation = relation or path.stem
    with path.open(newline="", encoding="utf-8") as handle:
        yield from iter_facts_csv(
            handle,
            relation,
            delimiter=delimiter,
            infer_types=infer_types,
            source=str(path),
        )


def load_database_csv(
    paths: Iterable[str | Path],
    *,
    database: Database | None = None,
    infer_types: bool = True,
) -> Database:
    """Bulk-load delimited files into a (new or existing) database.

    Each file contributes one relation (its stem).  Facts stream through
    :meth:`Database.add_facts`, so the whole load is one coalesced batch per
    file.  Relations loaded from several files must agree on arity.
    """
    database = database if database is not None else Database()
    arities: dict[str, tuple[int, str]] = {}
    for path in paths:
        path = Path(path)

        def _checked(facts: Iterator[Fact], origin: str) -> Iterator[Fact]:
            for fact in facts:
                seen = arities.get(fact.relation)
                if seen is None:
                    arities[fact.relation] = (fact.arity, origin)
                elif seen[0] != fact.arity:
                    raise ValueError(
                        f"{origin}: relation {fact.relation!r} has arity "
                        f"{fact.arity}, but {seen[1]} already used arity {seen[0]}"
                    )
                yield fact

        database.add_facts(_checked(load_facts_csv(path, infer_types=infer_types), str(path)))
    return database


def _dump_field(value: object, source: str) -> str:
    if isinstance(value, bool) or not isinstance(value, (str, int)):
        raise ValueError(
            f"{source}: cannot serialize constant {value!r} of type "
            f"{type(value).__name__} to a delimited file"
        )
    if isinstance(value, str) and _INT_RE.match(value):
        # An int-shaped *string* would come back as an int and silently
        # change answers; delimited files carry no type information, so
        # refuse instead of round-tripping lossily (DLGP quotes these).
        raise ValueError(
            f"{source}: string constant {value!r} is integer-shaped and would "
            "be reloaded as an int; dump this relation as DLGP instead "
            "(data_format='dlgp')"
        )
    return str(value)


def dump_facts_csv(
    facts: Iterable[Fact],
    path: str | Path,
    *,
    relation: str | None = None,
    delimiter: str | None = None,
) -> int:
    """Write one relation's facts to a delimited file; returns the row count.

    Rows are sorted for deterministic output.  Every fact must belong to
    ``relation`` (default: the file stem) and be null-free.
    """
    path = Path(path)
    delimiter = _delimiter_for(path, delimiter)
    relation = relation or path.stem
    rows: list[tuple[str, ...]] = []
    for fact in facts:
        if fact.relation != relation:
            raise ValueError(
                f"{path}: fact {fact} does not belong to relation {relation!r}"
            )
        if fact.has_null():
            raise ValueError(f"{path}: cannot serialize fact with nulls: {fact}")
        rows.append(tuple(_dump_field(value, str(path)) for value in fact.args))
    rows.sort()
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter, lineterminator="\n")
        writer.writerows(rows)
    return len(rows)


def dump_database_csv(
    database: Iterable[Fact],
    directory: str | Path,
    *,
    suffix: str = ".csv",
) -> list[Path]:
    """Write a database as one ``<Relation>.csv`` (or ``.tsv``) per relation.

    Returns the written paths, sorted.  The directory is created if needed.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    by_relation: dict[str, list[Fact]] = {}
    for fact in database:
        by_relation.setdefault(fact.relation, []).append(fact)
    written: list[Path] = []
    for relation in sorted(by_relation):
        path = directory / f"{relation}{suffix}"
        dump_facts_csv(by_relation[relation], path, relation=relation)
        written.append(path)
    return written
