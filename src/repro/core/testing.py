"""Single-testing and all-testing of OMQ answers (Sections 3 and 4).

The testers precompute the query-directed chase once (the linear-time
preprocessing of Theorem 3.1 / 4.1) and then answer membership questions:

* complete answers for weakly acyclic OMQs (Theorem 3.1(1)),
* minimal partial answers with a single wildcard for acyclic OMQs
  (Theorem 3.1(2)),
* minimal partial answers with multi-wildcards (Theorem 3.1(3)), and
* all-testing of complete answers for free-connex acyclic OMQs
  (Theorem 4.1(2), via Proposition 4.2).

The minimality checks follow the appendix constructions: a wildcard tuple is
a minimal partial answer iff the query grounded at its constant positions is
satisfiable over the chase, while no wildcard position can be pulled back
into the database domain (single wildcard), respectively no wildcard group
can be grounded and no two groups merged (multi-wildcards).
"""

from __future__ import annotations

from typing import Sequence

from repro.data.facts import Fact
from repro.data.instance import Database, Instance
from repro.chase.query_directed import QueryDirectedChase
from repro.cq.acyclicity import is_acyclic
from repro.cq.atoms import Atom, Variable
from repro.cq.homomorphism import find_homomorphism
from repro.cq.query import ConjunctiveQuery, QueryError
from repro.core.omq import OMQ
from repro.core.wildcards import WILDCARD, Wildcard, is_wildcard
from repro.enumeration.alltesting import FreeConnexAllTester
from repro.yannakakis.evaluation import boolean_eval

_DB_PREDICATE = "__Pdb__"


class OMQSingleTester:
    """Single-testing of complete and (minimal) partial answers.

    The constructor runs the preprocessing (query-directed chase plus the
    ``P_db`` marking of database constants); each ``test_*`` method then runs
    in time linear in the data (and independent of it for the lookups that
    only involve the fixed query).
    """

    def __init__(
        self,
        omq: OMQ,
        database: Database,
        chase: "QueryDirectedChase | None" = None,
    ) -> None:
        self.omq = omq
        self.database = database
        self.chase = omq.chase(database, reuse=chase)
        self.database_constants = frozenset(database.adom())
        # The chase instance extended with P_db facts marking adom(D); used
        # by the minimality tests exactly as in the proof of Theorem 3.1.
        self._marked = Instance(self.chase.instance)
        for constant in self.database_constants:
            self._marked.add(Fact(_DB_PREDICATE, (constant,)))

    # -- helpers ------------------------------------------------------------

    def _certain(self, query: ConjunctiveQuery, instance: Instance) -> bool:
        """Boolean certain-answer test of ``query`` over ``instance``.

        Uses Yannakakis' algorithm when the (already grounded) query is
        acyclic and falls back to generic homomorphism search otherwise.
        """
        boolean_query = query.boolean_version()
        if is_acyclic(boolean_query):
            return boolean_eval(boolean_query, instance)
        return find_homomorphism(boolean_query, instance) is not None

    def _coherent(self, candidate: Sequence) -> dict[Variable, object] | None:
        """Map answer variables to candidate values; ``None`` if incoherent."""
        if len(candidate) != self.omq.arity:
            raise QueryError(
                f"candidate has length {len(candidate)}, OMQ arity is {self.omq.arity}"
            )
        assignment: dict[Variable, object] = {}
        for variable, value in zip(self.omq.query.answer_variables, candidate):
            if variable in assignment and assignment[variable] != value:
                return None
            assignment[variable] = value
        return assignment

    def _grounded_query(
        self,
        assignment: dict[Variable, object],
        identify: dict[Variable, Variable] | None = None,
        require_database: Sequence[Variable] = (),
    ) -> ConjunctiveQuery:
        """The query with constant positions grounded and wildcard positions
        quantified; ``identify`` merges variables (multi-wildcard groups) and
        ``require_database`` adds a ``P_db`` atom for the listed variables."""
        substitution: dict[Variable, object] = {}
        for variable, value in assignment.items():
            if is_wildcard(value):
                continue
            substitution[variable] = value
        if identify:
            substitution.update(identify)
        atoms = [atom.substitute(substitution) for atom in self.omq.query.atoms]
        for variable in require_database:
            target = substitution.get(variable, variable)
            atoms.append(Atom(_DB_PREDICATE, (target,)))
        return ConjunctiveQuery((), atoms, name=f"{self.omq.query.name}_test")

    # -- complete answers (Theorem 3.1(1)) -----------------------------------

    def test_complete(self, candidate: Sequence) -> bool:
        """Decide ``candidate ∈ Q(D)`` (complete answers)."""
        assignment = self._coherent(candidate)
        if assignment is None:
            return False
        if any(value not in self.database_constants for value in candidate):
            return False
        grounded = self._grounded_query(assignment)
        return self._certain(grounded, self.chase.instance)

    # -- partial answers, single wildcard (Theorem 3.1(2)) -------------------

    def test_partial(self, candidate: Sequence) -> bool:
        """Decide whether ``candidate`` is a (not necessarily minimal)
        partial answer with a single wildcard."""
        assignment = self._coherent(candidate)
        if assignment is None:
            return False
        for value in candidate:
            if value is not WILDCARD and value not in self.database_constants:
                return False
        grounded = self._grounded_query(assignment)
        return self._certain(grounded, self.chase.instance)

    def test_minimal_partial(self, candidate: Sequence) -> bool:
        """Decide whether ``candidate`` is a *minimal* partial answer."""
        assignment = self._coherent(candidate)
        if assignment is None or not self.test_partial(candidate):
            return False
        wildcard_variables = [
            variable for variable, value in assignment.items() if value is WILDCARD
        ]
        for variable in wildcard_variables:
            improved = self._grounded_query(assignment, require_database=[variable])
            if self._certain(improved, self._marked):
                return False
        return True

    # -- partial answers, multi-wildcards (Theorem 3.1(3)) -------------------

    def _multi_groups(
        self, assignment: dict[Variable, object]
    ) -> dict[Wildcard, list[Variable]]:
        groups: dict[Wildcard, list[Variable]] = {}
        for variable, value in assignment.items():
            if isinstance(value, Wildcard):
                groups.setdefault(value, []).append(variable)
        return groups

    def _identification(
        self, groups: dict[Wildcard, list[Variable]]
    ) -> dict[Variable, Variable]:
        """Identify the variables of every wildcard group with a representative."""
        identify: dict[Variable, Variable] = {}
        for members in groups.values():
            representative = members[0]
            for other in members[1:]:
                identify[other] = representative
        return identify

    def test_partial_multi(self, candidate: Sequence) -> bool:
        """Decide whether ``candidate`` is a partial answer with multi-wildcards."""
        assignment = self._coherent(candidate)
        if assignment is None:
            return False
        for value in candidate:
            if not isinstance(value, Wildcard) and value not in self.database_constants:
                return False
        groups = self._multi_groups(assignment)
        identify = self._identification(groups)
        grounded = self._grounded_query(assignment, identify=identify)
        return self._certain(grounded, self.chase.instance)

    def test_minimal_partial_multi(self, candidate: Sequence) -> bool:
        """Decide whether ``candidate`` is a minimal partial answer with
        multi-wildcards (an element of ``Q(D)^W``)."""
        assignment = self._coherent(candidate)
        if assignment is None or not self.test_partial_multi(candidate):
            return False
        groups = self._multi_groups(assignment)
        identify = self._identification(groups)
        representatives = {w: members[0] for w, members in groups.items()}

        # (a) No wildcard group may be groundable to a database constant.
        for representative in representatives.values():
            improved = self._grounded_query(
                assignment, identify=identify, require_database=[representative]
            )
            if self._certain(improved, self._marked):
                return False

        # (b) No two wildcard groups may be mergeable.
        reps = sorted(representatives.values(), key=lambda v: v.name)
        for i in range(len(reps)):
            for j in range(i + 1, len(reps)):
                merged = dict(identify)
                merged[reps[j]] = reps[i]
                for variable, target in list(merged.items()):
                    if target == reps[j]:
                        merged[variable] = reps[i]
                improved = self._grounded_query(assignment, identify=merged)
                if self._certain(improved, self.chase.instance):
                    return False
        return True


class OMQAllTester:
    """All-testing of complete answers (Theorem 4.1(2)).

    Preprocessing is linear in the data (query-directed chase plus the
    component projections of Proposition 4.2); each test then takes time
    independent of the data.
    """

    def __init__(
        self,
        omq: OMQ,
        database: Database,
        chase: "QueryDirectedChase | None" = None,
    ) -> None:
        if not omq.is_free_connex_acyclic():
            raise QueryError(
                f"{omq.name} is not free-connex acyclic: all-testing in "
                "CD∘Lin is not guaranteed (Theorem 4.6)"
            )
        self.omq = omq
        self.database_constants = frozenset(database.adom())
        self.chase = omq.chase(database, reuse=chase)
        self._tester = FreeConnexAllTester(omq.query, self.chase.instance)

    def test(self, candidate: Sequence) -> bool:
        if any(value not in self.database_constants for value in candidate):
            return False
        return self._tester.test(candidate)

    def __call__(self, candidate: Sequence) -> bool:
        return self.test(candidate)
