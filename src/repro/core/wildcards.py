"""Wildcard tuples, multi-wildcard tuples and their information orders.

Partial answers (Section 2) use the single wildcard ``*`` for "a value that
must exist but whose identity is unknown"; partial answers with
multi-wildcards use ``*1, *2, ...`` where equal wildcards denote the same
null and distinct wildcards may or may not.  This module provides

* the wildcard value types,
* the preference orders ``⪯`` / ``≺`` on wildcard and multi-wildcard tuples,
* conversion of answer tuples over the chase (which contain labelled nulls)
  into (multi-)wildcard tuples, and
* the *balls* and *cones* of Section 6 used by the multi-wildcard
  enumeration algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Iterator, Sequence

from repro.data.terms import is_null


class _SingleWildcard:
    """The single wildcard symbol ``*`` (a process-wide singleton)."""

    _instance: "_SingleWildcard | None" = None

    def __new__(cls) -> "_SingleWildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "*"

    def __reduce__(self):  # keep the singleton under pickling
        return (_SingleWildcard, ())


WILDCARD = _SingleWildcard()


@dataclass(frozen=True, slots=True, order=True)
class Wildcard:
    """A numbered wildcard ``*k`` for multi-wildcard tuples (k >= 1)."""

    index: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"*{self.index}"


def is_single_wildcard(value: object) -> bool:
    return value is WILDCARD


def is_multi_wildcard(value: object) -> bool:
    return isinstance(value, Wildcard)


def is_wildcard(value: object) -> bool:
    return value is WILDCARD or isinstance(value, Wildcard)


# ---------------------------------------------------------------------------
# Single-wildcard tuples
# ---------------------------------------------------------------------------


def collapse_nulls(answer: Sequence) -> tuple:
    """``ā*_N``: replace every labelled null of an answer tuple by ``*``."""
    return tuple(WILDCARD if is_null(value) else value for value in answer)


def leq_partial(left: Sequence, right: Sequence) -> bool:
    """``left ⪯ right``: ``right`` is obtained by replacing values with ``*``."""
    if len(left) != len(right):
        return False
    return all(r == l or r is WILDCARD for l, r in zip(left, right))


def lt_partial(left: Sequence, right: Sequence) -> bool:
    """``left ≺ right`` (strictly more informative)."""
    return tuple(left) != tuple(right) and leq_partial(left, right)


def minimal_partial_tuples(tuples: Iterable[Sequence]) -> set[tuple]:
    """The ``≺``-minimal elements of a set of wildcard tuples."""
    pool = {tuple(t) for t in tuples}
    return {
        candidate
        for candidate in pool
        if not any(lt_partial(other, candidate) for other in pool if other != candidate)
    }


def wildcard_positions(candidate: Sequence) -> tuple[int, ...]:
    return tuple(i for i, value in enumerate(candidate) if is_wildcard(value))


# ---------------------------------------------------------------------------
# Multi-wildcard tuples
# ---------------------------------------------------------------------------


def collapse_nulls_multi(answer: Sequence) -> tuple:
    """``ā^W_N``: consistently replace nulls by ``*1, *2, ...``.

    Equal nulls receive the same wildcard; wildcards are numbered in order of
    first occurrence, which is the normal form required of multi-wildcard
    tuples.
    """
    mapping: dict[object, Wildcard] = {}
    result = []
    for value in answer:
        if is_null(value):
            if value not in mapping:
                mapping[value] = Wildcard(len(mapping) + 1)
            result.append(mapping[value])
        else:
            result.append(value)
    return tuple(result)


def is_normalized_multi(candidate: Sequence) -> bool:
    """True if wildcard indices appear in first-occurrence order 1, 2, ..."""
    next_expected = 1
    seen: set[int] = set()
    for value in candidate:
        if isinstance(value, Wildcard):
            if value.index in seen:
                continue
            if value.index != next_expected:
                return False
            seen.add(value.index)
            next_expected += 1
    return True


def normalize_multi(candidate: Sequence) -> tuple:
    """Renumber wildcards into first-occurrence order."""
    mapping: dict[int, Wildcard] = {}
    result = []
    for value in candidate:
        if isinstance(value, Wildcard):
            if value.index not in mapping:
                mapping[value.index] = Wildcard(len(mapping) + 1)
            result.append(mapping[value.index])
        else:
            result.append(value)
    return tuple(result)


def leq_multi(left: Sequence, right: Sequence) -> bool:
    """``left ⪯ right`` for multi-wildcard tuples.

    Position-wise, ``right`` either equals ``left`` or carries a wildcard;
    moreover equal wildcards in ``right`` must correspond to equal values in
    ``left`` (wildcard merging only loses information).
    """
    if len(left) != len(right):
        return False
    for l, r in zip(left, right):
        if r == l:
            continue
        if not isinstance(r, Wildcard):
            return False
    groups: dict[Wildcard, object] = {}
    for l, r in zip(left, right):
        if isinstance(r, Wildcard):
            if r in groups and groups[r] != l:
                return False
            groups[r] = l
    return True


def lt_multi(left: Sequence, right: Sequence) -> bool:
    return tuple(left) != tuple(right) and leq_multi(left, right)


def minimal_multi_tuples(tuples: Iterable[Sequence]) -> set[tuple]:
    """The ``≺``-minimal elements of a set of multi-wildcard tuples."""
    pool = {tuple(t) for t in tuples}
    return {
        candidate
        for candidate in pool
        if not any(lt_multi(other, candidate) for other in pool if other != candidate)
    }


def multi_to_single(candidate: Sequence) -> tuple:
    """Collapse every numbered wildcard to the single wildcard ``*``."""
    return tuple(
        WILDCARD if isinstance(value, Wildcard) else value for value in candidate
    )


# ---------------------------------------------------------------------------
# Balls and cones (Section 6)
# ---------------------------------------------------------------------------


def set_partitions(items: Sequence) -> Iterator[list[list]]:
    """All set partitions of ``items`` (the restricted-growth enumeration)."""
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in set_partitions(rest):
        for index in range(len(partition)):
            yield partition[:index] + [[first] + partition[index]] + partition[index + 1 :]
        yield [[first]] + partition


def ball(candidate: Sequence) -> set[tuple]:
    """``B^W(ā*)``: multi-wildcard tuples that collapse to the given
    single-wildcard tuple.

    Each element keeps the constants of ``candidate`` and distributes its
    ``*`` positions over numbered wildcards according to some set partition.
    """
    candidate = tuple(candidate)
    positions = [i for i, value in enumerate(candidate) if value is WILDCARD]
    result: set[tuple] = set()
    for partition in set_partitions(positions):
        draft = list(candidate)
        for group_number, group in enumerate(partition, start=1):
            for position in group:
                draft[position] = Wildcard(group_number)
        result.add(normalize_multi(draft))
    return result


def cone(candidate: Sequence) -> set[tuple]:
    """``cone^W(ā*)``: the union of the balls of all ``b̄* ⪰ ā*``."""
    candidate = tuple(candidate)
    constant_positions = [
        i for i, value in enumerate(candidate) if value is not WILDCARD
    ]
    result: set[tuple] = set()
    for promote_count in range(len(constant_positions) + 1):
        for promoted in combinations(constant_positions, promote_count):
            weakened = list(candidate)
            for position in promoted:
                weakened[position] = WILDCARD
            result |= ball(weakened)
    return result


def strictly_less_informative_multi(candidate: Sequence) -> set[tuple]:
    """All normalized multi-wildcard tuples ``b̄`` with ``candidate ≺ b̄``.

    Used by the pruning step of Algorithm 2; the count depends only on the
    tuple length, not on the data.
    """
    candidate = tuple(candidate)
    result: set[tuple] = set()
    single = multi_to_single(candidate)
    for weaker in cone(single):
        if lt_multi(candidate, weaker):
            result.add(weaker)
    return result
