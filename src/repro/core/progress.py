"""Algorithm 1: DelayClin enumeration of minimal partial answers (Thm 5.2).

The enumerator works on the reduced full query ``q1`` / database ``D1`` of
:mod:`repro.enumeration.reduction` built over the query-directed chase with
labelled nulls retained.  Its preprocessing phase computes, for every block
atom ``v`` and every assignment ``h`` of ``v``'s predecessor variables to
non-null constants, the list ``trees(v, h)`` of *progress trees*: subtrees of
the join tree together with partial assignments that describe an "excursion"
of the query into the null part of the chase.  The lists are kept in
*database-preferring order* (fewer covered atoms, then fewer wildcards).

The enumeration phase is the recursive procedure of Figure "Algorithm 1":
walk the join tree in preorder, at each not-yet-covered atom pick the next
progress tree from the appropriate list, and after emitting an answer prune
every progress tree that is strictly more wildcarded than the one just used
— which is exactly what makes later answers that would be dominated by the
current one unreachable, so that only minimal partial answers are produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Iterator

from repro.data.instance import Database, Instance
from repro.data.terms import is_null
from repro.cq.atoms import Atom, Variable
from repro.cq.query import ConjunctiveQuery, QueryError
from repro.core.omq import OMQ
from repro.core.wildcards import WILDCARD
from repro.enumeration.reduction import ReducedQuery, build_reduced_query


# ---------------------------------------------------------------------------
# Progress trees and their bookkeeping structures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProgressTree:
    """A progress tree ``(p, g)``: a subtree of ``T1`` plus an assignment.

    ``atoms`` is the (frozen) set of covered block atoms, ``root`` its root
    and ``assignment`` maps every variable of the covered atoms to a database
    constant or the wildcard.
    """

    root: Atom
    atoms: frozenset[Atom]
    assignment: tuple[tuple[Variable, object], ...]

    def mapping(self) -> dict[Variable, object]:
        return dict(self.assignment)

    def star_count(self) -> int:
        return sum(1 for _, value in self.assignment if value is WILDCARD)

    def sort_key(self) -> tuple[int, int]:
        """A linear extension of the database-preferring order ``≺db``."""
        return (len(self.atoms), self.star_count())


class _TreeNode:
    """A node of the doubly-linked ``trees(v, h)`` list."""

    __slots__ = ("tree", "prev", "next", "removed")

    def __init__(self, tree: ProgressTree | None = None) -> None:
        self.tree = tree
        self.prev: "_TreeNode | None" = None
        self.next: "_TreeNode | None" = None
        self.removed = False


class _TreeList:
    """A doubly-linked list supporting O(1) removal of known nodes.

    Removal keeps the removed node's ``next`` pointer intact so that an
    iteration that is currently paused on the node can continue; this mirrors
    the lookup-table/linked-list combination described in Section 5.
    """

    def __init__(self) -> None:
        self.head = _TreeNode()
        self.tail = _TreeNode()
        self.head.next = self.tail
        self.tail.prev = self.head

    def append(self, tree: ProgressTree) -> _TreeNode:
        node = _TreeNode(tree)
        last = self.tail.prev
        last.next = node
        node.prev = last
        node.next = self.tail
        self.tail.prev = node
        return node

    def remove(self, node: _TreeNode) -> None:
        if node.removed:
            return
        node.removed = True
        node.prev.next = node.next
        node.next.prev = node.prev
        # node.next is intentionally left untouched.

    def __iter__(self) -> Iterator[ProgressTree]:
        node = self.head.next
        while node is not self.tail:
            if not node.removed:
                yield node.tree
            node = node.next

    def __len__(self) -> int:
        return sum(1 for _ in self)


@dataclass(frozen=True)
class _Subtree:
    """A connected subtree of the block join tree (root plus atom set)."""

    root: Atom
    atoms: frozenset[Atom]


# ---------------------------------------------------------------------------
# The CQ-level enumerator (Proposition E.1)
# ---------------------------------------------------------------------------


class PartialAnswerEnumerator:
    """Enumerate the minimal partial answers of a CQ over an instance.

    The instance is expected to be chase-like (a database part plus
    constant-size null blocks); nulls in the instance become wildcards in
    the output.  The query must be acyclic and free-connex acyclic.
    """

    def __init__(self, query: ConjunctiveQuery, instance: Instance) -> None:
        self.original_query = query
        self.deduplicated, self._head_positions = query.deduplicated_head()
        self.reduced: ReducedQuery = build_reduced_query(
            self.deduplicated, instance, keep_nulls=True
        )
        self._preorder: list[Atom] = []
        self._pred_vars: dict[Atom, tuple[Variable, ...]] = {}
        self._children: dict[Atom, list[Atom]] = {}
        self._indexes: dict[Atom, dict[tuple, list[tuple]]] = {}
        self._trees: dict[tuple, _TreeList] = {}
        self._locator: dict[tuple, _TreeNode] = {}
        self._subtrees: list[_Subtree] = []
        if not self.reduced.is_empty and self.reduced.join_tree is not None:
            self._prepare_structure()
            self._build_progress_trees()
            self._enumerate_subtrees()

    # -- preprocessing ------------------------------------------------------

    def _prepare_structure(self) -> None:
        tree = self.reduced.join_tree
        self._preorder = tree.preorder()
        for atom in self._preorder:
            relation = self.reduced.relations[atom]
            parent = tree.parent(atom)
            if parent is None:
                pred: tuple[Variable, ...] = ()
            else:
                pred = tuple(v for v in relation.variables if v in parent.variables())
            self._pred_vars[atom] = pred
            self._children[atom] = tree.children(atom)
            self._indexes[atom] = relation.index_on(pred)

    def _extend_tree(
        self, atom: Atom, assignment: dict[Variable, object]
    ) -> list[tuple[frozenset[Atom], dict[Variable, object]]]:
        """All ways of extending ``atom``'s fact into a full excursion.

        ``assignment`` covers the variables of ``atom``.  A child of ``atom``
        must be included exactly when one of its predecessor variables is
        mapped to a null (progress-tree condition (2)); included children are
        matched against compatible rows of their block relation, which — the
        nulls living in constant-size chase blocks — yields constantly many
        combinations per root fact.
        """
        required_children = []
        for child in self._children[atom]:
            shared = self._pred_vars[child]
            if any(is_null(assignment[x]) for x in shared):
                required_children.append(child)
        if not required_children:
            return [(frozenset([atom]), dict(assignment))]

        per_child_options: list[list[tuple[frozenset[Atom], dict[Variable, object]]]] = []
        for child in required_children:
            relation = self.reduced.relations[child]
            shared = self._pred_vars[child]
            key = tuple(assignment[x] for x in shared)
            options: list[tuple[frozenset[Atom], dict[Variable, object]]] = []
            for row in self._indexes[child].get(key, ()):
                child_assignment = dict(zip(relation.variables, row))
                options.extend(self._extend_tree(child, child_assignment))
            if not options:
                return []
            per_child_options.append(options)

        results: list[tuple[frozenset[Atom], dict[Variable, object]]] = []
        for combination in product(*per_child_options):
            atoms: set[Atom] = {atom}
            merged = dict(assignment)
            for child_atoms, child_map in combination:
                atoms |= child_atoms
                merged.update(child_map)
            results.append((frozenset(atoms), merged))
        return results

    def _build_progress_trees(self) -> None:
        for atom in self._preorder:
            relation = self.reduced.relations[atom]
            pred = self._pred_vars[atom]
            pending: dict[tuple, dict[tuple, ProgressTree]] = {}
            for row in relation.tuples:
                assignment = dict(zip(relation.variables, row))
                if any(is_null(assignment[x]) for x in pred):
                    continue  # condition (1): roots need constant predecessors
                key = (atom, tuple(assignment[x] for x in pred))
                for atoms, mapping in self._extend_tree(atom, assignment):
                    wildcarded = tuple(
                        sorted(
                            (
                                (variable, WILDCARD if is_null(value) else value)
                                for variable, value in mapping.items()
                            ),
                            key=lambda item: item[0].name,
                        )
                    )
                    tree = ProgressTree(root=atom, atoms=atoms, assignment=wildcarded)
                    pending.setdefault(key, {})[(atoms, wildcarded)] = tree
            for key, candidates in pending.items():
                ordered = sorted(candidates.values(), key=ProgressTree.sort_key)
                tree_list = self._trees.setdefault(key, _TreeList())
                for tree in ordered:
                    node = tree_list.append(tree)
                    self._locator[(key, tree.atoms, tree.assignment)] = node

    def _enumerate_subtrees(self) -> None:
        """All connected subtrees of the block join tree (data independent)."""

        def rooted_at(atom: Atom) -> list[frozenset[Atom]]:
            options_per_child: list[list[frozenset[Atom] | None]] = []
            for child in self._children[atom]:
                child_subtrees: list[frozenset[Atom] | None] = [None]
                child_subtrees.extend(rooted_at(child))
                options_per_child.append(child_subtrees)
            results: list[frozenset[Atom]] = []
            for combination in product(*options_per_child) if options_per_child else [()]:
                atoms: set[Atom] = {atom}
                for chosen in combination:
                    if chosen is not None:
                        atoms |= chosen
                results.append(frozenset(atoms))
            return results

        for atom in self._preorder:
            for atoms in rooted_at(atom):
                self._subtrees.append(_Subtree(root=atom, atoms=atoms))

    # -- enumeration ----------------------------------------------------------

    def is_empty(self) -> bool:
        return self.reduced.is_empty

    def _emit(self, assignment: dict[Variable, object]) -> tuple:
        dedup_head = self.deduplicated.answer_variables
        reduced_tuple = tuple(assignment[v] for v in dedup_head)
        return tuple(reduced_tuple[p] for p in self._head_positions)

    def _next_atom(self, start: int, assignment: dict[Variable, object]) -> int | None:
        for index in range(start, len(self._preorder)):
            atom = self._preorder[index]
            relation = self.reduced.relations[atom]
            if any(variable not in assignment for variable in relation.variables):
                return index
        return None

    def _prune(self, assignment: dict[Variable, object]) -> None:
        for subtree in self._subtrees:
            pred = self._pred_vars[subtree.root]
            if any(assignment.get(x) is WILDCARD or x not in assignment for x in pred):
                continue
            pred_key = tuple(assignment[x] for x in pred)
            list_key = (subtree.root, pred_key)
            if list_key not in self._trees:
                continue
            variables: set[Variable] = set()
            for atom in subtree.atoms:
                variables |= set(self.reduced.relations[atom].variables)
            if any(variable not in assignment for variable in variables):
                continue
            base = {variable: assignment[variable] for variable in variables}
            non_star = sorted(
                (v for v in variables if base[v] is not WILDCARD),
                key=lambda v: v.name,
            )
            for size in range(1, len(non_star) + 1):
                for chosen in combinations(non_star, size):
                    candidate = dict(base)
                    for variable in chosen:
                        candidate[variable] = WILDCARD
                    frozen = tuple(
                        sorted(candidate.items(), key=lambda item: item[0].name)
                    )
                    node = self._locator.get((list_key, subtree.atoms, frozen))
                    if node is not None and not node.removed:
                        self._trees[list_key].remove(node)

    def enumerate(self) -> Iterator[tuple]:
        """Yield exactly the minimal partial answers, without repetition."""
        if self.reduced.is_empty:
            return
        if not self._preorder:
            yield ()
            return

        assignment: dict[Variable, object] = {}

        def walk(index: int | None) -> Iterator[tuple]:
            if index is None:
                yield self._emit(assignment)
                self._prune(assignment)
                return
            atom = self._preorder[index]
            pred = self._pred_vars[atom]
            pred_key = tuple(assignment[x] for x in pred)
            tree_list = self._trees.get((atom, pred_key))
            if tree_list is None:
                return
            node = tree_list.head.next
            while node is not tree_list.tail:
                if node.removed:
                    node = node.next
                    continue
                mapping = node.tree.mapping()
                added = [v for v in mapping if v not in assignment]
                assignment.update(mapping)
                yield from walk(self._next_atom(index + 1, assignment))
                for variable in added:
                    del assignment[variable]
                node = node.next

        yield from walk(self._next_atom(0, assignment))

    def __iter__(self) -> Iterator[tuple]:
        return self.enumerate()


# ---------------------------------------------------------------------------
# The OMQ-level enumerator (Theorem 5.2) and Proposition 2.1
# ---------------------------------------------------------------------------


class MinimalPartialAnswerEnumerator:
    """Enumerate ``Q(D)*`` for an acyclic, free-connex acyclic OMQ."""

    def __init__(self, omq: OMQ, database: Database, strict: bool = True) -> None:
        if strict and not (omq.is_acyclic() and omq.is_free_connex_acyclic()):
            raise QueryError(
                f"{omq.name} is not acyclic and free-connex acyclic: DelayClin "
                "enumeration of minimal partial answers is not guaranteed"
            )
        self.omq = omq
        self.database = database
        self.chase = omq.chase(database)
        self._inner = PartialAnswerEnumerator(omq.query, self.chase.instance)

    def is_empty(self) -> bool:
        return self._inner.is_empty()

    def enumerate(self) -> Iterator[tuple]:
        yield from self._inner.enumerate()

    def __iter__(self) -> Iterator[tuple]:
        return self.enumerate()

    def enumerate_complete_first(self) -> Iterator[tuple]:
        """Enumerate ``Q(D)*`` with all complete answers first (Prop. 2.1).

        Runs the complete-answer enumerator and this enumerator in parallel:
        while the former still produces answers they are forwarded, wildcard
        answers of the latter are buffered, and once the complete enumerator
        is exhausted the buffer and the remaining wildcard answers follow.
        """
        from repro.core.enumeration import CompleteAnswerEnumerator

        complete = CompleteAnswerEnumerator(self.omq, self.database).enumerate()
        partial = self.enumerate()
        buffered: list[tuple] = []

        for complete_answer in complete:
            yield complete_answer
            try:
                candidate = next(partial)
            except StopIteration:
                continue
            if any(value is WILDCARD for value in candidate):
                buffered.append(candidate)
        for candidate in partial:
            if any(value is WILDCARD for value in candidate):
                yield candidate
            elif buffered:
                yield buffered.pop()
        yield from buffered


def enumerate_minimal_partial_answers(
    omq: OMQ, database: Database, strict: bool = True
) -> Iterator[tuple]:
    """One-shot helper for ``Q(D)*``."""
    yield from MinimalPartialAnswerEnumerator(omq, database, strict=strict)
