"""The paper's core contribution: OMQ testing and constant-delay enumeration."""

from repro.core.omq import OMQ
from repro.core.wildcards import (
    WILDCARD,
    Wildcard,
    ball,
    collapse_nulls,
    collapse_nulls_multi,
    cone,
    leq_multi,
    leq_partial,
    lt_multi,
    lt_partial,
    minimal_multi_tuples,
    minimal_partial_tuples,
)
from repro.core.testing import OMQAllTester, OMQSingleTester
from repro.core.enumeration import CompleteAnswerEnumerator, enumerate_complete_answers
from repro.core.progress import (
    MinimalPartialAnswerEnumerator,
    PartialAnswerEnumerator,
    ProgressTree,
    enumerate_minimal_partial_answers,
)
from repro.core.multiwildcard import (
    MultiWildcardEnumerator,
    MultiWildcardOracle,
    enumerate_multiwildcard_answers,
)

__all__ = [
    "OMQ",
    "WILDCARD",
    "Wildcard",
    "OMQAllTester",
    "OMQSingleTester",
    "CompleteAnswerEnumerator",
    "MinimalPartialAnswerEnumerator",
    "MultiWildcardEnumerator",
    "MultiWildcardOracle",
    "PartialAnswerEnumerator",
    "ProgressTree",
    "ball",
    "collapse_nulls",
    "collapse_nulls_multi",
    "cone",
    "enumerate_complete_answers",
    "enumerate_minimal_partial_answers",
    "enumerate_multiwildcard_answers",
    "leq_multi",
    "leq_partial",
    "lt_multi",
    "lt_partial",
    "minimal_multi_tuples",
    "minimal_partial_tuples",
]
