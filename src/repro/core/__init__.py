"""The paper's core contribution: OMQ testing and constant-delay enumeration.

Module-to-paper map:

* :mod:`repro.core.omq` — OMQs ``(O, S, q)`` and evaluation through the
  query-directed chase (Lemma 3.2);
* :mod:`repro.core.enumeration` — complete-answer enumeration in CD∘Lin
  (Theorem 4.1(1));
* :mod:`repro.core.testing` — single-testing (Theorem 3.1) and
  all-testing (Theorem 4.1(2) via Proposition 4.2);
* :mod:`repro.core.wildcards` — partial answers, wildcard orders, balls
  and cones (Sections 2 and 6);
* :mod:`repro.core.progress` — minimal partial answers with a single
  wildcard, DelayClin (Algorithm 1, Theorem 5.2);
* :mod:`repro.core.multiwildcard` — minimal partial answers with
  multi-wildcards (Algorithm 2, Theorem 6.1).
"""

from repro.core.omq import OMQ
from repro.core.wildcards import (
    WILDCARD,
    Wildcard,
    ball,
    collapse_nulls,
    collapse_nulls_multi,
    cone,
    leq_multi,
    leq_partial,
    lt_multi,
    lt_partial,
    minimal_multi_tuples,
    minimal_partial_tuples,
)
from repro.core.testing import OMQAllTester, OMQSingleTester
from repro.core.enumeration import CompleteAnswerEnumerator, enumerate_complete_answers
from repro.core.progress import (
    MinimalPartialAnswerEnumerator,
    PartialAnswerEnumerator,
    ProgressTree,
    enumerate_minimal_partial_answers,
)
from repro.core.multiwildcard import (
    MultiWildcardEnumerator,
    MultiWildcardOracle,
    enumerate_multiwildcard_answers,
)

__all__ = [
    "OMQ",
    "WILDCARD",
    "Wildcard",
    "OMQAllTester",
    "OMQSingleTester",
    "CompleteAnswerEnumerator",
    "MinimalPartialAnswerEnumerator",
    "MultiWildcardEnumerator",
    "MultiWildcardOracle",
    "PartialAnswerEnumerator",
    "ProgressTree",
    "ball",
    "collapse_nulls",
    "collapse_nulls_multi",
    "cone",
    "enumerate_complete_answers",
    "enumerate_minimal_partial_answers",
    "enumerate_multiwildcard_answers",
    "leq_multi",
    "leq_partial",
    "lt_multi",
    "lt_partial",
    "minimal_multi_tuples",
    "minimal_partial_tuples",
]
