"""Algorithm 2: enumeration of minimal partial answers with multi-wildcards.

Theorem 6.1 lifts the single-wildcard enumeration of Section 5 to
multi-wildcards by combining

* the single-wildcard enumerator ``A1`` (:class:`PartialAnswerEnumerator`),
* an all-tester ``A2`` for (not necessarily minimal) partial answers with
  multi-wildcards, and
* the ball / cone machinery of Section 6 with a pruning table that makes
  sure dominated tuples are never emitted.

Our ``A2`` substitute (:class:`MultiWildcardOracle`) answers each distinct
test by a homomorphism search over the chase with the wildcard pattern's
equality constraints and memoises the result; the paper's appendix algorithm
achieves O(1) per test after linear preprocessing, so the delay guarantee of
our implementation is O(||D||) per answer in the worst case (documented in
DESIGN.md), while the produced answer set is exactly ``Q(D)^W``.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.data.instance import Database, Instance
from repro.data.terms import is_null
from repro.cq.atoms import Variable
from repro.cq.homomorphism import all_homomorphisms
from repro.cq.query import ConjunctiveQuery, QueryError
from repro.core.omq import OMQ
from repro.core.progress import PartialAnswerEnumerator
from repro.core.wildcards import (
    Wildcard,
    ball,
    cone,
    minimal_multi_tuples,
    strictly_less_informative_multi,
)


class MultiWildcardOracle:
    """Membership tests for (not necessarily minimal) multi-wildcard answers.

    A tuple ``āW`` belongs to ``q(I)^{W,⪯}_N`` iff some homomorphism of the
    query into the chase maps the constant positions to the given constants
    and the wildcard positions to labelled nulls whose equality pattern is
    exactly the wildcard pattern.  Results are memoised so repeated tests of
    the same tuple are O(1).
    """

    def __init__(self, query: ConjunctiveQuery, instance: Instance) -> None:
        self.query = query
        self.instance = instance
        self._cache: dict[tuple, bool] = {}

    def _check(self, candidate: tuple) -> bool:
        partial: dict[Variable, object] = {}
        groups: dict[Wildcard, list[int]] = {}
        for position, value in enumerate(candidate):
            variable = self.query.answer_variables[position]
            if isinstance(value, Wildcard):
                groups.setdefault(value, []).append(position)
            else:
                if variable in partial and partial[variable] != value:
                    return False
                partial[variable] = value
        group_variables: dict[Wildcard, list[Variable]] = {
            wildcard: [self.query.answer_variables[p] for p in positions]
            for wildcard, positions in groups.items()
        }
        for homomorphism in all_homomorphisms(self.query, self.instance, partial):
            values = {}
            consistent = True
            for wildcard, variables in group_variables.items():
                group_values = {homomorphism[v] for v in variables}
                if len(group_values) != 1:
                    consistent = False
                    break
                value = group_values.pop()
                if not is_null(value):
                    consistent = False
                    break
                values[wildcard] = value
            if not consistent:
                continue
            if len(set(values.values())) != len(values):
                continue  # distinct wildcards must denote distinct nulls
            return True
        return False

    def test(self, candidate: Sequence) -> bool:
        candidate = tuple(candidate)
        if candidate not in self._cache:
            self._cache[candidate] = self._check(candidate)
        return self._cache[candidate]


class MultiWildcardEnumerator:
    """Enumerate ``Q(D)^W`` for an acyclic, free-connex acyclic OMQ."""

    def __init__(self, omq: OMQ, database: Database, strict: bool = True) -> None:
        if strict and not (omq.is_acyclic() and omq.is_free_connex_acyclic()):
            raise QueryError(
                f"{omq.name} is not acyclic and free-connex acyclic: DelayClin "
                "enumeration of multi-wildcard answers is not guaranteed"
            )
        self.omq = omq
        self.database = database
        self.chase = omq.chase(database)
        self._single = PartialAnswerEnumerator(omq.query, self.chase.instance)
        self._oracle = MultiWildcardOracle(omq.query, self.chase.instance)

    def is_empty(self) -> bool:
        return self._single.is_empty()

    def enumerate(self) -> Iterator[tuple]:
        """Yield exactly the minimal partial answers with multi-wildcards."""
        marked: set[tuple] = set()
        pending: dict[tuple, None] = {}

        for single_answer in self._single.enumerate():
            cone_members = cone(single_answer)
            admitted = []
            for candidate in sorted(cone_members, key=repr):
                if candidate in marked:
                    continue
                if not self._oracle.test(candidate):
                    marked.add(candidate)
                    continue
                marked.add(candidate)
                pending[candidate] = None
                admitted.append(candidate)
                for dominated in strictly_less_informative_multi(candidate):
                    marked.add(dominated)
                    pending.pop(dominated, None)

            ball_members = [
                candidate
                for candidate in ball(single_answer)
                if self._oracle.test(candidate)
            ]
            chosen = None
            for candidate in sorted(minimal_multi_tuples(ball_members), key=repr):
                chosen = candidate
                break
            if chosen is not None:
                yield chosen
                pending.pop(chosen, None)

        yield from pending

    def __iter__(self) -> Iterator[tuple]:
        return self.enumerate()


def enumerate_multiwildcard_answers(
    omq: OMQ, database: Database, strict: bool = True
) -> Iterator[tuple]:
    """One-shot helper for ``Q(D)^W``."""
    yield from MultiWildcardEnumerator(omq, database, strict=strict)
