"""Ontology-mediated queries ``Q = (O, S, q)`` and their evaluation modes.

An OMQ pairs an ontology with a data schema and a conjunctive query.  The
structural properties (acyclic, weakly acyclic, free-connex acyclic,
self-join free, ...) are those of the CQ, lifted to the OMQ as in the paper.
Evaluation always goes through the query-directed chase: ``Q(D)`` is the set
of answers of ``q`` on ``ch^q_O(D)`` that use only database constants
(Lemma 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.instance import Database
from repro.data.schema import Schema
from repro.data.terms import is_null
from repro.chase.query_directed import QueryDirectedChase, query_directed_chase
from repro.cq.acyclicity import (
    is_acyclic,
    is_free_connex_acyclic,
    is_weakly_acyclic,
)
from repro.cq.homomorphism import evaluate
from repro.cq.query import ConjunctiveQuery
from repro.tgds.ontology import Ontology


@dataclass(frozen=True)
class OMQ:
    """An ontology-mediated query ``(O, S, q)``."""

    ontology: Ontology
    data_schema: Schema
    query: ConjunctiveQuery
    name: str = "Q"

    @classmethod
    def from_parts(
        cls,
        ontology: Ontology,
        query: ConjunctiveQuery,
        data_schema: Schema | None = None,
        name: str = "Q",
    ) -> "OMQ":
        """Build an OMQ; the data schema defaults to every symbol of O and q."""
        if data_schema is None:
            data_schema = ontology.schema().union(query.schema())
        return cls(ontology=ontology, data_schema=data_schema, query=query, name=name)

    # -- lifted structural properties -------------------------------------

    @property
    def arity(self) -> int:
        return self.query.arity

    def is_acyclic(self) -> bool:
        return is_acyclic(self.query)

    def is_weakly_acyclic(self) -> bool:
        return is_weakly_acyclic(self.query)

    def is_free_connex_acyclic(self) -> bool:
        return is_free_connex_acyclic(self.query)

    def is_self_join_free(self) -> bool:
        return self.query.is_self_join_free()

    def is_guarded(self) -> bool:
        return self.ontology.is_guarded()

    def is_eli(self) -> bool:
        return self.ontology.is_eli()

    def validate_database(self, database: Database) -> None:
        """Check that every fact of the database conforms to the data schema."""
        for fact in database:
            self.data_schema.validate_fact(fact)

    # -- evaluation ---------------------------------------------------------

    def chase(
        self,
        database: Database,
        null_depth: int | None = None,
        reuse: QueryDirectedChase | None = None,
    ) -> QueryDirectedChase:
        """The query-directed chase ``ch^q_O(D)``.

        ``reuse`` may hold a current, at-least-as-deep chase of the same
        database and ontology to share instead of recomputing.
        """
        return query_directed_chase(
            database, self.ontology, self.query, null_depth=null_depth, reuse=reuse
        )

    def certain_answers(self, database: Database) -> set[tuple]:
        """``Q(D)``: the complete (certain) answers on ``database``.

        This is the straightforward (non constant-delay) evaluation used as a
        reference; the enumeration classes in :mod:`repro.core.enumeration`
        provide the two-phase algorithms of the paper.
        """
        chased = self.chase(database)
        answers = evaluate(self.query, chased.instance)
        return {
            answer
            for answer in answers
            if not any(is_null(value) for value in answer)
        }

    def is_empty_on(self, database: Database) -> bool:
        return not self.certain_answers(database)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OMQ({self.name}: {len(self.ontology)} TGDs, "
            f"query {self.query.name}/{self.arity})"
        )
