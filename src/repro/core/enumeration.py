"""CD∘Lin enumeration of complete answers to OMQs (Theorem 4.1(1)).

The preprocessing phase computes the query-directed chase and the reduced
full query of :mod:`repro.enumeration.reduction` (both linear in the data);
the enumeration phase is the constant-delay walk of
:class:`repro.enumeration.cdlin.CDLinEnumerator`, restricted to answers over
database constants.

The two phases are separable: callers that amortize preprocessing across
many evaluations (notably :class:`repro.engine.QueryEngine`) pass a shared
``chase`` and a precomputed free-connex ``decomposition`` instead of letting
the constructor recompute them per call.
"""

from __future__ import annotations

from typing import Iterator

from repro.data.instance import Database
from repro.chase.query_directed import QueryDirectedChase
from repro.cq.query import QueryError
from repro.core.omq import OMQ
from repro.enumeration.cdlin import CDLinEnumerator
from repro.yannakakis.decomposition import FreeConnexDecomposition


class CompleteAnswerEnumerator:
    """Two-phase enumerator for the complete answers of an OMQ.

    ``chase`` may carry a current, sufficiently deep query-directed chase of
    the same database (it is reused instead of recomputed), and
    ``decomposition`` the free-connex decomposition of the head-deduplicated
    query; both are what a prepared query caches.
    """

    def __init__(
        self,
        omq: OMQ,
        database: Database,
        strict: bool = True,
        chase: QueryDirectedChase | None = None,
        decomposition: FreeConnexDecomposition | None = None,
    ) -> None:
        if strict and not (omq.is_acyclic() and omq.is_free_connex_acyclic()):
            raise QueryError(
                f"{omq.name} is not acyclic and free-connex acyclic: CD∘Lin "
                "enumeration is not guaranteed (Theorems 4.3 and 4.4)"
            )
        self.omq = omq
        self.database = database
        self.chase = omq.chase(database, reuse=chase)
        self._enumerator = CDLinEnumerator(
            omq.query,
            self.chase.instance,
            keep_nulls=False,
            decomposition=decomposition,
        )

    def is_empty(self) -> bool:
        return self._enumerator.is_empty()

    def enumerate(self) -> Iterator[tuple]:
        """Yield every complete answer exactly once."""
        yield from self._enumerator.enumerate()

    def __iter__(self) -> Iterator[tuple]:
        return self.enumerate()

    def count(self) -> int:
        return sum(1 for _ in self.enumerate())


def enumerate_complete_answers(
    omq: OMQ, database: Database, strict: bool = True
) -> Iterator[tuple]:
    """One-shot helper: preprocess and enumerate ``Q(D)``."""
    yield from CompleteAnswerEnumerator(omq, database, strict=strict)
