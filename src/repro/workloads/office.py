"""The office workload: a scalable version of Example 1.1 of the paper.

The ontology states that every researcher has an office, that whatever is an
office's target is an office, and that every office is in a building; the
query asks for researchers with their office and building.  Databases are
generated with configurable completeness, so partial answers with one or two
wildcards appear in controlled proportions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.facts import Fact
from repro.data.instance import Database
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.core.omq import OMQ
from repro.tgds.ontology import Ontology
from repro.tgds.parser import parse_ontology

_OFFICE_ONTOLOGY = """
Researcher(x) -> HasOffice(x, y)
HasOffice(x, y) -> Office(y)
Office(x) -> InBuilding(x, y)
"""


def office_ontology() -> Ontology:
    """The three ELI TGDs of Example 1.1."""
    return parse_ontology(_OFFICE_ONTOLOGY, name="office")


def office_query() -> ConjunctiveQuery:
    """``q(x1, x2, x3) ← HasOffice(x1, x2) ∧ InBuilding(x2, x3)``."""
    return parse_query("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")


def office_omq() -> OMQ:
    """The OMQ of Example 1.1 (acyclic and free-connex acyclic)."""
    return OMQ.from_parts(office_ontology(), office_query(), name="Q_office")


@dataclass(frozen=True)
class OfficeProfile:
    """Knobs controlling how complete the generated database is."""

    office_probability: float = 0.7
    building_probability: float = 0.7
    buildings_per_offices: int = 5


def generate_office_database(
    researchers: int,
    profile: OfficeProfile | None = None,
    seed: int = 0,
) -> Database:
    """Generate an office database with ``researchers`` researcher constants.

    A fraction of the researchers get an explicit office fact and a fraction
    of those offices get an explicit building; the rest is left to the
    ontology, which is what produces wildcard answers.
    """
    profile = profile or OfficeProfile()
    rng = random.Random(seed)
    facts: list[Fact] = []
    buildings = max(1, researchers // max(1, profile.buildings_per_offices))
    for index in range(researchers):
        person = f"person{index}"
        facts.append(Fact("Researcher", (person,)))
        if rng.random() < profile.office_probability:
            office = f"office{index}"
            facts.append(Fact("HasOffice", (person, office)))
            if rng.random() < profile.building_probability:
                building = f"building{rng.randrange(buildings)}"
                facts.append(Fact("InBuilding", (office, building)))
    return Database(facts)
