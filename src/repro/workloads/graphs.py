"""Random graph generation for the triangle lower-bound experiments."""

from __future__ import annotations

import random


def random_graph(
    vertices: int, edges: int, seed: int = 0, avoid_triangles: bool = False
) -> list[tuple[str, str]]:
    """A random simple undirected graph as a list of edges.

    With ``avoid_triangles`` the generator only keeps edges that do not close
    a triangle, producing (locally) triangle-free graphs — the hard case for
    detection, since the search cannot stop early.
    """
    rng = random.Random(seed)
    adjacency: dict[str, set[str]] = {f"v{i}": set() for i in range(vertices)}
    names = list(adjacency)
    edge_list: list[tuple[str, str]] = []
    seen: set[frozenset] = set()
    attempts = 0
    while len(edge_list) < edges and attempts < 50 * edges:
        attempts += 1
        u, v = rng.sample(names, 2)
        key = frozenset((u, v))
        if key in seen:
            continue
        if avoid_triangles and (adjacency[u] & adjacency[v]):
            continue
        seen.add(key)
        adjacency[u].add(v)
        adjacency[v].add(u)
        edge_list.append((u, v))
    return edge_list
