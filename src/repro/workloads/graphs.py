"""Random graph workloads: edge lists and an OMQ-shaped path scenario.

:func:`random_graph` feeds the triangle lower-bound experiments (E9);
:func:`graph_omq` / :func:`generate_graph_database` package the same
generator as a registry workload — a two-step path query over an
ontology-free edge relation, full and acyclic, hence free-connex and
enumerable with constant delay.
"""

from __future__ import annotations

import random

from repro.core.omq import OMQ
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.data.facts import Fact
from repro.data.instance import Database
from repro.tgds.ontology import Ontology


def random_graph(
    vertices: int, edges: int, seed: int = 0, avoid_triangles: bool = False
) -> list[tuple[str, str]]:
    """A random simple undirected graph as a list of edges.

    With ``avoid_triangles`` the generator only keeps edges that do not close
    a triangle, producing (locally) triangle-free graphs — the hard case for
    detection, since the search cannot stop early.
    """
    rng = random.Random(seed)
    adjacency: dict[str, set[str]] = {f"v{i}": set() for i in range(vertices)}
    names = list(adjacency)
    edge_list: list[tuple[str, str]] = []
    if vertices < 2:
        return edge_list
    seen: set[frozenset] = set()
    attempts = 0
    while len(edge_list) < edges and attempts < 50 * edges:
        attempts += 1
        u, v = rng.sample(names, 2)
        key = frozenset((u, v))
        if key in seen:
            continue
        if avoid_triangles and (adjacency[u] & adjacency[v]):
            continue
        seen.add(key)
        adjacency[u].add(v)
        adjacency[v].add(u)
        edge_list.append((u, v))
    return edge_list


def graph_ontology() -> Ontology:
    """The graph workload has no TGDs (it exercises the ontology-free path)."""
    return Ontology((), name="graph")


def graph_query() -> ConjunctiveQuery:
    """Two-step paths: full, acyclic and therefore free-connex acyclic."""
    return parse_query("path(x, y, z) :- E(x, y), E(y, z)")


def graph_omq() -> OMQ:
    """The path OMQ over an empty ontology."""
    return OMQ.from_parts(graph_ontology(), graph_query(), name="Q_graph")


def generate_graph_database(vertices: int, seed: int = 0, edges_per_vertex: int = 2) -> Database:
    """A random graph as an ``E`` relation (both orientations per edge)."""
    facts: list[Fact] = []
    for u, v in random_graph(vertices, edges_per_vertex * vertices, seed=seed):
        facts.append(Fact("E", (u, v)))
        facts.append(Fact("E", (v, u)))
    return Database(facts)
