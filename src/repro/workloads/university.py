"""A LUBM-flavoured university workload over an ELI ontology.

This is the OBDA-style scenario the paper's introduction motivates: the
ontology enriches the vocabulary (faculty hierarchy, implied affiliations)
and fills in missing facts with existentials, so queries over incomplete
student/advisor data return both complete and partial answers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.facts import Fact
from repro.data.instance import Database
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.core.omq import OMQ
from repro.tgds.ontology import Ontology
from repro.tgds.parser import parse_ontology

_UNIVERSITY_ONTOLOGY = """
Professor(x) -> Faculty(x)
Lecturer(x) -> Faculty(x)
Faculty(x) -> WorksFor(x, y)
WorksFor(x, y) -> Department(y)
Department(x) -> SubOrgOf(x, y)
GradStudent(x) -> HasAdvisor(x, y)
HasAdvisor(x, y) -> Faculty(y)
"""


def university_ontology() -> Ontology:
    """Seven ELI TGDs modelling a small university domain."""
    return parse_ontology(_UNIVERSITY_ONTOLOGY, name="university")


def university_query() -> ConjunctiveQuery:
    """Students with their advisor and the advisor's department."""
    return parse_query(
        "q(student, advisor, dept) :- HasAdvisor(student, advisor), "
        "WorksFor(advisor, dept)"
    )


def university_omq() -> OMQ:
    """The university OMQ (acyclic, free-connex acyclic, ELI ontology)."""
    return OMQ.from_parts(university_ontology(), university_query(), name="Q_univ")


@dataclass(frozen=True)
class UniversityProfile:
    """Knobs controlling the shape of the generated university data."""

    students_per_professor: int = 5
    departments: int = 8
    advisor_probability: float = 0.7
    affiliation_probability: float = 0.6


def generate_university_database(
    students: int,
    profile: UniversityProfile | None = None,
    seed: int = 0,
) -> Database:
    """Generate a university database with ``students`` graduate students."""
    profile = profile or UniversityProfile()
    rng = random.Random(seed)
    professors = max(1, students // max(1, profile.students_per_professor))
    facts: list[Fact] = []
    for index in range(professors):
        professor = f"prof{index}"
        facts.append(Fact("Professor", (professor,)))
        if rng.random() < profile.affiliation_probability:
            department = f"dept{rng.randrange(profile.departments)}"
            facts.append(Fact("WorksFor", (professor, department)))
    for index in range(students):
        student = f"student{index}"
        facts.append(Fact("GradStudent", (student,)))
        if rng.random() < profile.advisor_probability:
            advisor = f"prof{rng.randrange(professors)}"
            facts.append(Fact("HasAdvisor", (student, advisor)))
    return Database(facts)
