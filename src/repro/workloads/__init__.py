"""Workload generators and the scenario registry.

The synthetic generators (office, university, lubm, graph, matrix) build
scalable databases and canonical OMQs; :mod:`repro.workloads.registry`
unifies them with file-based workloads behind ``get_workload(name_or_path)``
— see ``docs/cli.md`` and ``docs/formats.md`` for the file conventions.
"""

from repro.workloads.office import (
    generate_office_database,
    office_omq,
    office_ontology,
    office_query,
)
from repro.workloads.university import (
    generate_university_database,
    university_omq,
    university_ontology,
    university_query,
)
from repro.workloads.lubm import (
    generate_lubm_database,
    lubm_omq,
    lubm_ontology,
    lubm_queries,
    lubm_query,
)
from repro.workloads.graphs import (
    generate_graph_database,
    graph_omq,
    graph_query,
    random_graph,
)
from repro.workloads.matrices import (
    generate_matrix_database,
    matrix_omq,
    matrix_query,
    random_sparse_matrix,
)
from repro.workloads.registry import (
    DEFAULT_SIZE,
    Workload,
    get_workload,
    list_workloads,
    register_workload,
)

__all__ = [
    "DEFAULT_SIZE",
    "Workload",
    "generate_graph_database",
    "generate_lubm_database",
    "generate_matrix_database",
    "generate_office_database",
    "generate_university_database",
    "get_workload",
    "graph_omq",
    "graph_query",
    "list_workloads",
    "lubm_omq",
    "lubm_ontology",
    "lubm_queries",
    "lubm_query",
    "matrix_omq",
    "matrix_query",
    "office_omq",
    "office_ontology",
    "office_query",
    "random_graph",
    "random_sparse_matrix",
    "register_workload",
    "university_omq",
    "university_ontology",
    "university_query",
]
