"""Synthetic workload generators used by examples, tests and benchmarks."""

from repro.workloads.office import (
    generate_office_database,
    office_omq,
    office_ontology,
    office_query,
)
from repro.workloads.university import (
    generate_university_database,
    university_omq,
    university_ontology,
    university_query,
)
from repro.workloads.graphs import random_graph
from repro.workloads.matrices import random_sparse_matrix

__all__ = [
    "generate_office_database",
    "generate_university_database",
    "office_omq",
    "office_ontology",
    "office_query",
    "random_graph",
    "random_sparse_matrix",
    "university_omq",
    "university_ontology",
    "university_query",
]
