"""The workload registry: one name-or-path API over every scenario.

``get_workload(name_or_path)`` unifies the built-in synthetic generators
(office, university, lubm, graph, matrix) with **file-based** workloads
(DLGP rules/queries + DLGP or CSV/TSV data) behind one interface: every
workload produces a :class:`repro.io.Scenario` — ontology + database +
queries — which is what the CLI, the benchmarks and
:class:`repro.engine.QueryEngine` consume.

    >>> workload = get_workload("office")
    >>> scenario = workload.scenario(size=10, seed=1)
    >>> sorted(query.name for query in scenario.queries)
    ['q']

A path (a ``.dlgp`` file, a data file, or a directory of them) is loaded as
a file-backed workload; the string form works anywhere a name does::

    repro run --workload examples/data --show 3

Third-party code can register its own generators with
:func:`register_workload`; names must be unique.  Unknown names raise a
``ValueError`` listing every registered workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.omq import OMQ
from repro.io import DELIMITERS, Scenario, load_scenario
from repro.workloads.graphs import generate_graph_database, graph_omq
from repro.workloads.lubm import generate_lubm_database, lubm_omq, lubm_queries
from repro.workloads.matrices import generate_matrix_database, matrix_omq
from repro.workloads.office import generate_office_database, office_omq
from repro.workloads.university import generate_university_database, university_omq

#: Database scale used when a caller does not pass ``size``.
DEFAULT_SIZE = 300


@dataclass(frozen=True)
class Workload:
    """A named scenario source: synthetic generator or files on disk.

    ``builder`` maps ``(size, seed)`` to a :class:`~repro.io.Scenario`;
    file-backed workloads ignore both knobs (``scalable`` is False for
    them, so callers can warn about a meaningless ``--size``).
    """

    name: str
    description: str
    builder: Callable[[int, int], Scenario] = field(compare=False)
    source: str = "builtin"
    scalable: bool = True

    def scenario(self, size: int = DEFAULT_SIZE, seed: int = 0) -> Scenario:
        """Build (or load) the scenario at the given scale."""
        return self.builder(size, seed)

    def omq(self, size: int = DEFAULT_SIZE, seed: int = 0) -> OMQ:
        """The workload's canonical OMQ (ontology + first query)."""
        scenario = self.scenario(size, seed)
        if not scenario.queries:
            raise ValueError(f"workload {self.name!r} declares no queries")
        return OMQ.from_parts(scenario.ontology, scenario.queries[0], name=f"Q_{self.name}")


_REGISTRY: dict[str, Workload] = {}


def register_workload(workload: Workload, *, replace: bool = False) -> Workload:
    """Add a workload to the registry (``replace=True`` to overwrite)."""
    if not replace and workload.name in _REGISTRY:
        raise ValueError(f"workload {workload.name!r} is already registered")
    _REGISTRY[workload.name] = workload
    return workload


def list_workloads() -> dict[str, Workload]:
    """All registered workloads, by name (sorted)."""
    return dict(sorted(_REGISTRY.items()))


def _builtin(name: str, description: str, omq_factory, generator, queries=None):
    def builder(size: int, seed: int) -> Scenario:
        omq = omq_factory()
        extra = list(queries()) if queries is not None else [omq.query]
        return Scenario(
            ontology=omq.ontology,
            database=generator(size, seed=seed),
            queries=tuple(extra),
            name=name,
        )

    register_workload(Workload(name=name, description=description, builder=builder))


_builtin(
    "office",
    "Example 1.1: researchers, offices and buildings",
    office_omq,
    generate_office_database,
)
_builtin(
    "university",
    "LUBM-flavoured students/advisors/departments over an ELI ontology",
    university_omq,
    generate_university_database,
)
_builtin(
    "lubm",
    "LUBM-style vocabulary: faculty hierarchy, courses, enrolment (3 queries)",
    lubm_omq,
    generate_lubm_database,
    queries=lubm_queries,
)
_builtin(
    "graph",
    "random directed graph with a two-step path query (empty ontology)",
    graph_omq,
    generate_graph_database,
)
_builtin(
    "matrix",
    "sparse Boolean matrices with the full BMM join query (empty ontology)",
    matrix_omq,
    generate_matrix_database,
)


def _file_workload(path: Path) -> Workload:
    """Wrap a ``.dlgp`` scenario file, a data file or a directory of both."""
    resolved = path.resolve()
    if resolved.is_dir():
        rules = sorted(resolved.glob("*.dlgp"))
        data = sorted(entry for suffix in DELIMITERS for entry in resolved.glob(f"*{suffix}"))
        if not rules and not data:
            raise ValueError(f"workload directory {path} holds no .dlgp or tabular files")
    elif resolved.suffix.lower() == ".dlgp":
        rules, data = [resolved], []
    elif resolved.suffix.lower() in DELIMITERS:
        rules, data = [], [resolved]
    else:
        raise ValueError(
            f"cannot load workload from {path}: expected a .dlgp file, a "
            ".csv/.tsv file, or a directory"
        )

    def builder(size: int, seed: int) -> Scenario:
        del size, seed  # file-backed scenarios have a fixed database
        return load_scenario(rules=rules, data=data, name=resolved.stem)

    return Workload(
        name=str(path),
        description=f"file-backed workload from {path}",
        builder=builder,
        source=str(resolved),
        scalable=False,
    )


def get_workload(name_or_path: str | Path) -> Workload:
    """Resolve a registry name or a filesystem path to a workload.

    Names are looked up in the registry first; otherwise an existing file
    or directory is wrapped as a file-backed workload.  Anything else is a
    ``ValueError`` listing the registered names.
    """
    name = str(name_or_path)
    workload = _REGISTRY.get(name)
    if workload is not None:
        return workload
    path = Path(name_or_path)
    if path.exists():
        return _file_workload(path)
    known = ", ".join(sorted(_REGISTRY))
    raise ValueError(
        f"unknown workload {name!r}: not a registered name ({known}) "
        "and not an existing file or directory"
    )


def _register_demo() -> None:
    """Register the file-backed demo shipped under ``examples/data/``.

    Only possible in a source checkout (editable install); wheels do not
    ship the examples tree, so the demo silently stays unregistered there.
    """
    demo_dir = Path(__file__).resolve().parents[3] / "examples" / "data"
    if not demo_dir.is_dir():
        return
    workload = _file_workload(demo_dir)
    register_workload(
        Workload(
            name="demo",
            description="file-backed office demo (DLGP rules/queries + CSV data)",
            builder=workload.builder,
            source=workload.source,
            scalable=False,
        ),
        replace=True,
    )


_register_demo()
