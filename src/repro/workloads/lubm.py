"""A LUBM-style workload: the university scenario at benchmark vocabulary.

This is the registry's "generator variant" of :mod:`repro.workloads.
university`: the same OBDA shape (an ELI ontology completing incomplete
ABox data with existentials), but over a vocabulary modelled on the Lehigh
University Benchmark — a faculty hierarchy, course enrolment and teaching,
and an organizational suborganization chain.  The extra TGD depth makes the
chase produce longer null chains than the plain university workload, and
the three canonical queries exercise distinct join shapes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.omq import OMQ
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.data.facts import Fact
from repro.data.instance import Database
from repro.tgds.ontology import Ontology
from repro.tgds.parser import parse_ontology

_LUBM_ONTOLOGY = """
FullProfessor(x) -> Professor(x)
AssociateProfessor(x) -> Professor(x)
Professor(x) -> Faculty(x)
Lecturer(x) -> Faculty(x)
Faculty(x) -> WorksFor(x, y)
WorksFor(x, y) -> Department(y)
Department(x) -> SubOrgOf(x, y)
SubOrgOf(x, y) -> Organization(y)
GradStudent(x) -> HasAdvisor(x, y)
HasAdvisor(x, y) -> Faculty(y)
GradStudent(x) -> TakesCourse(x, y)
TakesCourse(x, y) -> Course(y)
Course(x) -> TaughtBy(x, y)
TaughtBy(x, y) -> Faculty(y)
"""


def lubm_ontology() -> Ontology:
    """Fourteen ELI TGDs over a LUBM-flavoured vocabulary."""
    return parse_ontology(_LUBM_ONTOLOGY, name="lubm")


def lubm_query() -> ConjunctiveQuery:
    """Students with a course they take and who teaches it."""
    return parse_query(
        "q(student, course, teacher) :- TakesCourse(student, course), "
        "TaughtBy(course, teacher)"
    )


def lubm_queries() -> list[ConjunctiveQuery]:
    """The canonical query plus two further acyclic, free-connex shapes."""
    return [
        lubm_query(),
        parse_query(
            "advisors(student, advisor, dept) :- HasAdvisor(student, advisor), "
            "WorksFor(advisor, dept)"
        ),
        parse_query(
            "colleagues(s1, s2, advisor) :- HasAdvisor(s1, advisor), "
            "HasAdvisor(s2, advisor)"
        ),
    ]


def lubm_omq() -> OMQ:
    """The canonical LUBM-style OMQ (acyclic, free-connex, ELI)."""
    return OMQ.from_parts(lubm_ontology(), lubm_query(), name="Q_lubm")


@dataclass(frozen=True)
class LubmProfile:
    """Knobs controlling the shape of the generated LUBM-style data."""

    students_per_faculty: int = 4
    courses_per_student: float = 1.5
    departments: int = 6
    advisor_probability: float = 0.6
    enrolment_probability: float = 0.8
    teaching_probability: float = 0.5
    affiliation_probability: float = 0.5


def generate_lubm_database(
    students: int,
    profile: LubmProfile | None = None,
    seed: int = 0,
) -> Database:
    """Generate a LUBM-style database with ``students`` graduate students.

    Every generated section is deliberately incomplete (controlled by the
    profile probabilities), so the ontology's existentials contribute real
    nulls: faculty without explicit departments, courses without explicit
    teachers, students without explicit advisors.
    """
    profile = profile or LubmProfile()
    rng = random.Random(seed)
    faculty = max(1, students // max(1, profile.students_per_faculty))
    courses = max(1, int(students * profile.courses_per_student / 2))
    facts: list[Fact] = []
    for index in range(faculty):
        person = f"faculty{index}"
        rank = rng.choice(("FullProfessor", "AssociateProfessor", "Lecturer"))
        facts.append(Fact(rank, (person,)))
        if rng.random() < profile.affiliation_probability:
            department = f"dept{rng.randrange(profile.departments)}"
            facts.append(Fact("WorksFor", (person, department)))
    for index in range(courses):
        course = f"course{index}"
        facts.append(Fact("Course", (course,)))
        if rng.random() < profile.teaching_probability:
            teacher = f"faculty{rng.randrange(faculty)}"
            facts.append(Fact("TaughtBy", (course, teacher)))
    for index in range(students):
        student = f"student{index}"
        facts.append(Fact("GradStudent", (student,)))
        if rng.random() < profile.advisor_probability:
            advisor = f"faculty{rng.randrange(faculty)}"
            facts.append(Fact("HasAdvisor", (student, advisor)))
        if rng.random() < profile.enrolment_probability:
            course = f"course{rng.randrange(courses)}"
            facts.append(Fact("TakesCourse", (student, course)))
    return Database(facts)
