"""Random sparse Boolean matrix workloads (BMM lower bound + registry OMQ).

:func:`random_sparse_matrix` feeds the Boolean-matrix-multiplication
lower-bound experiments (E10).  :func:`matrix_omq` /
:func:`generate_matrix_database` package the same generator as a registry
workload over the *full* join ``q(i, k, j) ← M1(i, k) ∧ M2(k, j)`` — the
free-connex shape.  Projecting out ``k`` yields exactly the BMM query whose
constant-delay enumeration would imply subquadratic matrix multiplication
(the paper's Section 7 lower bound), so that variant is served only through
``strict=False`` engines.
"""

from __future__ import annotations

import random

from repro.core.omq import OMQ
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.data.facts import Fact
from repro.data.instance import Database
from repro.tgds.ontology import Ontology


def random_sparse_matrix(
    dimension: int, density: float, seed: int = 0
) -> list[tuple[int, int]]:
    """A random sparse Boolean matrix as a list of one-entries.

    ``density`` is the probability that any given entry is one; the expected
    number of entries is ``density * dimension**2``.
    """
    rng = random.Random(seed)
    target = max(1, int(density * dimension * dimension))
    entries: set[tuple[int, int]] = set()
    while len(entries) < target:
        entries.add((rng.randrange(dimension), rng.randrange(dimension)))
    return sorted(entries)


def matrix_ontology() -> Ontology:
    """The matrix workload has no TGDs (plain relational data)."""
    return Ontology((), name="matrix")


def matrix_query() -> ConjunctiveQuery:
    """The full matrix join (free-connex; the BMM projection is not)."""
    return parse_query("q(i, k, j) :- M1(i, k), M2(k, j)")


def matrix_omq() -> OMQ:
    """The full-join matrix OMQ over an empty ontology."""
    return OMQ.from_parts(matrix_ontology(), matrix_query(), name="Q_matrix")


def generate_matrix_database(dimension: int, seed: int = 0, density: float = 0.05) -> Database:
    """Two random sparse matrices as ``M1`` / ``M2`` binary relations."""
    facts = [Fact("M1", entry) for entry in random_sparse_matrix(dimension, density, seed=seed)]
    facts.extend(
        Fact("M2", entry)
        for entry in random_sparse_matrix(dimension, density, seed=seed + 1)
    )
    return Database(facts)
