"""Random sparse Boolean matrices for the BMM lower-bound experiments."""

from __future__ import annotations

import random


def random_sparse_matrix(
    dimension: int, density: float, seed: int = 0
) -> list[tuple[int, int]]:
    """A random sparse Boolean matrix as a list of one-entries.

    ``density`` is the probability that any given entry is one; the expected
    number of entries is ``density * dimension**2``.
    """
    rng = random.Random(seed)
    target = max(1, int(density * dimension * dimension))
    entries: set[tuple[int, int]] = set()
    while len(entries) < target:
        entries.add((rng.randrange(dimension), rng.randrange(dimension)))
    return sorted(entries)
