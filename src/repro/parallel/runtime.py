"""Process-wide parallel-execution state: counters and the ambient pool.

:data:`PARALLEL_STATS` mirrors :data:`repro.engine.codegen.CODEGEN_STATS`:
one process-wide counter set the engine snapshot reads, so shard/exchange
activity shows up in :class:`~repro.engine.engine.EngineStats` (and from
there in ``/metrics``) no matter which engine drove it.

The *ambient pool* is how the low-level semi-join kernel opts into sharded
execution without inverting the package layering: the materialization wraps
its reduce phase in :func:`sharded_semijoins`, and
:func:`maybe_parallel_filter` — called from
:func:`repro.yannakakis.semijoin.semijoin` — runs the filter across the
pool's workers when a pool is ambient, the relation is large enough to
amortize the segment round-trip, and we are in the pool's master process
(forked workers inherit the context variable and must never recurse into
the pool they are part of).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

__all__ = [
    "PARALLEL_STATS",
    "ParallelStats",
    "maybe_parallel_filter",
    "sharded_semijoins",
]

#: Row-count threshold below which a sharded semi-join cannot win (the
#: segment setup plus result pickling dominate); module-level so tests can
#: lower it to force the parallel kernel on small relations.
PARALLEL_SEMIJOIN_THRESHOLD = 50_000


class ParallelStats:
    """Thread-safe named counters for the parallel subsystem."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)


PARALLEL_STATS = ParallelStats()

_AMBIENT_POOL: ContextVar[object | None] = ContextVar("repro_parallel_pool", default=None)


@contextmanager
def sharded_semijoins(pool) -> Iterator[None]:
    """Make ``pool`` ambient for semi-joins within the ``with`` body."""
    token = _AMBIENT_POOL.set(pool)
    try:
        yield
    finally:
        _AMBIENT_POOL.reset(token)


def ambient_pool():
    """The ambient pool, or ``None`` (also ``None`` inside its workers)."""
    pool = _AMBIENT_POOL.get()
    if pool is None or not pool.alive or pool.master_pid != os.getpid():
        return None
    return pool


def maybe_parallel_filter(store, positions, keys):
    """Sharded hash semi-join over the ambient pool, or ``None``.

    ``None`` tells the caller to run the sequential kernel: there is no
    ambient pool, the relation is below the amortization threshold, or the
    parallel path failed (worker crash → the pool is closed and every later
    call degrades to sequential, never to a hang).
    """
    if len(store) < PARALLEL_SEMIJOIN_THRESHOLD:
        return None
    pool = ambient_pool()
    if pool is None:
        return None
    from repro.parallel.pool import ParallelExecutionError
    from repro.parallel.reduce import parallel_filter_by_keys

    try:
        return parallel_filter_by_keys(pool, store, positions, keys)
    except ParallelExecutionError:
        return None
