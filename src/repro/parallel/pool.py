"""The persistent fork-based worker pool behind the parallel subsystem.

A :class:`WorkerPool` forks ``worker_count`` processes that inherit, via
copy-on-write, the bootstrap state the master prepared *before* the fork:
the ontology, a replica :class:`~repro.data.instance.Instance`, and —
crucially — the process-wide term dictionary
(:data:`repro.data.interning.TERMS`), so dense term ids minted before the
fork mean the same thing in every process and shared-memory rows need no
translation.  This is why the pool requires the ``fork`` start method
(:func:`supported`); on platforms without it every caller degrades to the
sequential paths.

Workers run a simple request/response loop over a pipe.  The master's
receive path polls the pipe *and* the worker's liveness, so a worker that
is killed mid-task surfaces as :class:`WorkerCrashed` (never a hang), at
which point the pool tears itself down; a worker that is alive but wedged
is bounded by the per-operation deadline (:data:`DEFAULT_TASK_TIMEOUT`,
tunable via ``REPRO_WORKER_TIMEOUT``) and surfaces the same way.  Segment
cleanup stays with the operation that created the segments (``finally`` +
the ``atexit`` registry in :mod:`repro.parallel.shm`).

Fork safety: the worker's first action is to re-initialize the locks of
the process-wide structures it uses (another master thread may have held
one at the fork instant) and to ignore ``SIGINT`` — shutdown is the
master's job, via the pipe or, if the master dies, via ``EOFError``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import weakref
from dataclasses import dataclass, field

from repro.data.instance import Instance
from repro.data.interning import TERMS
from repro.parallel.runtime import PARALLEL_STATS
from repro.parallel.shm import SharedColumns, SharedFactBlock, decode_value
from repro.tgds.ontology import Ontology

__all__ = [
    "DEFAULT_TASK_TIMEOUT",
    "ParallelExecutionError",
    "WorkerBootstrap",
    "WorkerCrashed",
    "WorkerPool",
    "supported",
]

#: Upper bound on cached per-query enumerators inside one worker.
_WORKER_ENUMERATOR_CACHE = 32


def _env_timeout(name: str, default: float) -> float | None:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else None


#: Default deadline (seconds) for one broadcast/scatter operation.  A worker
#: that is alive but wedged past this surfaces as :class:`WorkerCrashed`
#: (closing the pool) instead of blocking the master forever under the
#: engine lock.  ``REPRO_WORKER_TIMEOUT`` overrides; ``<= 0`` disables the
#: deadline.  Passing ``timeout=None`` explicitly also means "no deadline".
DEFAULT_TASK_TIMEOUT: float | None = _env_timeout("REPRO_WORKER_TIMEOUT", 300.0)


class ParallelExecutionError(RuntimeError):
    """A parallel operation failed and the caller should fall back."""


class WorkerCrashed(ParallelExecutionError):
    """A worker process died (or its pipe broke) mid-operation."""


def supported() -> bool:
    """Whether this platform can run the pool (needs ``fork``)."""
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass
class WorkerBootstrap:
    """State the workers inherit through the fork (never pickled)."""

    ontology: Ontology
    instance: Instance
    codegen: bool | None = None


# -- worker-side task handlers ---------------------------------------------
#
# Everything below the next comment block executes in the forked children
# only, which is why the bodies are excluded from (master-process) coverage
# measurement; the behaviour is exercised end-to-end by tests/test_parallel.py.


def _worker_state(bootstrap: WorkerBootstrap, index: int, count: int) -> dict:
    return {
        "instance": bootstrap.instance,
        "ontology": bootstrap.ontology,
        "codegen": bootstrap.codegen,
        "compiled": None,
        "index": index,
        "count": count,
        "relations": [],
        "fired": set(),
        "enumerators": {},
    }


def _task_ping(state: dict, payload):  # pragma: no cover - worker process
    return payload


def _task_sleep(state: dict, payload):  # pragma: no cover - worker process
    time.sleep(float(payload))
    return payload


def _decode_block(name, table, shard):  # pragma: no cover - worker process
    """Decode a fact block; also select this worker's hash-partition slice."""
    from repro.data.facts import Fact
    from repro.parallel.shards import shard_of

    decode = TERMS.decode
    facts: list = []
    mine: list = []
    index, count = shard
    block = SharedFactBlock.attach(name)
    try:
        for relation_id, args in block.records():
            fact = Fact(
                table[relation_id],
                tuple(decode_value(value, decode) for value in args),
            )
            facts.append(fact)
            if shard_of(args, count) == index:
                mine.append(fact)
    finally:
        block.close()
    return facts, mine


def _task_chase_round(state: dict, payload: dict):  # pragma: no cover - worker process
    from repro.chase.standard import (
        _delta_body_maps,
        _head_witness,
        compile_ontology,
    )

    state["relations"].extend(payload["relations"])
    state["fired"].update(payload["fired"])
    instance = state["instance"]
    index, count = state["index"], state["count"]

    if payload.get("facts") is not None:
        facts, mine = _decode_block(
            payload["facts"], state["relations"], (index, count)
        )
    else:
        facts = payload.get("pickled") or []
        mine = [fact for j, fact in enumerate(facts) if j % count == index]
    if facts:
        instance.add_facts(facts)
    if payload.get("initial"):
        everything = list(instance)
        mine = [fact for j, fact in enumerate(everything) if j % count == index]

    compiled = state["compiled"]
    if compiled is None:
        compiled = state["compiled"] = compile_ontology(state["ontology"])
    fired = state["fired"]
    codegen = state["codegen"]
    proposals: list[tuple[int, tuple]] = []
    suppressed = 0
    for tgd_index, tgd in enumerate(compiled.tgds):
        body_query = compiled.body_queries[tgd_index]
        if body_query is None:
            continue  # empty bodies fire once, master-side
        frontier = compiled.frontiers[tgd_index]
        order = compiled.frontier_orders[tgd_index]
        head_query = compiled.head_queries[tgd_index]
        seen_keys: set[tuple] = set()
        for body_map in _delta_body_maps(tgd, body_query, instance, mine, codegen):
            frontier_map = {v: body_map[v] for v in frontier}
            key = (tgd_index, tuple(frontier_map[v] for v in order))
            if key in fired or key in seen_keys:
                continue
            if _head_witness(head_query, frontier_map, instance) is not None:
                suppressed += 1
                continue
            seen_keys.add(key)
            proposals.append(key)
    return {"proposals": proposals, "suppressed": suppressed}


def _task_project(state: dict, payload):  # pragma: no cover - worker process
    from repro.enumeration.reduction import component_projection

    instance = state["instance"]
    out = []
    for index, component, keep_nulls in payload:
        rows = component_projection(
            component,
            instance,
            keep_nulls,
            interned=instance.interned,
            codegen=state["codegen"],
        )
        out.append((index, None if rows is None else list(rows)))
    return out


def _task_execute(state: dict, payload):  # pragma: no cover - worker process
    from repro.engine.fingerprint import query_fingerprint
    from repro.enumeration.cdlin import CDLinEnumerator

    cache = state["enumerators"]
    out = []
    for slot, query in payload:
        fingerprint = query_fingerprint(query)
        enumerator = cache.get(fingerprint)
        if enumerator is None:
            if len(cache) >= _WORKER_ENUMERATOR_CACHE:
                cache.pop(next(iter(cache)))
            enumerator = CDLinEnumerator(
                query,
                state["instance"],
                keep_nulls=False,
                codegen=state["codegen"],
            )
            cache[fingerprint] = enumerator
        out.append((slot, set(enumerator.enumerate())))
    return out


def _task_filter(state: dict, payload: dict):  # pragma: no cover - worker process
    block = SharedColumns.attach(payload["name"])
    try:
        keys = payload["keys"]
        if not keys:
            return []
        columns = block.columns()
        key_columns = [columns[p] for p in payload["positions"]]
        out = [
            tuple(row)
            for key, row in zip(zip(*key_columns), zip(*columns))
            if key in keys
        ]
        # Release the exported column views before closing the mapping,
        # otherwise the close raises BufferError.
        del key_columns
        for view in columns:
            view.release()
        return out
    finally:
        block.close()


_TASKS = {
    "ping": _task_ping,
    "sleep": _task_sleep,
    "chase_round": _task_chase_round,
    "project": _task_project,
    "execute": _task_execute,
    "filter": _task_filter,
}


def _worker_main(conn, bootstrap, index, count):  # pragma: no cover - worker process
    # Locks inherited from a (possibly multi-threaded) master may be held
    # by a thread that does not exist in this child: re-initialize the ones
    # worker code paths can touch.
    import repro.config as config

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    TERMS._lock = threading.Lock()
    config._STATE_LOCK = threading.Lock()
    state = _worker_state(bootstrap, index, count)
    import traceback

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        task, payload = message
        try:
            result = _TASKS[task](state, payload)
            reply = ("ok", result)
        except BaseException as exc:
            reply = ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# -- master-side pool -------------------------------------------------------


def _shutdown(processes, connections) -> None:
    """Tear down workers: polite pipe shutdown, then terminate stragglers."""
    for conn in connections:
        try:
            conn.send(None)
        except (BrokenPipeError, OSError):
            pass
    deadline = time.monotonic() + 2.0
    for process in processes:
        process.join(timeout=max(0.0, deadline - time.monotonic()))
    for process in processes:
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
    for conn in connections:
        try:
            conn.close()
        except OSError:
            pass


@dataclass
class _PoolEpoch:
    """What the forked replicas snapshot; a mismatch means re-fork."""

    database_version: int
    chase_id: int | None
    instance_size: int = field(default=0)


class WorkerPool:
    """A fixed set of forked worker processes plus their pipes.

    The pool is *persistent*: the same workers serve chase rounds, reduce
    projections, semi-join shards and batch enumerations, so replica state
    (and per-worker enumerator caches) amortize across calls.  It is not
    thread-safe; the owning materialization serializes access under the
    engine lock.
    """

    def __init__(self, worker_count: int, bootstrap: WorkerBootstrap) -> None:
        if not supported():
            raise ParallelExecutionError("worker pool requires the fork start method")
        context = multiprocessing.get_context("fork")
        self.worker_count = max(2, int(worker_count))
        self.master_pid = os.getpid()
        self.epoch: _PoolEpoch | None = None
        self._connections = []
        self._processes = []
        self._broken = False
        try:
            for index in range(self.worker_count):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn, bootstrap, index, self.worker_count),
                    daemon=True,
                    name=f"repro-worker-{index}",
                )
                process.start()
                child_conn.close()
                self._connections.append(parent_conn)
                self._processes.append(process)
        except OSError:
            # Pipe()/start() can fail under fd/process/memory pressure
            # mid-loop; reap the workers already forked before re-raising
            # (the finalizer is not registered yet at this point).
            _shutdown(list(self._processes), list(self._connections))
            raise
        self._finalizer = weakref.finalize(
            self, _shutdown, list(self._processes), list(self._connections)
        )
        PARALLEL_STATS.bump("pools_forked")

    @property
    def alive(self) -> bool:
        return not self._broken and self._finalizer.alive

    @property
    def processes(self) -> list:
        """The worker processes (read-only; tests kill these)."""
        return list(self._processes)

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._finalizer.alive:
            self._finalizer()

    def _fail(self, reason: str) -> WorkerCrashed:
        self._broken = True
        PARALLEL_STATS.bump("worker_crashes")
        self.close()
        return WorkerCrashed(reason)

    def _receive(self, index: int, timeout: float | None):
        connection = self._connections[index]
        process = self._processes[index]
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if connection.poll(0.05):
                try:
                    message = connection.recv()
                except (EOFError, OSError):
                    raise self._fail(f"worker {index} closed its pipe mid-task")
                if message[0] == "error":
                    raise ParallelExecutionError(
                        f"worker {index} task failed: {message[1]}\n{message[2]}"
                    )
                return message[1]
            if not process.is_alive():
                # One final poll: the reply may have been written just
                # before the process exited.
                if connection.poll(0):
                    continue
                raise self._fail(
                    f"worker {index} died (exit code {process.exitcode})"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise self._fail(f"worker {index} timed out")

    def _send(self, index: int, task: str, payload) -> None:
        if not self.alive:
            raise WorkerCrashed("worker pool is closed")
        try:
            self._connections[index].send((task, payload))
        except (BrokenPipeError, OSError):
            raise self._fail(f"worker {index} pipe is broken")
        PARALLEL_STATS.bump("tasks")

    def _collect(self, timeout: float | None) -> list:
        """Receive one reply per worker, in worker order.

        A task-error reply from one worker must not desynchronize the
        pipes: the remaining workers' replies are drained before the
        error propagates, so a caller that catches it and reuses the
        (still healthy) pool never reads a stale reply as the next
        operation's result.  A crash closes the whole pool via
        :meth:`_fail`, so draining stops there.
        """
        results: list = []
        error: ParallelExecutionError | None = None
        for index in range(self.worker_count):
            try:
                results.append(self._receive(index, timeout))
            except WorkerCrashed:
                raise
            except ParallelExecutionError as exc:
                if error is None:
                    error = exc
                results.append(None)
        if error is not None:
            raise error
        return results

    def broadcast(
        self, task: str, payload, timeout: float | None = DEFAULT_TASK_TIMEOUT
    ) -> list:
        """Send one payload to every worker; collect all replies in order."""
        for index in range(self.worker_count):
            self._send(index, task, payload)
        return self._collect(timeout)

    def scatter(
        self, task: str, payloads: list, timeout: float | None = DEFAULT_TASK_TIMEOUT
    ) -> list:
        """Send ``payloads[i]`` to worker ``i``; collect replies in order."""
        if len(payloads) != self.worker_count:
            raise ValueError("scatter needs exactly one payload per worker")
        for index, payload in enumerate(payloads):
            self._send(index, task, payload)
        return self._collect(timeout)
