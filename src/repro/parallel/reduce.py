"""Parallel Yannakakis reduce: sharded semi-joins and component projections.

Two fan-outs, both over the materialization's persistent pool (whose
replicas hold the chased instance):

* :func:`parallel_projections` — the per-component bottom-up semi-join
  passes of :func:`repro.enumeration.reduction.component_projection` are
  independent of each other, so they scatter round-robin across the
  workers; the master hands the finished projections to
  :func:`~repro.enumeration.reduction.build_reduced_query`, which then
  only runs the (cheap) cross-block full reducer.  With ``keep_nulls``
  off, surviving rows are constant-only, so interned rows are pre-fork
  term ids and ship back verbatim.

* :func:`parallel_filter_by_keys` — the sharded hash semi-join behind
  :func:`repro.parallel.runtime.maybe_parallel_filter`: hash-partition the
  probe relation *and* the key set by the same
  :func:`~repro.parallel.shards.shard_of`, ship each row shard as a
  :class:`~repro.parallel.shm.SharedColumns` segment (zero-copy attach on
  the worker side), and concatenate the surviving rows.  Equal keys land
  in equal shards, so the union of per-shard filters is exactly the
  sequential filter.

Both return ``None`` / raise with every segment unlinked; callers treat
failure as "run the sequential kernel".
"""

from __future__ import annotations

import pickle

from repro.parallel.pool import ParallelExecutionError, WorkerPool
from repro.parallel.runtime import PARALLEL_STATS
from repro.parallel.shards import hash_partition, shard_rows

__all__ = ["parallel_filter_by_keys", "parallel_projections"]


def parallel_projections(
    pool: WorkerPool,
    decomposition,
    keep_nulls: bool,
) -> dict[int, set | None] | None:
    """Compute every component projection across the pool, or ``None``.

    Returns ``{component_index: projection_rows_or_None}`` on success
    (``None`` per component means unsatisfiable, mirroring
    ``component_projection``).  Returns ``None`` — sequential fallback —
    when the components do not pickle or a worker failed.
    """
    components = list(enumerate(decomposition.components))
    if not components:
        return {}
    payloads: list[list] = [[] for _ in range(pool.worker_count)]
    for slot, (index, component) in enumerate(components):
        payloads[slot % pool.worker_count].append((index, component, keep_nulls))
    try:
        pickle.dumps(payloads)
    except Exception:
        return None
    try:
        responses = pool.scatter("project", payloads)
    except ParallelExecutionError:
        return None
    projections: dict[int, set | None] = {}
    for response in responses:
        for index, rows in response:
            projections[index] = None if rows is None else set(rows)
    PARALLEL_STATS.bump("parallel_projections", len(components))
    return projections


def parallel_filter_by_keys(
    pool: WorkerPool,
    store,
    positions,
    keys,
) -> list[tuple] | None:
    """Sharded equivalent of ``ColumnarRelation.filter_by_keys``.

    Rows and keys are partitioned by the same deterministic hash of the
    key projection, each worker filters its shard against its key slice
    through the shared segment, and the master concatenates.  Row order is
    not preserved — every caller consumes the result as a set.  Returns
    ``None`` when there is no key projection to shard on; raises
    :class:`~repro.parallel.pool.ParallelExecutionError` on worker failure
    (with all segments unlinked).
    """
    positions = tuple(positions)
    if not positions:
        return None
    count = pool.worker_count
    shards = hash_partition(store, positions, count)
    try:
        key_shards = shard_rows(keys, tuple(range(len(positions))), count)
        payloads = [
            {
                "name": shards[index].name,
                "positions": positions,
                "keys": set(key_shards[index]),
            }
            for index in range(count)
        ]
        results = pool.scatter("filter", payloads)
    finally:
        for shard in shards:
            shard.unlink()
    PARALLEL_STATS.bump("semijoin_shards", count)
    return [tuple(row) for part in results for row in part]
