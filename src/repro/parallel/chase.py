"""The process-parallel restricted chase: replicated instances, master firing.

Design: partition the *matching*, centralize the *firing*.

Every worker forks with (a copy-on-write replica of) the un-chased
instance and the ontology.  Each round the master broadcasts the previous
round's delta — encoded as a :class:`~repro.parallel.shm.SharedFactBlock`
of pre-fork term ids and ``-(label+1)`` null codes — plus the trigger keys
it fired; workers apply the delta to their replica, select the slice of it
they own (a deterministic :func:`~repro.parallel.shards.shard_of` over the
encoded rows, so each delta fact has exactly one owner in every process),
run the semi-naive body match + head-witness check locally, and send back
the surviving trigger proposals.  The master deduplicates proposals
against the global fired set, re-checks the head witness against *its*
instance (catching same-round satisfaction, exactly like the sequential
round loop), applies the null-depth truncation, and fires — with the one
process-wide null factory, so null labels never alias.

Soundness of the answer-set guarantee: a worker's witness view lags the
master's by at most the same round, so workers can only *over*-propose,
never under-propose (semi-naive completeness is per-delta-fact, and every
delta fact has an owner); the master's re-check restores restricted-chase
suppression.  The result is a chase interleaving between the restricted
and oblivious extremes at the same truncation depth — a universal model —
so null-free answer sets are byte-identical to the sequential run's (the
differential suite pins this).

Failure discipline: any worker crash or task error raises
:class:`~repro.parallel.pool.ParallelExecutionError` out of
:func:`parallel_chase` with the pool closed and all segments unlinked;
callers fall back to the sequential chase.  Never a hang, never a partial
result.

Incremental maintenance is *not* supported here: provenance recording
needs the suppression witnesses that stay worker-side.  The engine only
routes a chase this way when ``incremental`` is off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chase.standard import (
    ChaseNotTerminating,
    ChaseResult,
    _head_witness,
    compile_ontology,
)
from repro.config import codegen_enabled
from repro.cq.atoms import constants_of
from repro.data.facts import Fact
from repro.data.instance import Instance
from repro.data.interning import TERMS
from repro.data.terms import is_null
from repro.parallel.pool import WorkerBootstrap, WorkerPool
from repro.parallel.runtime import PARALLEL_STATS
from repro.parallel.shm import SharedFactBlock, encode_null
from repro.tgds.ontology import Ontology

__all__ = ["ParallelChaseRun", "parallel_chase"]


@dataclass
class ParallelChaseRun:
    """A finished parallel chase plus the still-warm pool that ran it.

    After the final round every replica has received every delta, so the
    workers' instances equal the master's chased instance — the pool can
    keep serving reduce projections, sharded semi-joins and batch
    enumeration for this materialization epoch.  The owner must ``close``
    the pool when the epoch ends.
    """

    result: ChaseResult
    pool: WorkerPool
    boundary_facts: int = 0


def _pre_intern(ontology: Ontology) -> None:
    """Intern every ontology constant *before* the fork.

    Head constants are the only constants a fired fact can introduce that
    did not come from the database, so after this call every constant the
    chase can ever place in a fact has a pre-fork (worker-valid) term id —
    the invariant the shm fact encoding relies on.
    """
    for tgd in ontology:
        for constant in constants_of(tgd.body):
            TERMS.intern(constant)
        for constant in constants_of(tgd.head):
            TERMS.intern(constant)


def _pre_intern_instance(instance: Instance) -> None:
    """Intern every database constant *before* the fork.

    Interning is lazy (ids are minted at the first index probe), so without
    this pass the master and each worker would mint ids for the same
    constants independently post-fork, in different orders — and the shm
    encoding would ship ids that decode to different terms (or nothing) in
    the workers.  After this pass every constant of the instance has one
    process-agreed id; only nulls are minted post-fork, and those always
    travel by label, never by id.
    """
    intern = TERMS.intern
    for fact in instance:
        for arg in fact.args:
            if not is_null(arg):
                intern(arg)


def _encode_delta(
    delta: list[Fact], relation_ids: dict[str, int]
) -> tuple[list[tuple[int, tuple[int, ...]]] | None, list[str]]:
    """Encode a round's new facts for the shm exchange.

    Returns ``(records, new_relation_names)``; ``records`` is ``None`` when
    some constant has no pre-fork term id (non-interned databases), in
    which case the caller ships the round pickled instead — correct,
    merely slower.
    """
    new_names: list[str] = []
    records: list[tuple[int, tuple[int, ...]]] = []
    for fact in delta:
        relation_id = relation_ids.get(fact.relation)
        if relation_id is None:
            relation_id = len(relation_ids)
            relation_ids[fact.relation] = relation_id
            new_names.append(fact.relation)
        encoded = []
        for arg in fact.args:
            if is_null(arg):
                encoded.append(encode_null(arg))
            else:
                term_id = TERMS.try_intern(arg)
                if term_id is None:
                    return None, new_names
                encoded.append(term_id)
        records.append((relation_id, tuple(encoded)))
    return records, new_names


def parallel_chase(
    database: Instance,
    ontology: Ontology,
    workers: int,
    max_null_depth: int | None = None,
    max_facts: int = 1_000_000,
    max_rounds: int = 10_000,
    codegen: bool | None = None,
) -> ParallelChaseRun:
    """Run the restricted chase across ``workers`` forked processes.

    Semantics match :func:`repro.chase.standard.chase` up to firing order
    and extra same-round firings (see the module docstring); budgets and
    truncation behave identically.  Raises
    :class:`~repro.parallel.pool.ParallelExecutionError` (pool already
    closed) when a worker dies — callers fall back to the sequential
    chase — and :class:`ChaseNotTerminating` on exhausted budgets.
    """
    if codegen is None:
        codegen = codegen_enabled()
    _pre_intern(ontology)
    instance = Instance(database)
    _pre_intern_instance(instance)
    base_constants = frozenset(instance.constants())
    null_depth: dict = {}
    result = ChaseResult(instance, base_constants, null_depth)
    fresh = instance.null_factory
    compiled = compile_ontology(ontology)
    fired: set[tuple] = set()
    relation_ids: dict[str, int] = {}
    boundary_total = 0

    pool = WorkerPool(workers, WorkerBootstrap(ontology, instance, codegen))
    try:
        delta: list[Fact] | None = None
        fired_last_round: list[tuple] = []
        while True:
            result.rounds += 1
            if result.rounds > max_rounds:
                raise ChaseNotTerminating(f"chase exceeded {max_rounds} rounds")
            payload = {
                "relations": [],
                "fired": fired_last_round,
                "initial": delta is None,
                "facts": None,
                "pickled": None,
            }
            block = None
            if delta:
                records, new_names = _encode_delta(delta, relation_ids)
                payload["relations"] = new_names
                if records is None:
                    payload["pickled"] = delta
                    PARALLEL_STATS.bump("pickled_rounds")
                else:
                    block = SharedFactBlock.create(records)
                    payload["facts"] = block.name
                boundary_total += len(delta)
                PARALLEL_STATS.bump("boundary_facts", len(delta))
            try:
                responses = pool.broadcast("chase_round", payload)
            finally:
                if block is not None:
                    block.unlink()
            PARALLEL_STATS.bump("chase_rounds")

            new_facts: list[Fact] = []
            fired_last_round = []

            def fire(tgd_index: int, values: tuple) -> None:
                key = (tgd_index, values)
                if key in fired:
                    return
                frontier_map = dict(
                    zip(compiled.frontier_orders[tgd_index], values)
                )
                # Re-check against the *master* instance: facts fired
                # earlier in this same collection can satisfy the head,
                # exactly as in the sequential round loop.
                if (
                    _head_witness(
                        compiled.head_queries[tgd_index], frontier_map, instance
                    )
                    is not None
                ):
                    return
                trigger_depth = max(
                    (
                        null_depth.get(value, 0) if is_null(value) else 0
                        for value in values
                    ),
                    default=0,
                )
                if max_null_depth is not None and compiled.existentials[tgd_index]:
                    if trigger_depth + 1 > max_null_depth:
                        result.truncated = True
                        return
                fired.add(key)
                fired_last_round.append(key)
                head_map = dict(frontier_map)
                for variable in compiled.existentials[tgd_index]:
                    null = fresh()
                    null_depth[null] = trigger_depth + 1
                    head_map[variable] = null
                for atom in compiled.tgds[tgd_index].head:
                    new_fact = atom.to_fact(head_map)
                    if instance.add(new_fact):
                        new_facts.append(new_fact)
                result.fired_triggers += 1
                if len(instance) > max_facts:
                    raise ChaseNotTerminating(f"chase exceeded {max_facts} facts")

            if delta is None:
                # Empty-body TGDs fire once, in the first round, master-side.
                for tgd_index, body_query in enumerate(compiled.body_queries):
                    if body_query is None:
                        fire(tgd_index, ())
            for response in responses:
                for tgd_index, values in response["proposals"]:
                    fire(tgd_index, tuple(values))
            if not new_facts:
                break
            delta = new_facts
    except BaseException:
        pool.close()
        raise
    return ParallelChaseRun(result=result, pool=pool, boundary_facts=boundary_total)
