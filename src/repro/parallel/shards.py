"""Deterministic hash partitioning of columnar relations into shm shards.

Python's builtin ``hash`` is process-stable for ints but its distribution
over small dense ids is poor (``hash(n) == n``), and the chase needs the
*same* shard decision in the master and in every worker.  :func:`mix64` is
a splitmix64-style finalizer: a fixed, well-distributed int→int mixing with
no per-process state, so ``shard_of(key, n)`` is reproducible everywhere.

:func:`hash_partition` splits a :class:`~repro.data.columns.ColumnarRelation`
by join-key positions into per-shard :class:`~repro.parallel.shm.SharedColumns`
segments that workers attach zero-copy; rows with equal keys always land in
the same shard, which is what makes per-shard semi-joins exact.
"""

from __future__ import annotations

from repro.data.columns import ColumnarRelation
from repro.parallel.shm import SharedColumns

__all__ = ["hash_partition", "mix64", "shard_of", "shard_rows"]

_MASK = (1 << 64) - 1


def mix64(value: int) -> int:
    """splitmix64 finalizer: a fixed, process-independent int mixing."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK
    return value ^ (value >> 31)


def shard_of(key: tuple[int, ...], shard_count: int) -> int:
    """The shard owning ``key`` — identical in every process."""
    acc = 0x2545F4914F6CDD1D
    for value in key:
        acc = mix64(acc ^ mix64(value & _MASK))
    return acc % shard_count


def shard_rows(rows, key_positions: tuple[int, ...], shard_count: int) -> list[list[tuple]]:
    """Partition row tuples by the shard of their key projection."""
    shards: list[list[tuple]] = [[] for _ in range(shard_count)]
    if key_positions:
        for row in rows:
            shards[shard_of(tuple(row[p] for p in key_positions), shard_count)].append(row)
    else:
        for index, row in enumerate(rows):
            shards[index % shard_count].append(row)
    return shards


def hash_partition(
    store: ColumnarRelation,
    key_positions: tuple[int, ...],
    shard_count: int,
) -> list[SharedColumns]:
    """Split ``store`` into ``shard_count`` shm-backed shards by join key.

    Every returned :class:`SharedColumns` is a segment this process owns
    (and must ``unlink``); workers attach by name.  Rows whose key
    projection hashes to shard ``i`` appear, in their original relative
    order, in shard ``i``.
    """
    shards = shard_rows(iter(store), tuple(key_positions), shard_count)
    return [SharedColumns.create(store.arity, rows) for rows in shards]
