"""Shared-memory segments for zero-copy fact/row exchange between processes.

Relations in this engine are already flat ``array('q')`` columns of dense
term ids (:mod:`repro.data.columns`), which makes them directly mappable
into ``multiprocessing.shared_memory``: the master writes each column into
one segment and workers *attach* by name, reading the same physical pages
through ``memoryview``-backed int64 views — no copy, no pickling of rows.

Two block shapes cover every exchange the parallel subsystem performs:

* :class:`SharedColumns` — a columnar block (fixed arity, parallel int64
  columns) used by the sharded semi-join kernel and the shard transport;
* :class:`SharedFactBlock` — a flat record stream ``[relation_id, arity,
  arg ids...]*`` used for the chase boundary-fact exchange, where one round
  mixes relations of different arities.

Cleanup discipline (the ``/dev/shm`` leak class): every segment *created*
here is registered in the process-wide :data:`SEGMENTS` registry and
unlinked either by the operation's ``finally`` block, by
:func:`SegmentRegistry.unlink_all` at interpreter exit (``atexit``), or —
as a last resort if the process dies hard — by the stdlib resource tracker.
Workers only ever *attach*: they close their mapping but never unlink, and
their attachments are never tracker-registered, so a worker exit cannot
destroy (or complain about) a segment the master still serves.
"""

from __future__ import annotations

import atexit
import threading
from array import array
from multiprocessing import resource_tracker, shared_memory

from repro.data.terms import Null
from repro.parallel.runtime import PARALLEL_STATS

__all__ = [
    "SEGMENTS",
    "SegmentRegistry",
    "SharedColumns",
    "SharedFactBlock",
    "active_segments",
]

_INT64 = 8


class SegmentRegistry:
    """Process-wide accounting of created (not yet unlinked) segments.

    ``unlink_all`` is idempotent and safe to call at any point — it is the
    ``atexit`` backstop behind the per-operation ``finally`` unlinks, so an
    interrupted ``execute_batch`` (or a crashed test) cannot strand
    segments in ``/dev/shm``.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._lock = threading.Lock()

    def register(self, shm: shared_memory.SharedMemory) -> None:
        with self._lock:
            self._segments[shm.name] = shm
        PARALLEL_STATS.bump("segments")

    def forget(self, name: str) -> None:
        with self._lock:
            self._segments.pop(name, None)

    def names(self) -> set[str]:
        with self._lock:
            return set(self._segments)

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    def unlink_all(self) -> int:
        """Unlink every still-registered segment; returns how many."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
        count = 0
        for shm in segments:
            try:
                shm.close()
            except BufferError:
                # An interrupted operation can leave exported views alive;
                # the mapping dies with them, unlinking is unaffected.
                pass
            try:
                shm.unlink()
                count += 1
            except (FileNotFoundError, OSError):  # pragma: no cover - races
                pass
        return count


#: The registry every creating constructor below reports to.
SEGMENTS = SegmentRegistry()
atexit.register(SEGMENTS.unlink_all)


def active_segments() -> set[str]:
    """Names of segments created by this process and not yet unlinked."""
    return SEGMENTS.names()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    The stdlib registers *attachments* with the resource tracker too —
    only 3.13's ``track=False`` skips it — and a forked worker that
    registers spawns (or corrupts the bookkeeping of) a tracker of its
    own, which then warns about "leaked" segments the master unlinked
    long ago.  On older Pythons the registration is suppressed for the
    duration of the attach instead; workers are single-threaded (one
    request loop), so the temporary patch cannot race.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - Python < 3.13
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedColumns:
    """A fixed-arity columnar int64 block in one shared-memory segment.

    Layout: an int64 header ``[arity, rows]`` followed by ``arity`` dense
    columns of ``rows`` values each.  :meth:`columns` exposes the live
    pages as ``memoryview.cast('q')`` slices — the zero-copy attach path —
    and :meth:`rows` iterates row tuples by zipping those views.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._view = memoryview(shm.buf).cast("q")
        self.arity = int(self._view[0])
        self.row_count = int(self._view[1])

    @classmethod
    def create(cls, arity: int, rows) -> "SharedColumns":
        """Write ``rows`` (iterable of int sequences) into a new segment."""
        rows = rows if isinstance(rows, (list, tuple)) else list(rows)
        count = len(rows)
        size = _INT64 * (2 + arity * count)
        shm = shared_memory.SharedMemory(create=True, size=max(size, _INT64 * 2))
        SEGMENTS.register(shm)
        view = memoryview(shm.buf).cast("q")
        view[0] = arity
        view[1] = count
        base = 2
        for position in range(arity):
            column = array("q", (row[position] for row in rows))
            view[base : base + count] = memoryview(column)
            base += count
        return cls(shm, owner=True)

    @classmethod
    def from_columnar(cls, store) -> "SharedColumns":
        """One segment holding a :class:`ColumnarRelation`'s columns."""
        count = len(store)
        arity = store.arity
        size = _INT64 * (2 + arity * count)
        shm = shared_memory.SharedMemory(create=True, size=max(size, _INT64 * 2))
        SEGMENTS.register(shm)
        view = memoryview(shm.buf).cast("q")
        view[0] = arity
        view[1] = count
        base = 2
        for position in range(arity):
            view[base : base + count] = memoryview(store.columns[position])
            base += count
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedColumns":
        """Map an existing segment read-only-by-convention (zero copy)."""
        return cls(_attach(name), owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def columns(self) -> list[memoryview]:
        """The live int64 column views (no copies)."""
        count = self.row_count
        base = 2
        out = []
        for _ in range(self.arity):
            out.append(self._view[base : base + count])
            base += count
        return out

    def rows(self):
        """Iterate the rows as tuples (one zip over the column views)."""
        if self.arity == 0:
            return iter([()] * self.row_count)
        return zip(*self.columns())

    def close(self) -> None:
        """Drop this process's mapping (workers: always; never unlink)."""
        try:
            self._view.release()
        except BufferError:  # pragma: no cover - exported sub-views alive
            pass
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported sub-views alive;
            pass  # the mapping dies with them, unlink is unaffected

    def unlink(self) -> None:
        """Destroy the segment (creator only); idempotent."""
        if not self._owner:
            return
        SEGMENTS.forget(self._shm.name)
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class SharedFactBlock:
    """A flat int64 record stream of facts for the boundary exchange.

    Each record is ``[relation_id, arity, arg_1 .. arg_k]``.  Constants are
    encoded as their (pre-fork) :data:`repro.data.interning.TERMS` ids —
    valid in every forked worker — and labelled nulls as ``-(label + 1)``
    (labels are positive, ids non-negative, so the ranges cannot collide
    and null identity survives the trip without touching any dictionary).
    Relation names travel once through the pool's shared name table.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self._view = memoryview(shm.buf).cast("q")
        self._owner = owner
        self.record_count = int(self._view[0])

    @classmethod
    def create(cls, records: list[tuple[int, tuple[int, ...]]]) -> "SharedFactBlock":
        """Write ``(relation_id, encoded args)`` records into a new segment."""
        length = 1 + sum(2 + len(args) for _, args in records)
        shm = shared_memory.SharedMemory(create=True, size=_INT64 * max(length, 1))
        SEGMENTS.register(shm)
        flat = array("q", [len(records)])
        for relation_id, args in records:
            flat.append(relation_id)
            flat.append(len(args))
            flat.extend(args)
        view = memoryview(shm.buf).cast("q")
        view[: len(flat)] = memoryview(flat)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedFactBlock":
        return cls(_attach(name), owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def records(self):
        """Yield the ``(relation_id, raw encoded args)`` records."""
        view = self._view
        cursor = 1
        for _ in range(self.record_count):
            relation_id = view[cursor]
            arity = view[cursor + 1]
            cursor += 2
            yield relation_id, tuple(view[cursor : cursor + arity])
            cursor += arity

    def close(self) -> None:
        try:
            self._view.release()
        except BufferError:  # pragma: no cover - exported sub-views alive
            pass
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported sub-views alive;
            pass  # the mapping dies with them, unlink is unaffected

    def unlink(self) -> None:
        if not self._owner:
            return
        SEGMENTS.forget(self._shm.name)
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def encode_null(null: Null) -> int:
    """Encode a labelled null into the negative id range."""
    return -(null.label + 1)


def decode_value(value: int, decode_term):
    """Decode one encoded arg: negative → ``Null``, else a term-table id."""
    if value < 0:
        return Null(-value - 1)
    return decode_term(value)
