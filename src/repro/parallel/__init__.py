"""Sharded shared-memory scale-out for the chase and the reduce passes.

The package fans the three heavy phases of the engine out across a
persistent pool of *forked* worker processes:

* the semi-naive chase delta loop (:mod:`repro.parallel.chase`) — workers
  match their hash-partition slice of each round's delta against a
  replicated instance, the master fires centrally;
* the Yannakakis reduce passes (:mod:`repro.parallel.reduce`) — component
  projections scatter across workers, and large semi-join filters run
  sharded over :mod:`multiprocessing.shared_memory` segments attached
  zero-copy (:mod:`repro.parallel.shm`);
* ``execute_batch`` — whole queries scatter to workers that enumerate
  against their replica (:mod:`repro.parallel.pool`'s ``execute`` task).

Enumeration itself still streams from one merged cursor in the calling
process — the constant-delay contract is untouched.  Everything degrades
to the sequential paths when ``fork`` is unavailable, a worker crashes, or
``workers`` resolves to 1; failure never hangs and never leaks a
``/dev/shm`` segment (see :data:`repro.parallel.shm.SEGMENTS`).
"""

from repro.parallel.chase import ParallelChaseRun, parallel_chase
from repro.parallel.pool import (
    DEFAULT_TASK_TIMEOUT,
    ParallelExecutionError,
    WorkerBootstrap,
    WorkerCrashed,
    WorkerPool,
    supported,
)
from repro.parallel.reduce import parallel_filter_by_keys, parallel_projections
from repro.parallel.runtime import (
    PARALLEL_STATS,
    maybe_parallel_filter,
    sharded_semijoins,
)
from repro.parallel.shards import hash_partition, mix64, shard_of
from repro.parallel.shm import (
    SEGMENTS,
    SharedColumns,
    SharedFactBlock,
    active_segments,
)

__all__ = [
    "DEFAULT_TASK_TIMEOUT",
    "PARALLEL_STATS",
    "ParallelChaseRun",
    "ParallelExecutionError",
    "SEGMENTS",
    "SharedColumns",
    "SharedFactBlock",
    "WorkerBootstrap",
    "WorkerCrashed",
    "WorkerPool",
    "active_segments",
    "hash_partition",
    "maybe_parallel_filter",
    "mix64",
    "parallel_chase",
    "parallel_filter_by_keys",
    "parallel_projections",
    "sharded_semijoins",
    "shard_of",
    "supported",
]
